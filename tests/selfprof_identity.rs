//! Observer-effect contract for the host-side self profiler: attaching a
//! [`regless::telemetry::SelfProfiler`] to a run must leave
//! [`RunReport::stable_json`] **byte-identical** — the profiler times the
//! simulator's own phases on the host wall clock and must never perturb
//! simulated state (cycles, CPI stacks, window series, anything). This is
//! the property that makes `REGLESS_SELFPROF=1` safe to leave on in CI
//! and on shared servers.

use proptest::prelude::*;
use regless::compiler::{compile, RegionConfig};
use regless::core::{RegLessConfig, RegLessSim};
use regless::isa::Kernel;
use regless::sim::{BaselineRf, GpuConfig, Machine, RunReport};
use regless::telemetry::SelfProfiler;
use regless::workloads::{high_pressure_kernel, micro};
use std::sync::Arc;

/// Same kernel pool as the run-loop equivalence suite: between them the
/// micro kernels exercise every run-loop phase the profiler scopes
/// (writeback retirement, backend housekeeping, issue, stats windows,
/// and the event-calendar jump).
fn test_kernel(idx: usize) -> Kernel {
    match idx % 7 {
        0 => micro::streaming(6),
        1 => micro::pointer_chase(4),
        2 => micro::shared_tile(3),
        3 => micro::reduction_tree(),
        4 => micro::divergence_storm(3),
        5 => micro::nested_divergence(),
        _ => high_pressure_kernel(),
    }
}

/// Run one design on the small test machine, optionally profiled. Only
/// the baseline and RegLess designs expose the attach hook — the same
/// surface `regless run --self-profile` covers.
fn run_design(
    kernel: &Kernel,
    regless: bool,
    capacity: usize,
    prof: Option<Arc<SelfProfiler>>,
) -> RunReport {
    let gpu = GpuConfig::test_small();
    if regless {
        let cfg = RegLessConfig::with_capacity(capacity);
        let compiled = compile(kernel, &cfg.region_config(&gpu)).expect("compile");
        let mut sim = RegLessSim::new(gpu, cfg, compiled);
        if let Some(p) = prof {
            sim.attach_self_profiler(p);
        }
        sim.run().expect("regless run")
    } else {
        let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
        let mut machine = Machine::new(gpu, Arc::new(compiled), |_| BaselineRf::new());
        if let Some(p) = prof {
            machine.attach_self_profiler(p);
        }
        machine.run().expect("baseline run")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The contract: profiled and unprofiled runs emit identical bytes,
    /// and the profiler actually observed the run it rode along on.
    #[test]
    fn profiled_and_unprofiled_reports_are_byte_identical(
        kernel_idx in 0usize..7,
        regless in any::<bool>(),
        capacity_idx in 0usize..4,
    ) {
        let capacity = [64usize, 128, 256, 512][capacity_idx];
        let kernel = test_kernel(kernel_idx);
        let plain = run_design(&kernel, regless, capacity, None);
        let prof = Arc::new(SelfProfiler::new(true));
        let profiled = run_design(&kernel, regless, capacity, Some(Arc::clone(&prof)));
        prop_assert_eq!(
            plain.stable_json().to_string_compact(),
            profiled.stable_json().to_string_compact(),
            "self-profiling perturbed the report: kernel {} regless {} capacity {}",
            kernel_idx, regless, capacity
        );
        prop_assert!(
            !prof.snapshot().is_empty(),
            "the attached profiler observed no phases at all"
        );
    }
}

/// A disabled profiler attached explicitly records nothing — the no-op
/// branch the <1% overhead budget of `bench_sim_speed` rests on.
#[test]
fn disabled_profiler_records_nothing() {
    let kernel = micro::streaming(4);
    let prof = Arc::new(SelfProfiler::new(false));
    let report = run_design(&kernel, true, 256, Some(Arc::clone(&prof)));
    assert!(report.cycles > 0);
    assert!(prof.snapshot().is_empty(), "disabled profiler stayed empty");
    assert_eq!(prof.total_nanos(), 0);
}

/// The phase tables of a profiled run name the run-loop phases the
/// instrumentation promises, and the rendered table carries them.
#[test]
fn profiled_run_names_the_run_loop_phases() {
    let kernel = micro::reduction_tree();
    let prof = Arc::new(SelfProfiler::new(true));
    run_design(&kernel, true, 256, Some(Arc::clone(&prof)));
    let phases: Vec<String> = prof.snapshot().into_iter().map(|(name, _)| name).collect();
    for expect in ["backend_tick", "issue", "stats_windows", "writeback"] {
        assert!(
            phases.iter().any(|p| p == expect),
            "phase {expect} missing from {phases:?}"
        );
    }
    let table = prof.render_table("sim");
    assert!(table.contains("issue"), "{table}");
}
