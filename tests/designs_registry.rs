//! Contract tests for the design registry: the `regless designs` table is
//! golden-snapshotted, the JSON rendering covers every entry, every
//! registered id resolves to a runnable [`DesignKind`], and the resolved
//! designs stay pairwise distinct (so sweep fingerprints cannot collide).

use regless::bench::registry::{self, DesignParams};
use regless::bench::{run_design_with, DesignKind};
use regless::workloads::micro;
use regless_json::Json;

/// The `regless designs` table matches the golden file byte-for-byte and
/// a second render reproduces it exactly.
#[test]
fn designs_table_matches_golden_and_is_byte_stable() {
    let table = registry::render_table();
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/designs_table.txt"
    ))
    .expect("golden designs table is checked in");
    assert_eq!(
        table, golden,
        "designs table drifted from tests/golden/designs_table.txt; \
         regenerate with `regless designs` if the change is intentional"
    );
    assert_eq!(registry::render_table(), table);
}

/// The JSON rendering parses back, reports the right count, and names
/// every registered id with its citation and stability tier.
#[test]
fn designs_json_covers_every_entry() {
    let json = registry::render_json();
    let parsed = Json::parse(&json.to_string_compact()).expect("render_json emits valid JSON");
    let count: i64 = match parsed.field_opt("count").ok().flatten() {
        Some(Json::Int(n)) => *n,
        other => panic!("count field missing: {other:?}"),
    };
    assert_eq!(count as usize, registry::all().len());
    let Some(Json::Arr(designs)) = parsed.field_opt("designs").ok().flatten() else {
        panic!("designs array missing");
    };
    let mut ids: Vec<String> = Vec::new();
    for d in designs {
        for key in ["id", "display", "citation", "stability", "energy_model"] {
            assert!(
                matches!(d.field_opt(key).ok().flatten(), Some(Json::Str(_))),
                "entry missing string field {key:?}: {d:?}"
            );
        }
        if let Some(Json::Str(id)) = d.field_opt("id").ok().flatten() {
            ids.push(id.clone());
        }
    }
    assert_eq!(ids, registry::ids(), "JSON order matches the registry");
}

/// Every registered id resolves, and the defaults produce pairwise
/// distinct design points — a collision here would alias two designs in
/// the sweep cache.
#[test]
fn every_registered_id_resolves_to_a_distinct_design() {
    let mut designs: Vec<DesignKind> = Vec::new();
    for entry in registry::all() {
        let d = registry::resolve(entry.id, &DesignParams::default())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.id));
        assert_eq!(d, entry.default_design());
        designs.push(d);
    }
    for (i, a) in designs.iter().enumerate() {
        for b in &designs[i + 1..] {
            assert_ne!(a, b, "two registry entries alias the same design");
        }
    }
    let err = registry::resolve("not-a-design", &DesignParams::default())
        .expect_err("unknown ids are rejected");
    assert!(
        err.contains("not-a-design") && err.contains("valid designs"),
        "{err}"
    );
}

/// Every registered design actually executes a kernel end to end on the
/// evaluation machine — the registry cannot list a constructor that the
/// runner dispatch does not implement.
#[test]
fn every_registered_design_runs_a_kernel() {
    let kernel = micro::streaming(2);
    for entry in registry::all() {
        let report = run_design_with(&kernel, entry.default_design(), false);
        assert!(
            report.cycles > 0 && report.total().insns > 0,
            "{} produced an empty report",
            entry.id
        );
    }
}
