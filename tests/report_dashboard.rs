//! Dashboard contract tests: `regless report --format json` on the
//! checked-in saxpy kernel is byte-stable and matches the committed
//! golden snapshot, and the HTML rendering carries every stall and
//! eviction row (the CI schema-completeness contract).

use regless::bench::report::collect;
use regless::compiler::compile;
use regless::core::{RegLessConfig, RegLessSim};
use regless::isa::text::parse_kernel;
use regless::sim::GpuConfig;
use regless::telemetry::{EvictionReason, Report, StallReason};

/// Build the saxpy dashboard exactly as
/// `regless report kernels/saxpy.asm --design regless --format json`
/// does (telemetry recorded with the CLI's buffer size).
fn saxpy_report() -> Report {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/kernels/saxpy.asm"))
        .expect("kernels/saxpy.asm is checked in");
    let kernel = parse_kernel(&text).expect("saxpy parses");
    let gpu = GpuConfig::gtx980_single_sm();
    let cfg = RegLessConfig::with_capacity(512);
    let compiled = compile(&kernel, &cfg.region_config(&gpu)).expect("compiles");
    let mut sim = RegLessSim::new(gpu, cfg, compiled);
    sim.attach_telemetry(1_000_000);
    let run = sim.run().expect("runs");
    collect(&run, kernel.name(), "regless", 512)
}

/// The JSON twin matches the golden file byte-for-byte, a second
/// simulation reproduces it exactly, and the document round-trips.
#[test]
fn saxpy_report_json_matches_golden_and_is_byte_stable() {
    let report = saxpy_report();
    let json = report.to_json_string();
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/report_saxpy_regless.json"
    ))
    .expect("golden report is checked in");
    assert_eq!(
        json, golden,
        "report JSON drifted from tests/golden/report_saxpy_regless.json; \
         regenerate with `regless report kernels/saxpy.asm --format json \
         --out tests/golden/report_saxpy_regless.json` if the change is \
         intentional"
    );
    let again = saxpy_report();
    assert_eq!(again.to_json_string(), json);
    let back = Report::from_json_str(&json).expect("parses");
    assert_eq!(back, report);
}

/// The HTML dashboard for a real run carries every stall and eviction
/// row, the occupancy sparkline, and the trend section when history rows
/// are supplied — the same contract CI checks on the generated artifact.
#[test]
fn saxpy_report_html_is_schema_complete() {
    let report = saxpy_report();
    let html = report.render_html(&[report.summary()]);
    for r in StallReason::ALL {
        assert!(
            html.contains(&format!("class=\"stall-{}\"", r.name())),
            "missing stall row {}",
            r.name()
        );
    }
    for r in EvictionReason::ALL {
        assert!(
            html.contains(&format!("class=\"evict-{}\"", r.name())),
            "missing eviction row {}",
            r.name()
        );
    }
    assert!(html.contains("<svg"), "occupancy sparkline present");
    assert!(html.contains("<h2>Trend</h2>"), "trend section present");
    // The dashboard on saxpy is not empty: the kernel drains regions and
    // reclaims dead values, and the sampled timelines carry real data.
    assert!(report.evictions.total() > 0);
    assert!(!report.occupancy.live.is_empty());
    assert_eq!(report.occupancy.capacity_lines, 512);
}
