//! The strongest cross-crate check in the repository: every timing model —
//! baseline, RFH, RFV, and RegLess with its staged operand values moving
//! through OSU banks, the compressor, and the memory hierarchy — must leave
//! architectural state **bit-identical** to the timing-free functional
//! interpreter.

use regless::baselines::{run_rfh, run_rfv};
use regless::compiler::{compile, RegionConfig};
use regless::core::{RegLessConfig, RegLessSim};
use regless::sim::{interpret, run_baseline, GpuConfig, RunReport};
use regless::workloads::rodinia;
use std::sync::Arc;

fn gpu() -> GpuConfig {
    GpuConfig {
        num_sms: 1,
        warps_per_sm: 16,
        ..GpuConfig::gtx980()
    }
}

fn check_against_interpreter(name: &str, report: &RunReport, kernel: &regless::isa::Kernel) {
    for (w, (regs, &insns)) in report.final_regs[0]
        .iter()
        .zip(&report.warp_insns[0])
        .enumerate()
    {
        let reference = interpret(kernel, w, 10_000_000).expect("terminates");
        assert_eq!(
            insns, reference.insns,
            "{name}: warp {w} executed a different dynamic instruction count"
        );
        for (r, (got, want)) in regs.iter().zip(&reference.regs).enumerate() {
            assert_eq!(
                got, want,
                "{name}: warp {w} register r{r} diverged from the interpreter"
            );
        }
    }
}

#[test]
fn baseline_matches_interpreter() {
    for name in ["nn", "bfs", "particle_filter", "lud"] {
        let kernel = rodinia::kernel(name);
        let compiled = Arc::new(compile(&kernel, &RegionConfig::default()).unwrap());
        let report = run_baseline(gpu(), compiled).unwrap();
        check_against_interpreter(name, &report, &kernel);
    }
}

#[test]
fn regless_matches_interpreter() {
    for name in ["nn", "bfs", "hybridsort", "hotspot", "myocyte"] {
        let kernel = rodinia::kernel(name);
        let cfg = RegLessConfig::paper_default();
        let compiled = compile(&kernel, &cfg.region_config(&gpu())).unwrap();
        let report = RegLessSim::new(gpu(), cfg, compiled).run().unwrap();
        check_against_interpreter(name, &report, &kernel);
        // And the staged values the OSU handed out matched along the way.
        assert_eq!(
            report.total().staging_mismatches,
            0,
            "{name}: OSU served a stale or missing operand"
        );
    }
}

#[test]
fn comparison_designs_match_interpreter() {
    let kernel = rodinia::kernel("backprop");
    let compiled = compile(&kernel, &RegionConfig::default()).unwrap();
    let rfh = run_rfh(gpu(), compiled.clone()).unwrap();
    check_against_interpreter("backprop/rfh", &rfh, &kernel);
    let rfv = run_rfv(gpu(), compiled).unwrap();
    check_against_interpreter("backprop/rfv", &rfv, &kernel);
}

#[test]
fn microbenchmarks_match_interpreter() {
    use regless::workloads::micro;
    for kernel in micro::all() {
        let cfg = RegLessConfig::paper_default();
        let compiled = compile(&kernel, &cfg.region_config(&gpu())).unwrap();
        let report = RegLessSim::new(gpu(), cfg, compiled).run().unwrap();
        check_against_interpreter(kernel.name(), &report, &kernel);
        assert_eq!(
            report.total().staging_mismatches,
            0,
            "{}: staged-operand oracle",
            kernel.name()
        );
    }
}
