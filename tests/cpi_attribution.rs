//! Cycle-accounting contract tests: every issue slot of every cycle is
//! charged to exactly one [`StallReason`] (conservation), per-warp stacks
//! partition the per-SM stack, the `regless profile` rendering is golden
//! and byte-stable, and the `regless diff` gate moves with OSU capacity.

use proptest::prelude::*;
use regless::baselines::run_rfv;
use regless::bench::profile::{diff, ProfileReport};
use regless::compiler::{compile, RegionConfig};
use regless::core::{RegLessConfig, RegLessSim};
use regless::isa::text::parse_kernel;
use regless::isa::Kernel;
use regless::sim::{run_baseline, GpuConfig, IssueStack, RunReport, StallReason};
use regless::workloads::{high_pressure_kernel, micro};
use std::sync::Arc;

/// The small kernels the property test draws from.
fn test_kernel(idx: usize) -> Kernel {
    match idx % 6 {
        0 => micro::streaming(6),
        1 => micro::pointer_chase(4),
        2 => micro::shared_tile(3),
        3 => micro::reduction_tree(),
        4 => micro::divergence_storm(3),
        _ => micro::nested_divergence(),
    }
}

/// Run `kernel` on the small test machine under one of the designs.
fn run_small(kernel: &Kernel, design: usize, capacity: usize) -> RunReport {
    let gpu = GpuConfig::test_small();
    match design % 3 {
        0 => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_baseline(gpu, Arc::new(compiled)).expect("baseline run")
        }
        1 => {
            let cfg = RegLessConfig::with_capacity(capacity);
            let compiled = compile(kernel, &cfg.region_config(&gpu)).expect("compile");
            RegLessSim::new(gpu, cfg, compiled)
                .run()
                .expect("regless run")
        }
        _ => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_rfv(gpu, compiled).expect("rfv run")
        }
    }
}

/// Assert the conservation law on one report: per SM,
/// Σ per-reason slots == cycles × schedulers × issue slots, and the
/// per-warp stacks sum to the SM stack for every reason except `NoWarp`
/// (which has no warp to blame and stays SM-level).
fn assert_conservation(report: &RunReport, gpu: &GpuConfig) {
    let slots_per_cycle = (gpu.schedulers_per_sm * gpu.issue_slots_per_scheduler) as u64;
    for (i, sm) in report.sm_stats.iter().enumerate() {
        assert_eq!(
            sm.issue_stack.total(),
            report.cycles * slots_per_cycle,
            "SM {i}: Σ reasons must equal cycles × issue slots"
        );
        let mut warp_sum = IssueStack::new();
        for w in &sm.warp_stacks {
            warp_sum.merge(w);
        }
        for reason in StallReason::ALL {
            if reason == StallReason::NoWarp {
                assert_eq!(
                    warp_sum.get(reason),
                    0,
                    "SM {i}: NoWarp is never charged to a warp"
                );
            } else {
                assert_eq!(
                    warp_sum.get(reason),
                    sm.issue_stack.get(reason),
                    "SM {i}: per-warp stacks must partition the SM stack for {reason:?}"
                );
            }
        }
        // Region charges are a subset of warp charges (a blocked warp
        // whose PC is gone cannot name a region).
        let mut region_sum = IssueStack::new();
        for stack in sm.region_stacks.values() {
            region_sum.merge(stack);
        }
        for reason in StallReason::ALL {
            assert!(
                region_sum.get(reason) <= warp_sum.get(reason),
                "SM {i}: region charges cannot exceed warp charges for {reason:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation holds for every kernel × design × capacity drawn.
    #[test]
    fn issue_slot_accounting_is_conserved(
        kernel_idx in 0usize..6,
        design in 0usize..3,
        capacity_idx in 0usize..3,
    ) {
        let capacity = [128usize, 256, 512][capacity_idx];
        let kernel = test_kernel(kernel_idx);
        let gpu = GpuConfig::test_small();
        let report = run_small(&kernel, design, capacity);
        assert_conservation(&report, &gpu);
        // Issued slots match the instruction + metadata-bubble count the
        // pipeline already reports per SM.
        for sm in &report.sm_stats {
            prop_assert_eq!(sm.issue_stack.get(StallReason::Issued), sm.insns);
        }
    }
}

/// Merging SM stacks (the `RunReport::issue_stack` path) is associative:
/// folding per-SM stacks in any grouping gives the whole-GPU stack.
#[test]
fn stack_merge_is_associative_over_sms() {
    let kernel = micro::streaming(6);
    let report = run_small(&kernel, 1, 256);
    let total = report.issue_stack();
    let mut left_fold = IssueStack::new();
    for sm in &report.sm_stats {
        left_fold.merge(&sm.issue_stack);
    }
    let mut right_fold = IssueStack::new();
    for sm in report.sm_stats.iter().rev() {
        right_fold.merge(&sm.issue_stack);
    }
    assert_eq!(total, left_fold);
    assert_eq!(total, right_fold);
}

/// Profile `kernels/saxpy.asm` exactly as
/// `regless profile kernels/saxpy.asm --design regless` does.
fn saxpy_profile() -> ProfileReport {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/kernels/saxpy.asm"))
        .expect("kernels/saxpy.asm is checked in");
    let kernel = parse_kernel(&text).expect("saxpy parses");
    let gpu = GpuConfig::gtx980_single_sm();
    let cfg = RegLessConfig::with_capacity(512);
    let compiled = compile(&kernel, &cfg.region_config(&gpu)).expect("compiles");
    let report = RegLessSim::new(gpu, cfg, compiled).run().expect("runs");
    ProfileReport::collect(&report, kernel.name(), "regless", 512)
}

/// The profile table for the checked-in saxpy kernel matches the golden
/// file byte-for-byte, and a second run reproduces it exactly.
#[test]
fn saxpy_profile_table_matches_golden_and_is_byte_stable() {
    let profile = saxpy_profile();
    let table = profile.render_table();
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/profile_saxpy_regless.txt"
    ))
    .expect("golden profile is checked in");
    assert_eq!(
        table, golden,
        "profile table drifted from tests/golden/profile_saxpy_regless.txt; \
         regenerate with `regless profile kernels/saxpy.asm --design regless` \
         if the change is intentional"
    );
    // Byte stability: an identical second simulation renders identically.
    let again = saxpy_profile();
    assert_eq!(again.render_table(), table);
    assert_eq!(again.to_json_string(), profile.to_json_string());
    // The JSON form round-trips exactly.
    let back = ProfileReport::from_json_str(&profile.to_json_string()).expect("parses");
    assert_eq!(back, profile);
}

/// Shrinking the OSU from 512 to 128 entries moves issue slots into the
/// staging-side reasons (`CmPreloadWait` + `OsuCapacityWait` and their
/// memory-side refinements), and `regless diff` reports the regression.
#[test]
fn capacity_squeeze_moves_staging_stalls_and_trips_the_diff_gate() {
    let kernel = high_pressure_kernel();
    let gpu = GpuConfig::gtx980_single_sm();
    let run_at = |entries: usize| {
        let cfg = RegLessConfig::with_capacity(entries);
        let compiled = compile(&kernel, &cfg.region_config(&gpu)).expect("compiles");
        let report = RegLessSim::new(gpu, cfg, compiled).run().expect("runs");
        ProfileReport::collect(&report, kernel.name(), "regless", entries)
    };
    let big = run_at(512);
    let small = run_at(128);

    let staging = |p: &ProfileReport| {
        p.stack.get(StallReason::CmPreloadWait)
            + p.stack.get(StallReason::OsuCapacityWait)
            + p.stack.get(StallReason::MshrFull)
            + p.stack.get(StallReason::L1PortBusy)
    };
    assert!(
        staging(&small) > staging(&big),
        "128 entries must stage-stall more than 512 ({} vs {})",
        staging(&small),
        staging(&big)
    );
    assert!(small.cycles > big.cycles, "the squeeze must cost cycles");

    // The diff gate sees the slowdown from 512 → 128.
    let d = diff(&big, &small);
    assert!(d.worst_regression_pct > 0.0);
    let row = d
        .rows
        .iter()
        .find(|r| r.name == "cycles")
        .expect("cycles row");
    assert!(row.delta_pct > 0.0);
    // And the reverse direction is an improvement, not a regression.
    let d_rev = diff(&small, &big);
    assert!(!d_rev.exceeds(0.0) || d_rev.worst_regression_pct == 0.0);
}

/// An injected ≥5% IPC regression must trip the CI gate
/// (`regless diff --fail-above 5`), and a sub-threshold wobble must not.
#[test]
fn injected_ipc_regression_trips_the_five_percent_gate() {
    let base = saxpy_profile();
    let mut regressed = base.clone();
    regressed.cycles = base.cycles + base.cycles * 6 / 100; // +6% cycles
    regressed.ipc = base.insns as f64 / regressed.cycles as f64;
    let d = diff(&base, &regressed);
    assert!(
        d.exceeds(5.0),
        "a 6% cycle/IPC regression must fail the 5% gate (worst {:.2}%)",
        d.worst_regression_pct
    );

    let mut wobble = base.clone();
    wobble.cycles = base.cycles + base.cycles * 2 / 100; // +2% cycles
    wobble.ipc = base.insns as f64 / wobble.cycles as f64;
    let d = diff(&base, &wobble);
    assert!(!d.exceeds(5.0), "a 2% wobble must pass the 5% gate");
    assert!(d.exceeds(1.0), "…but still registers as a regression");
}

/// With a recorder attached, the whole CPI stack is folded into the
/// telemetry counters as `stall.<reason>`, and the counters respect the
/// same conservation law.
#[test]
fn telemetry_counters_carry_the_cpi_stack() {
    let kernel = micro::streaming(6);
    let gpu = GpuConfig::test_small();
    let cfg = RegLessConfig::with_capacity(256);
    let compiled = compile(&kernel, &cfg.region_config(&gpu)).expect("compiles");
    let mut sim = RegLessSim::new(gpu, cfg, compiled);
    sim.attach_telemetry(1 << 16);
    let report = sim.run().expect("runs");
    let telemetry = report.telemetry.as_ref().expect("telemetry attached");
    let mut total = 0u64;
    for reason in StallReason::ALL {
        let v = telemetry
            .counters
            .get(reason.counter_name())
            .copied()
            .unwrap_or_else(|| panic!("missing counter {}", reason.counter_name()));
        assert_eq!(v, report.issue_stack().get(reason));
        total += v;
    }
    let slots_per_cycle = (gpu.schedulers_per_sm * gpu.issue_slots_per_scheduler) as u64;
    assert_eq!(total, report.cycles * slots_per_cycle * gpu.num_sms as u64);
}
