//! Differential fuzzing: random well-formed kernels are run under the full
//! RegLess machine and checked bit-for-bit against the functional
//! interpreter. This hunts for interactions the hand-written tests missed —
//! divergence × draining × compression × capacity pressure.

use proptest::prelude::*;
use regless::compiler::compile;
use regless::core::{RegLessConfig, RegLessSim};
use regless::isa::{Kernel, KernelBuilder, Opcode, Reg};
use regless::sim::{interpret, GpuConfig};

fn gpu() -> GpuConfig {
    GpuConfig {
        num_sms: 1,
        warps_per_sm: 8,
        warps_per_block: 4,
        ..GpuConfig::gtx980()
    }
}

/// Build a random but always-terminating kernel: a bounded loop whose body
/// is driven by the op stream, with an optional data-dependent diamond.
fn build_kernel(ops: &[u8], trips: u32, diamond: bool) -> Kernel {
    let mut b = KernelBuilder::new("fuzz");
    let head = b.new_block();
    let done = b.new_block();
    let tid = b.thread_idx();
    let mask = b.movi(0x3f_ffff);
    let i = b.movi(0);
    let n = b.movi(trips);
    let acc = b.movi(0);
    b.jmp(head);
    b.select(head);
    let mut live: Vec<Reg> = vec![acc, tid, i];
    for (k, &op) in ops.iter().enumerate() {
        let a = live[k % live.len()];
        let c = live[(k * 7 + 1) % live.len()];
        let r = match op % 8 {
            0 => b.iadd(a, c),
            1 => b.imul(a, c),
            2 => b.xor(a, c),
            3 => b.sfu(a),
            4 => {
                let addr = b.and(a, mask);
                b.ld_global(addr)
            }
            5 => b.ffma(a, c, a),
            6 => b.setlt(a, c),
            _ => b.movi(k as u32),
        };
        live.push(r);
        if live.len() > 7 {
            live.remove(1);
        }
    }
    if diamond {
        let t_bb = b.new_block();
        let e_bb = b.new_block();
        let j_bb = b.new_block();
        let one = b.movi(1);
        let v = *live.last().expect("nonempty");
        let bit = b.and(v, one);
        b.bra(bit, t_bb, e_bb);
        b.select(t_bb);
        let x = b.iadd(v, tid);
        b.emit_to(acc, Opcode::IAdd, vec![acc, x]);
        b.jmp(j_bb);
        b.select(e_bb);
        let y = b.xor(v, tid);
        b.emit_to(acc, Opcode::IAdd, vec![acc, y]);
        b.jmp(j_bb);
        b.select(j_bb);
    } else {
        let v = *live.last().expect("nonempty");
        b.emit_to(acc, Opcode::IAdd, vec![acc, v]);
    }
    let one = b.movi(1);
    b.emit_to(i, Opcode::IAdd, vec![i, one]);
    let c = b.setlt(i, n);
    b.bra(c, head, done);
    b.select(done);
    let out = b.and(acc, mask);
    b.st_global(acc, out);
    b.exit();
    b.finish().expect("fuzz kernels are valid by construction")
}

proptest! {
    // Each case runs a full machine; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn regless_matches_interpreter_on_random_kernels(
        ops in proptest::collection::vec(any::<u8>(), 3..24),
        trips in 1u32..8,
        diamond: bool,
        capacity in prop_oneof![Just(256usize), Just(512)],
    ) {
        let kernel = build_kernel(&ops, trips, diamond);
        let cfg = RegLessConfig::with_capacity(capacity);
        let compiled = compile(&kernel, &cfg.region_config(&gpu())).expect("compiles");
        let report = RegLessSim::new(gpu(), cfg, compiled).run().expect("terminates");
        prop_assert_eq!(
            report.total().staging_mismatches,
            0,
            "OSU served a stale operand"
        );
        for w in 0..gpu().warps_per_sm {
            let reference = interpret(&kernel, w, 5_000_000).expect("interp terminates");
            prop_assert_eq!(report.warp_insns[0][w], reference.insns, "warp {} insns", w);
            for (r, (got, want)) in
                report.final_regs[0][w].iter().zip(&reference.regs).enumerate()
            {
                prop_assert_eq!(got, want, "warp {} r{} diverged", w, r);
            }
        }
    }
}
