//! Golden tests: the compiler's region boundaries and classifications for
//! fixed kernels are pinned exactly. These protect against silent changes
//! to Algorithm 1's behaviour — if a change here is intentional, the
//! expected values below are the thing to update, consciously.

use regless::compiler::{compile, RegionConfig};
use regless::isa::text::parse_kernel;

const KERNEL: &str = "\
kernel golden
bb0:
  r0 = s2r tid
  r1 = movi 0x4
  r2 = imul r0, r1
  r3 = movi 0
  r4 = movi 8
  jmp bb1
bb1:
  r5 = ld.global [r2]
  r6 = iadd r5, r0
  r3 = iadd r3, r6
  r7 = movi 1
  r4 = isub r4, r7
  r8 = setlt r7, r4
  bra r8, bb1, bb2
bb2:
  st.global r3, [r2]
  exit
";

#[test]
fn region_boundaries_are_stable() {
    let kernel = parse_kernel(KERNEL).unwrap();
    let compiled = compile(&kernel, &RegionConfig::default()).unwrap();
    let got: Vec<(u32, usize, usize)> = compiled
        .regions()
        .iter()
        .map(|r| (r.block().0, r.start(), r.end()))
        .collect();
    // bb0 fits one region; bb1 splits after the load (load/use rule);
    // bb2 is one region.
    assert_eq!(got, vec![(0, 0, 6), (1, 0, 1), (1, 1, 7), (2, 0, 2)]);
}

#[test]
fn region_classification_is_stable() {
    let kernel = parse_kernel(KERNEL).unwrap();
    let compiled = compile(&kernel, &RegionConfig::default()).unwrap();
    let fmt = |s: &regless::compiler::RegSet| {
        let mut v: Vec<u16> = s.iter().map(|r| r.0).collect();
        v.sort_unstable();
        v
    };
    let r = &compiled.regions()[2]; // the loop-body compute region
    assert_eq!(fmt(r.inputs()), vec![0, 3, 4, 5]);
    assert_eq!(fmt(r.outputs()), vec![3, 4]);
    assert_eq!(fmt(r.interior()), vec![6, 7, 8]);
    // The address register r2 is untouched by this region: it is preloaded
    // by the load region and the store region, never here.
    assert!(!r.inputs().contains(regless::isa::Reg(2)));
}

#[test]
fn preload_invalidation_flags_are_stable() {
    let kernel = parse_kernel(KERNEL).unwrap();
    let compiled = compile(&kernel, &RegionConfig::default()).unwrap();
    let r = &compiled.regions()[2];
    let mut flags: Vec<(u16, bool)> = r
        .preloads()
        .iter()
        .map(|p| (p.reg.0, p.invalidate))
        .collect();
    flags.sort_unstable();
    // r5 (the loaded value) dies inside the region; r3/r4 are accumulators
    // whose *incoming* values are consumed and replaced, so their stale
    // memory-side copies are invalidated too. Only r0 (tid) survives
    // untouched.
    assert_eq!(flags, vec![(0, false), (3, true), (4, true), (5, true)]);
}

#[test]
fn metadata_counts_are_stable() {
    let kernel = parse_kernel(KERNEL).unwrap();
    let compiled = compile(&kernel, &RegionConfig::default()).unwrap();
    let per_region: Vec<usize> = compiled
        .regions()
        .iter()
        .map(|r| compiled.metadata().for_region(r.id()))
        .collect();
    assert_eq!(per_region, vec![1, 1, 2, 2]);
}
