//! Differential contract for the two run loops: the event-driven fast
//! path and the stepped cycle-by-cycle reference must produce
//! **byte-identical** [`RunReport::stable_json`] output — cycles, CPI
//! stacks, window series, eviction taxonomy, everything — on every
//! kernel × design × capacity point. A fast path that drifts by even one
//! stall-slot attribution fails here, not in a downstream figure.

use proptest::prelude::*;
use regless::baselines::{run_compress_rf_with, run_regdem_with, run_rfh_with, run_rfv_with};
use regless::compiler::{compile, RegionConfig};
use regless::core::{RegLessConfig, RegLessSim};
use regless::isa::Kernel;
use regless::sim::{run_baseline_with, GpuConfig, RunReport, StallReason};
use regless::workloads::{high_pressure_kernel, micro};
use std::sync::Arc;

/// The kernels the property test draws from — the micro suite covers
/// streaming loads, dependent chains, barriers, divergence, and register
/// pressure, which between them exercise every skippability condition
/// (scoreboard idle, barrier pins, staging waits, drain waits).
fn test_kernel(idx: usize) -> Kernel {
    match idx % 7 {
        0 => micro::streaming(6),
        1 => micro::pointer_chase(4),
        2 => micro::shared_tile(3),
        3 => micro::reduction_tree(),
        4 => micro::divergence_storm(3),
        5 => micro::nested_divergence(),
        _ => high_pressure_kernel(),
    }
}

/// Run one design in the requested loop mode on the small test machine.
fn run_mode(kernel: &Kernel, design: usize, capacity: usize, stepped: bool) -> RunReport {
    let gpu = GpuConfig::test_small();
    match design % 6 {
        0 => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_baseline_with(gpu, Arc::new(compiled), stepped).expect("baseline run")
        }
        1 => {
            let cfg = RegLessConfig::with_capacity(capacity);
            let compiled = compile(kernel, &cfg.region_config(&gpu)).expect("compile");
            let mut sim = RegLessSim::new(gpu, cfg, compiled);
            sim.set_stepped(stepped);
            sim.run().expect("regless run")
        }
        2 => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_rfh_with(gpu, compiled, stepped).expect("rfh run")
        }
        3 => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_rfv_with(gpu, compiled, stepped).expect("rfv run")
        }
        4 => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_regdem_with(gpu, compiled, stepped).expect("regdem run")
        }
        _ => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_compress_rf_with(gpu, compiled, stepped).expect("compress-rf run")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The contract itself: identical bytes for every sampled point.
    #[test]
    fn event_and_stepped_reports_are_byte_identical(
        kernel_idx in 0usize..7,
        design in 0usize..6,
        capacity_idx in 0usize..4,
    ) {
        let capacity = [64usize, 128, 256, 512][capacity_idx];
        let kernel = test_kernel(kernel_idx);
        let stepped = run_mode(&kernel, design, capacity, true);
        let event = run_mode(&kernel, design, capacity, false);
        prop_assert_eq!(
            stepped.stable_json().to_string_compact(),
            event.stable_json().to_string_compact(),
            "loop modes diverged: kernel {} design {} capacity {}",
            kernel_idx, design, capacity
        );
    }
}

/// The conservation law holds on the fast path (spot check on top of the
/// byte-identity above, so a failure names the broken invariant
/// directly): Σ reasons == cycles × schedulers × issue slots per SM, and
/// `idle_slots` counts exactly the non-issued slots.
#[test]
fn fast_path_preserves_slot_conservation() {
    let gpu = GpuConfig::test_small();
    let kernel = micro::streaming(8);
    let compiled = compile(&kernel, &RegionConfig::default()).expect("compile");
    let report = run_baseline_with(gpu, Arc::new(compiled), false).expect("runs");
    let slots_per_cycle = (gpu.schedulers_per_sm * gpu.issue_slots_per_scheduler) as u64;
    for sm in &report.sm_stats {
        assert_eq!(sm.issue_stack.total(), report.cycles * slots_per_cycle);
        assert_eq!(
            sm.idle_slots,
            sm.issue_stack.total() - sm.issue_stack.get(StallReason::Issued),
            "idle_slots must count exactly the slots that issued nothing"
        );
    }
}

/// The `idle_cycles` → `idle_slots` regression test: with more than one
/// issue slot per scheduler, an idle cycle burns *slots_per_scheduler*
/// slots per scheduler, not one. The old counter incremented once per
/// idle scheduler-cycle and undercounted dual-issue machines.
#[test]
fn idle_slots_counts_per_slot_under_dual_issue() {
    let gpu = GpuConfig {
        issue_slots_per_scheduler: 2,
        ..GpuConfig::test_small()
    };
    let kernel = micro::pointer_chase(4);
    let compiled = compile(&kernel, &RegionConfig::default()).expect("compile");
    for stepped in [true, false] {
        let report = run_baseline_with(gpu, Arc::new(compiled.clone()), stepped).expect("runs");
        let slots_per_cycle = (gpu.schedulers_per_sm * gpu.issue_slots_per_scheduler) as u64;
        for sm in &report.sm_stats {
            let total = report.cycles * slots_per_cycle;
            assert_eq!(sm.issue_stack.total(), total);
            assert_eq!(
                sm.idle_slots,
                total - sm.issue_stack.get(StallReason::Issued),
                "stepped={stepped}: idle_slots must be per-slot, not per-cycle"
            );
            // A dependent chain cannot dual-issue every cycle, so idle
            // slots must exceed half a cycle's worth somewhere.
            assert!(sm.idle_slots > 0);
        }
    }
}

/// Dual-issue machines produce identical reports in both loop modes too
/// (the multi-slot bulk charge is `span × slots`, not `span`).
#[test]
fn dual_issue_reports_are_byte_identical() {
    let gpu = GpuConfig {
        issue_slots_per_scheduler: 2,
        ..GpuConfig::test_small()
    };
    for kernel_idx in 0..7 {
        let kernel = test_kernel(kernel_idx);
        let compiled = compile(&kernel, &RegionConfig::default()).expect("compile");
        let stepped = run_baseline_with(gpu, Arc::new(compiled.clone()), true).expect("runs");
        let event = run_baseline_with(gpu, Arc::new(compiled), false).expect("runs");
        assert_eq!(
            stepped.stable_json().to_string_compact(),
            event.stable_json().to_string_compact(),
            "dual-issue loop modes diverged on kernel {kernel_idx}"
        );
    }
}
