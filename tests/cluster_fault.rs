//! Fault-tolerance contract for the sweep cluster.
//!
//! A coordinator with two workers — one of which dies mid-sweep with a
//! unit in flight — must still finish the sweep, and the merged result
//! set must be byte-identical (per `RunReport::stable_json`) to a
//! single-process `SweepEngine` run of the same space. Workers run
//! in-process here (threads, each with its own engine and connections) so
//! the test controls the failure precisely: the flaky worker claims one
//! more unit after its quota and returns without delivering, exactly the
//! footprint of a killed process whose sockets drop.

use regless::bench::sweep::{SweepEngine, SweepMode};
use regless::bench::DesignKind;
use regless::cluster::{
    merge, run_worker, units_for, Coordinator, CoordinatorConfig, WorkerConfig,
};
use std::sync::Arc;
use std::time::Duration;

/// Small, fast benchmarks so the sweep finishes in seconds.
fn space() -> Vec<regless::cluster::WorkUnit> {
    units_for(
        &[
            "rodinia/nn".to_string(),
            "rodinia/gaussian".to_string(),
            "rodinia/lud".to_string(),
            "rodinia/backprop".to_string(),
        ],
        &[DesignKind::Baseline, DesignKind::RegLess { entries: 256 }],
    )
}

#[test]
fn sweep_survives_a_worker_killed_mid_sweep() {
    let units = space();
    assert_eq!(units.len(), 8);

    // Aggressive liveness so the dead worker is reaped in test time.
    let engine = Arc::new(SweepEngine::with_config(None, SweepMode::Normal));
    let handle = Coordinator::start(
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            liveness_timeout: Duration::from_millis(300),
            progress: false,
        },
        Arc::clone(&engine),
        units.clone(),
    )
    .expect("start coordinator");
    let addr = handle.addr().to_string();

    let flaky_summary = std::thread::scope(|scope| {
        // The flaky worker completes one unit, then claims another and
        // "dies" (returns, dropping its sockets, never delivering).
        let flaky = {
            let addr = addr.clone();
            scope.spawn(move || {
                let engine = SweepEngine::with_config(None, SweepMode::Normal);
                let config = WorkerConfig {
                    fail_after: Some(1),
                    ..WorkerConfig::new(&addr, "flaky")
                };
                run_worker(&config, &engine).expect("flaky worker runs until its injected death")
            })
        };
        // The steady worker drains everything else, including the dead
        // worker's reassigned unit.
        let steady = {
            let addr = addr.clone();
            scope.spawn(move || {
                let engine = SweepEngine::with_config(None, SweepMode::Normal);
                let config = WorkerConfig::new(&addr, "steady");
                run_worker(&config, &engine).expect("steady worker finishes the sweep")
            })
        };
        let flaky_summary = flaky.join().expect("flaky thread");
        let steady_summary = steady.join().expect("steady thread");
        assert!(steady_summary.completed > 0);
        flaky_summary
    });
    assert!(flaky_summary.injected_failure, "the chaos hook must fire");
    assert_eq!(flaky_summary.completed, 1);

    assert!(
        handle.wait(Duration::from_secs(120)),
        "sweep completes despite the death"
    );
    let summary = handle.summary();
    handle.stop();
    assert!(summary.complete(), "{summary:?}");
    assert_eq!(summary.units_total, 8);
    assert_eq!(summary.workers_reaped, 1, "{summary:?}");
    assert!(
        summary.reassignments >= 1,
        "the in-flight unit must be reassigned: {summary:?}"
    );

    // Byte-identity: the merged set must digest identically to a fresh
    // single-process run of the same space.
    let cluster_digest = merge::digest_lines(&engine, &units).expect("all units merged");
    let reference = SweepEngine::with_config(None, SweepMode::Normal);
    for unit in &units {
        reference.run(&unit.bench, unit.variant());
    }
    let reference_digest = merge::digest_lines(&reference, &units).expect("reference complete");
    assert_eq!(
        cluster_digest, reference_digest,
        "cluster results must be byte-identical to a single-process sweep"
    );

    // And per-unit: the stable_json bytes themselves agree.
    for unit in &units {
        let merged = engine.lookup(&unit.bench, unit.variant()).unwrap();
        let single = reference.lookup(&unit.bench, unit.variant()).unwrap();
        assert_eq!(
            merged.stable_json().to_string_compact(),
            single.stable_json().to_string_compact(),
            "unit {} diverged",
            unit.slug()
        );
    }
}

#[test]
fn two_healthy_workers_split_the_sweep() {
    let units = space();
    let engine = Arc::new(SweepEngine::with_config(None, SweepMode::Normal));
    let handle = Coordinator::start(
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            liveness_timeout: Duration::from_secs(60),
            progress: false,
        },
        Arc::clone(&engine),
        units.clone(),
    )
    .expect("start coordinator");
    let addr = handle.addr().to_string();

    let (a, b) = std::thread::scope(|scope| {
        let spawn_worker = |name: &'static str| {
            let addr = addr.clone();
            scope.spawn(move || {
                let engine = SweepEngine::with_config(None, SweepMode::Normal);
                run_worker(&WorkerConfig::new(&addr, name), &engine).expect(name)
            })
        };
        let a = spawn_worker("w0");
        let b = spawn_worker("w1");
        (a.join().expect("w0"), b.join().expect("w1"))
    });
    assert!(
        handle.wait(Duration::from_secs(120)),
        "sweep completes cleanly"
    );
    let summary = handle.summary();
    handle.stop();
    assert!(summary.complete());
    assert_eq!(summary.workers_reaped, 0);
    assert_eq!(summary.duplicate_results, 0);
    assert_eq!(
        (a.completed + b.completed) as u64,
        summary.units_total,
        "every unit done exactly once: {a:?} {b:?}"
    );
    // Consistent hashing should give both workers a share on this space.
    assert!(a.completed > 0 && b.completed > 0, "{a:?} {b:?}");
}
