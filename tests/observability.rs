//! Observability contract tests (ISSUE 8).
//!
//! Tracing must be a pure overlay: stamping a `trace_id` on a serve
//! request may add `trace`/`trace_id` payload fields, but the `report`
//! bytes must stay identical to an untraced request's — the simulation
//! never sees a wall clock. The property test drives a real server over
//! real TCP with arbitrary trace-id strings (canonical, short, upper,
//! empty, garbage, absent) and checks byte-identity plus the
//! traced/untraced payload contract; the deterministic test merges the
//! client-side rpc span with the server's spans and checks the Chrome
//! export joins both processes on one trace.

use proptest::prelude::*;
use regless::bench::sweep::{SweepEngine, SweepMode};
use regless::serve::{Client, Request, ServeConfig, Server, ServerHandle};
use regless::telemetry::chrome_spans;
use regless::telemetry::obs::{epoch_us, format_trace_id, parse_trace_id, Span};
use regless_json::Json;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One shared server (and the untraced reference report bytes) for the
/// whole test process: the property test's cases then exercise the warm
/// cache path as well as the first-simulation path.
static SERVER: OnceLock<(ServerHandle, String)> = OnceLock::new();

fn server() -> &'static (ServerHandle, String) {
    SERVER.get_or_init(|| {
        let engine = Arc::new(SweepEngine::with_config(None, SweepMode::Normal));
        let handle = Server::start(
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                queue_capacity: 8,
                drain_timeout: Duration::from_secs(60),
            },
            engine,
        )
        .expect("start server");
        let mut client =
            Client::connect(&handle.addr().to_string()).expect("connect for reference");
        let resp = client
            .request(&Request::run(0, "rodinia/nn"))
            .expect("untraced reference response");
        assert!(resp.ok, "{resp:?}");
        let reference = resp
            .payload_field("report")
            .expect("reference report")
            .to_string_compact();
        (handle, reference)
    })
}

/// Trace-id strings a client could plausibly send: canonical 16-hex,
/// short and uppercase hex (both parseable), and unparseable shapes
/// (non-hex, over-long, empty) plus the absent case — the latter four
/// must all take the exact untraced path.
fn trace_id_strategy() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        any::<u64>().prop_map(|n| Some(format!("{n:016x}"))),
        any::<u32>().prop_map(|n| Some(format!("{n:x}"))),
        any::<u16>().prop_map(|n| Some(format!("{n:X}"))),
        any::<u64>().prop_map(|n| Some(format!("zz{n}"))),
        any::<u64>().prop_map(|n| Some(format!("{n:017x}"))),
        Just(Some(String::new())),
        Just(None),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    fn traced_reports_stay_byte_identical(id in trace_id_strategy()) {
        let (handle, reference) = server();
        let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
        let mut req = Request::run(1, "rodinia/nn");
        req.trace_id = id.clone();
        let resp = client.request(&req).expect("response");
        prop_assert!(resp.ok, "{resp:?}");
        let report = resp
            .payload_field("report")
            .expect("report payload")
            .to_string_compact();
        prop_assert_eq!(
            report.as_str(),
            reference.as_str(),
            "trace_id {:?} changed the report bytes",
            id
        );

        match id.as_deref().and_then(parse_trace_id) {
            Some(parsed) => {
                // A parseable id: the payload carries the canonical form
                // and a non-empty span list, every span on this trace.
                prop_assert_eq!(
                    resp.payload_field("trace_id"),
                    Some(&Json::Str(format_trace_id(parsed)))
                );
                let Some(Json::Arr(raw)) = resp.payload_field("trace") else {
                    panic!("traced response missing `trace` array: {resp:?}");
                };
                prop_assert!(!raw.is_empty(), "traced response has no spans");
                for v in raw {
                    let span = Span::from_json(v).expect("span parses");
                    prop_assert_eq!(span.trace_id, parsed, "foreign span {:?}", span.name);
                }
            }
            None => {
                // Unparseable or absent: byte-for-byte the untraced
                // payload — no trace fields at all.
                prop_assert_eq!(resp.payload_field("trace"), None);
                prop_assert_eq!(resp.payload_field("trace_id"), None);
            }
        }
    }
}

/// The `regless submit --trace` shape end-to-end: merge the client rpc
/// span with the server's returned spans and export one Chrome trace.
/// Both process lanes must appear, every complete event must carry the
/// same trace id, and the span taxonomy must cover the request's life.
#[test]
fn chrome_export_joins_client_and_server_on_one_trace() {
    let (handle, _) = server();
    let mut client = Client::connect(&handle.addr().to_string()).expect("connect");
    let req = Request::run(2, "rodinia/nn").with_trace_id("00000000deadbeef");
    let t0 = epoch_us();
    let resp = client.request(&req).expect("response");
    let rpc_dur = epoch_us().saturating_sub(t0);
    assert!(resp.ok, "{resp:?}");

    let mut spans = vec![Span::new(0xdead_beef, "rpc", "client", t0, rpc_dur)];
    let Some(Json::Arr(raw)) = resp.payload_field("trace") else {
        panic!("traced response missing `trace` array: {resp:?}");
    };
    spans.extend(raw.iter().filter_map(Span::from_json));

    let doc = chrome_spans(&spans);
    let Ok(Json::Arr(events)) = doc.field("traceEvents").cloned() else {
        panic!("chrome export missing traceEvents: {doc:?}");
    };

    let str_field = |e: &Json, name: &str| match e.field_opt(name) {
        Ok(Some(Json::Str(s))) => Some(s.clone()),
        _ => None,
    };
    // Process metadata names both lanes.
    let named: Vec<String> = events
        .iter()
        .filter(|e| str_field(e, "ph").as_deref() == Some("M"))
        .filter_map(|e| {
            e.field_opt("args")
                .ok()
                .flatten()
                .and_then(|a| str_field(a, "name"))
        })
        .collect();
    assert!(named.contains(&"client".to_string()), "{named:?}");
    assert!(named.contains(&"serve".to_string()), "{named:?}");

    // Every complete event carries the one trace id, and the taxonomy
    // covers the request's life on the server plus the client rpc.
    let complete: Vec<&Json> = events
        .iter()
        .filter(|e| str_field(e, "ph").as_deref() == Some("X"))
        .collect();
    assert_eq!(complete.len(), spans.len());
    let mut names: Vec<String> = Vec::new();
    for e in &complete {
        let args = e.field("args").expect("event args");
        assert_eq!(
            str_field(args, "trace_id").as_deref(),
            Some("00000000deadbeef"),
            "{e:?}"
        );
        names.push(str_field(e, "name").expect("event name"));
    }
    assert!(names.contains(&"rpc".to_string()), "{names:?}");
    assert!(names.contains(&"admission".to_string()), "{names:?}");
    assert!(names.contains(&"serialize".to_string()), "{names:?}");
    // The body is either freshly simulated (queue + sim) or a cache hit,
    // depending on whether the property test warmed the engine first.
    assert!(
        names.contains(&"sim".to_string()) || names.contains(&"cache".to_string()),
        "{names:?}"
    );
}
