//! Integration tests checking the paper's headline claims hold in this
//! reproduction, on a fast subset of the workloads (the full sweeps live in
//! the `regless-bench` binaries).

use regless::compiler::{compile, RegionConfig};
use regless::core::{RegLessConfig, RegLessSim};
use regless::energy::{baseline_rf_area, baseline_rf_share, energy, regless_area, Design};
use regless::sim::{run_baseline, GpuConfig, SchedulerKind};
use regless::workloads::rodinia;
use std::sync::Arc;

fn gpu() -> GpuConfig {
    GpuConfig {
        num_sms: 1,
        warps_per_sm: 16,
        ..GpuConfig::gtx980()
    }
}

const SUBSET: [&str; 4] = ["kmeans", "pathfinder", "srad_v2", "nn"];

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// §1: "replacing the register file with an operand staging unit 25% of
/// the size ... with no average performance loss" — we allow a small
/// tolerance on the subset.
#[test]
fn claim_no_large_performance_loss() {
    let mut ratios = Vec::new();
    for name in SUBSET {
        let kernel = rodinia::kernel(name);
        let base = run_baseline(
            gpu(),
            Arc::new(compile(&kernel, &RegionConfig::default()).unwrap()),
        )
        .unwrap();
        let cfg = RegLessConfig::paper_default();
        let rl = RegLessSim::new(
            gpu(),
            cfg,
            compile(&kernel, &cfg.region_config(&gpu())).unwrap(),
        )
        .run()
        .unwrap();
        ratios.push(rl.cycles as f64 / base.cycles as f64);
    }
    let geo = geomean(&ratios);
    assert!(
        geo < 1.10,
        "geomean slowdown {geo:.3} too large: {ratios:?}"
    );
}

/// §6.3: RegLess reduces register-structure energy by ~75% and total GPU
/// energy by ~11%.
#[test]
fn claim_energy_savings() {
    let mut rf = Vec::new();
    let mut total = Vec::new();
    for name in SUBSET {
        let kernel = rodinia::kernel(name);
        let base = run_baseline(
            gpu(),
            Arc::new(compile(&kernel, &RegionConfig::default()).unwrap()),
        )
        .unwrap();
        let cfg = RegLessConfig::paper_default();
        let rl = RegLessSim::new(
            gpu(),
            cfg,
            compile(&kernel, &cfg.region_config(&gpu())).unwrap(),
        )
        .run()
        .unwrap();
        let eb = energy(&base, Design::Baseline, &gpu());
        let er = energy(
            &rl,
            Design::RegLess {
                osu_entries_per_sm: 512,
            },
            &gpu(),
        );
        rf.push(er.register_structures_pj / eb.register_structures_pj);
        total.push(er.total_pj() / eb.total_pj());
    }
    let rf_geo = geomean(&rf);
    let total_geo = geomean(&total);
    assert!(
        (0.18..=0.40).contains(&rf_geo),
        "register-structure energy ratio {rf_geo:.3} out of band (paper: 0.247)"
    );
    assert!(
        (0.80..=0.95).contains(&total_geo),
        "GPU energy ratio {total_geo:.3} out of band (paper: 0.89)"
    );
}

/// §6.1/GPUWattch: the register file is a significant share of GPU energy
/// (~13–17%) — the headroom the whole paper targets.
#[test]
fn claim_rf_share_of_gpu_energy() {
    let kernel = rodinia::kernel("kmeans");
    let base = run_baseline(
        gpu(),
        Arc::new(compile(&kernel, &RegionConfig::default()).unwrap()),
    )
    .unwrap();
    let share = baseline_rf_share(&base, &gpu());
    assert!((0.08..=0.25).contains(&share), "RF share {share:.3}");
}

/// Figure 2: a two-level scheduler shrinks the 100-cycle register working
/// set relative to GTO.
#[test]
fn claim_two_level_shrinks_working_set() {
    // Needs the full 64-warp SM: with 16 warps a 4-per-scheduler active
    // set is no restriction at all.
    let full = GpuConfig::gtx980_single_sm();
    let kernel = rodinia::kernel("srad_v2");
    let compiled = Arc::new(compile(&kernel, &RegionConfig::default()).unwrap());
    let gto = run_baseline(full, Arc::clone(&compiled)).unwrap();
    let two = run_baseline(
        GpuConfig {
            scheduler: SchedulerKind::TwoLevel {
                active_per_scheduler: 4,
            },
            ..full
        },
        compiled,
    )
    .unwrap();
    let g = gto.sm_stats[0].working_set.mean_kb();
    let t = two.sm_stats[0].working_set.mean_kb();
    assert!(t < g, "two-level {t:.1} KB should be below GTO {g:.1} KB");
}

/// Figure 16: removing the compressor degrades performance.
#[test]
fn claim_compressor_matters() {
    // Needs the full 64-warp SM: with few warps everything fits in the
    // OSU and the compressor is never exercised.
    let full = GpuConfig::gtx980_single_sm();
    let kernel = rodinia::kernel("pathfinder");
    let with_cfg = RegLessConfig::paper_default();
    let with = RegLessSim::new(
        full,
        with_cfg,
        compile(&kernel, &with_cfg.region_config(&full)).unwrap(),
    )
    .run()
    .unwrap();
    let without_cfg = RegLessConfig {
        compressor_enabled: false,
        ..with_cfg
    };
    let without = RegLessSim::new(
        full,
        without_cfg,
        compile(&kernel, &without_cfg.region_config(&full)).unwrap(),
    )
    .run()
    .unwrap();
    assert!(
        without.cycles > with.cycles,
        "no-compressor {} should exceed {}",
        without.cycles,
        with.cycles
    );
}

/// Figure 11: the 512-entry design occupies roughly a quarter to a third
/// of the baseline register file's area.
#[test]
fn claim_area_reduction() {
    let ratio = regless_area(512).total() / baseline_rf_area();
    assert!((0.2..=0.4).contains(&ratio), "area ratio {ratio:.3}");
}

/// Figure 17: the overwhelming majority of preloads are satisfied without
/// touching memory.
#[test]
fn claim_preloads_rarely_touch_memory() {
    let mut staged = 0u64;
    let mut total = 0u64;
    for name in SUBSET {
        let kernel = rodinia::kernel(name);
        let cfg = RegLessConfig::paper_default();
        let rl = RegLessSim::new(
            gpu(),
            cfg,
            compile(&kernel, &cfg.region_config(&gpu())).unwrap(),
        )
        .run()
        .unwrap();
        let t = rl.total();
        staged += t.preloads_osu + t.preloads_compressor;
        total += t.preloads_total();
    }
    let frac = staged as f64 / total.max(1) as f64;
    assert!(
        frac > 0.85,
        "only {frac:.3} of preloads staged without memory"
    );
}
