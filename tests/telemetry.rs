//! Telemetry subsystem contract tests: histogram algebra, Chrome-trace
//! export validity, and the zero-cost-when-disabled guarantee.

use proptest::prelude::*;
use regless::compiler::compile;
use regless::core::{RegLessConfig, RegLessSim};
use regless::isa::text::parse_kernel;
use regless::sim::GpuConfig;
use regless::telemetry::{
    chrome_trace, summary_csv, Log2Histogram, NullRecorder, Recorder, TelemetrySummary, NUM_BUCKETS,
};
use regless::workloads::rodinia;
use regless_json::Json;

fn histogram_of(values: &[u64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging histograms is associative and commutative, and bucket
    /// counts are conserved: merged buckets are the element-wise sum of
    /// the inputs, and recording the concatenated value stream gives the
    /// same histogram as merging per-stream histograms.
    #[test]
    fn histogram_merge_is_assoc_comm_and_conserving(
        xs in proptest::collection::vec(any::<u64>(), 0..20),
        ys in proptest::collection::vec(any::<u64>(), 0..20),
        zs in proptest::collection::vec(any::<u64>(), 0..20),
    ) {
        let (a, b, c) = (histogram_of(&xs), histogram_of(&ys), histogram_of(&zs));

        // Commutative: a+b == b+a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Associative: (a+b)+c == a+(b+c).
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Conservation: merge == record of the concatenated stream, and
        // every bucket is the sum of the per-input buckets.
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(&ab_c, &histogram_of(&all));
        prop_assert_eq!(ab_c.count(), (all.len() as u64));
        for k in 0..NUM_BUCKETS {
            prop_assert_eq!(
                ab_c.buckets()[k],
                a.buckets()[k] + b.buckets()[k] + c.buckets()[k]
            );
        }
    }
}

/// Run the checked-in saxpy kernel under RegLess with telemetry attached.
fn traced_saxpy() -> regless::telemetry::Telemetry {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/kernels/saxpy.asm"))
        .expect("kernels/saxpy.asm is checked in");
    let kernel = parse_kernel(&text).expect("saxpy parses");
    let gpu = GpuConfig::gtx980_single_sm();
    let cfg = RegLessConfig::paper_default();
    let compiled = compile(&kernel, &cfg.region_config(&gpu)).expect("compiles");
    let mut sim = RegLessSim::new(gpu, cfg, compiled);
    sim.attach_telemetry(1_000_000);
    let report = sim.run().expect("runs");
    *report.telemetry.expect("telemetry attached")
}

/// The Chrome trace for `kernels/saxpy.asm` is valid JSON in the
/// trace-event format, with timestamps monotone within every
/// `(pid, tid)` track.
#[test]
fn chrome_trace_of_saxpy_is_valid_and_monotone() {
    let telemetry = traced_saxpy();
    assert!(telemetry.events.len() > 100, "saxpy produces real traffic");
    assert_eq!(telemetry.dropped, 0);

    let json = chrome_trace(&telemetry);
    let text = json.to_string_compact();
    let parsed = Json::parse(&text).expect("chrome trace is valid JSON");
    let events = match parsed.field("traceEvents").expect("traceEvents field") {
        Json::Arr(events) => events,
        other => panic!("traceEvents must be an array, got {}", other.kind()),
    };
    assert!(!events.is_empty());

    fn num(v: &Json) -> i64 {
        match *v {
            Json::Int(i) => i,
            Json::Uint(u) => i64::try_from(u).expect("fits"),
            ref other => panic!("expected a number, got {}", other.kind()),
        }
    }

    let mut last_ts: std::collections::HashMap<(i64, i64), i64> = std::collections::HashMap::new();
    let mut phases = std::collections::BTreeSet::new();
    for ev in events {
        let ph: String =
            regless_json::FromJson::from_json(ev.field("ph").expect("ph")).expect("ph is a string");
        phases.insert(ph.clone());
        if ph == "M" {
            continue; // metadata events carry no timestamp
        }
        let key = (
            num(ev.field("pid").expect("pid")),
            num(ev.field("tid").expect("tid")),
        );
        let ts = num(ev.field("ts").expect("ts"));
        if let Some(&prev) = last_ts.get(&key) {
            assert!(ts >= prev, "track {key:?} went backwards: {prev} then {ts}");
        }
        last_ts.insert(key, ts);
    }
    for required in ["M", "B", "E", "i"] {
        assert!(phases.contains(required), "missing phase {required:?}");
    }

    // The CSV summary renders the same run without panicking and leads
    // with its header.
    let csv = summary_csv(&telemetry);
    assert!(csv.starts_with("kind,name,count,sum,mean,p50,p99,max\n"));
    let summary = TelemetrySummary::of(&telemetry);
    assert!(summary.counter("cycles").unwrap_or(0) > 0);
}

/// Running with no recorder and with a full recorder must produce
/// byte-identical simulation results — telemetry observes the machine,
/// it never perturbs it.
#[test]
fn null_and_full_recorder_reports_are_byte_identical() {
    let kernel = rodinia::kernel("hotspot");
    let gpu = GpuConfig::gtx980_single_sm();
    let cfg = RegLessConfig::paper_default();
    let compiled = compile(&kernel, &cfg.region_config(&gpu)).expect("compiles");

    let plain = RegLessSim::new(gpu, cfg, compiled.clone())
        .run()
        .expect("plain run");
    let mut traced_sim = RegLessSim::new(gpu, cfg, compiled);
    traced_sim.attach_telemetry(1_000_000);
    let traced = traced_sim.run().expect("traced run");

    assert!(plain.telemetry.is_none());
    assert!(traced.telemetry.is_some());
    assert_eq!(plain.final_regs, traced.final_regs, "results must agree");

    // Serialize both reports (telemetry and wall time are not part of the
    // figure-facing JSON; zero the wall clock anyway for determinism) and
    // require byte equality.
    let mut plain = plain;
    let mut traced = traced;
    plain.wall_seconds = 0.0;
    traced.wall_seconds = 0.0;
    assert_eq!(
        regless_json::to_string(&plain),
        regless_json::to_string(&traced),
        "recorder presence must not change any reported figure"
    );
}

/// The disabled path really is a no-op: `NullRecorder` reports disabled
/// and swallows everything.
#[test]
fn null_recorder_is_inert() {
    let mut null = NullRecorder;
    assert!(!null.enabled());
    null.counter_add("x", 1);
    null.observe("h", 42);
    null.sample("s", 7, 1.0);
    null.record(regless::telemetry::Event::instant(
        3,
        regless::telemetry::Track::warp(0),
        "nothing",
    ));
}
