//! Integration tests spanning crates: the same compiled kernels run under
//! every register-storage design and must agree on the work performed.

use regless::baselines::{run_rfh, run_rfv};
use regless::compiler::{compile, RegionConfig};
use regless::core::{RegLessConfig, RegLessSim};
use regless::sim::{run_baseline, GpuConfig};
use regless::workloads::rodinia;
use std::sync::Arc;

/// A scaled-down machine so the whole matrix stays fast in debug builds.
fn gpu() -> GpuConfig {
    GpuConfig {
        num_sms: 1,
        warps_per_sm: 16,
        ..GpuConfig::gtx980()
    }
}

#[test]
fn all_designs_execute_identical_instruction_streams() {
    for name in ["nn", "bfs", "pathfinder"] {
        let kernel = rodinia::kernel(name);
        let compiled = compile(&kernel, &RegionConfig::default()).unwrap();
        let base = run_baseline(gpu(), Arc::new(compiled.clone())).unwrap();
        let rfh = run_rfh(gpu(), compiled.clone()).unwrap();
        let rfv = run_rfv(gpu(), compiled).unwrap();
        let rl_cfg = RegLessConfig::paper_default();
        let rl = RegLessSim::new(
            gpu(),
            rl_cfg,
            compile(&kernel, &rl_cfg.region_config(&gpu())).unwrap(),
        )
        .run()
        .unwrap();
        let expect = base.total().insns;
        assert!(expect > 0);
        for (label, got) in [
            ("rfh", rfh.total().insns),
            ("rfv", rfv.total().insns),
            ("regless", rl.total().insns),
        ] {
            assert_eq!(got, expect, "{name}/{label} diverged from baseline");
        }
    }
}

#[test]
fn regless_replaces_rf_accesses_with_osu_accesses() {
    let kernel = rodinia::kernel("kmeans");
    let rl_cfg = RegLessConfig::paper_default();
    let compiled = compile(&kernel, &rl_cfg.region_config(&gpu())).unwrap();
    let rl = RegLessSim::new(gpu(), rl_cfg, compiled.clone())
        .run()
        .unwrap();
    let base = run_baseline(gpu(), Arc::new(compiled)).unwrap();
    let (b, r) = (base.total(), rl.total());
    assert_eq!(r.rf_reads, 0, "RegLess has no register file");
    assert_eq!(b.osu_reads, 0, "baseline has no staging unit");
    // Both designs move the same operands, just through different
    // structures.
    assert_eq!(r.osu_reads, b.rf_reads);
    assert_eq!(r.osu_writes, b.rf_writes);
}

#[test]
fn regless_stats_are_internally_consistent() {
    let kernel = rodinia::kernel("backprop");
    let rl_cfg = RegLessConfig::paper_default();
    let compiled = compile(&kernel, &rl_cfg.region_config(&gpu())).unwrap();
    let rl = RegLessSim::new(gpu(), rl_cfg, compiled).run().unwrap();
    let t = rl.total();
    // Every region activation preloaded its inputs through the tag ports.
    assert!(t.osu_tag_probes >= t.preloads_total());
    assert!(t.regions_activated > 0);
    assert!(
        t.region_active_cycles >= t.regions_activated,
        "each activation is live for at least a cycle"
    );
    // Compression only happens on spills that were offered to it.
    assert!(t.compressor_compressed <= t.compressor_matches);
    // The reservation model should essentially never be violated.
    assert_eq!(t.reservation_overflows, 0, "reservation overflows detected");
}

#[test]
fn simulations_are_deterministic() {
    let kernel = rodinia::kernel("srad_v2");
    let rl_cfg = RegLessConfig::paper_default();
    let run = || {
        let compiled = compile(&kernel, &rl_cfg.region_config(&gpu())).unwrap();
        RegLessSim::new(gpu(), rl_cfg, compiled).run().unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.total().insns, b.total().insns);
    assert_eq!(a.total().preloads_total(), b.total().preloads_total());
    assert_eq!(a.mem.l2_accesses, b.mem.l2_accesses);
}

#[test]
fn configs_round_trip_through_json() {
    let gpu = gpu();
    let json = regless_json::to_string(&gpu);
    let back: GpuConfig = regless_json::from_str(&json).unwrap();
    assert_eq!(back, gpu);

    let rl = RegLessConfig::paper_default();
    let json = regless_json::to_string(&rl);
    let back: RegLessConfig = regless_json::from_str(&json).unwrap();
    assert_eq!(back, rl);

    let rc = RegionConfig::default();
    let json = regless_json::to_string(&rc);
    let back: RegionConfig = regless_json::from_str(&json).unwrap();
    assert_eq!(back, rc);
}

#[test]
fn multiple_sms_share_the_l2() {
    // Two SMs run the same kernel concurrently: same per-warp work, shared
    // L2 — both must finish, and total instructions double.
    let kernel = rodinia::kernel("kmeans");
    let one = GpuConfig {
        num_sms: 1,
        ..gpu()
    };
    let two = GpuConfig {
        num_sms: 2,
        ..gpu()
    };
    let compiled = compile(&kernel, &RegionConfig::default()).unwrap();
    let r1 = run_baseline(one, Arc::new(compiled.clone())).unwrap();
    let r2 = run_baseline(two, Arc::new(compiled)).unwrap();
    assert_eq!(r2.total().insns, 2 * r1.total().insns);
    // Contention on the shared L2/DRAM can only slow things down.
    assert!(r2.cycles >= r1.cycles);
    // Each SM's architectural state is internally consistent: warp 0 of
    // both SMs computed from different global warp indices, so their
    // thread-id-derived registers differ.
    assert_ne!(r2.final_regs[0][0], r2.final_regs[1][0]);
}

#[test]
fn shipped_asm_kernels_load_compile_and_run() {
    use regless::isa::text::parse_kernel;
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/kernels")).unwrap() {
        let path = entry.unwrap().path();
        let text = std::fs::read_to_string(&path).unwrap();
        let kernel = parse_kernel(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let cfg = RegLessConfig::paper_default();
        let compiled = compile(&kernel, &cfg.region_config(&gpu())).unwrap();
        let report = RegLessSim::new(gpu(), cfg, compiled).run().unwrap();
        assert!(report.total().insns > 0, "{}", path.display());
        assert_eq!(report.total().staging_mismatches, 0, "{}", path.display());
    }
}

#[test]
fn small_capacities_run_correctly() {
    // The 128- and 192-entry design points have the tightest region limits;
    // they must still satisfy both oracles.
    use regless::sim::interpret;
    let kernel = rodinia::kernel("nn");
    for entries in [128usize, 192, 256] {
        let cfg = RegLessConfig::with_capacity(entries);
        let compiled = compile(&kernel, &cfg.region_config(&gpu())).unwrap();
        let report = RegLessSim::new(gpu(), cfg, compiled).run().unwrap();
        assert_eq!(report.total().staging_mismatches, 0, "{entries} entries");
        let reference = interpret(&kernel, 0, 10_000_000).unwrap();
        assert_eq!(
            report.warp_insns[0][0], reference.insns,
            "{entries} entries"
        );
    }
}
