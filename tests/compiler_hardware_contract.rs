//! Integration tests of the compiler ↔ hardware contract: everything the
//! capacity manager assumes about regions must actually hold for the
//! generated workloads.

use regless::compiler::{compile, RegionConfig};
use regless::core::{runtime_bank, RegLessConfig};
use regless::isa::Opcode;
use regless::sim::GpuConfig;
use regless::workloads::rodinia;

#[test]
fn regions_fit_the_osu_for_every_benchmark() {
    let gpu = GpuConfig::gtx980();
    let cfg = RegLessConfig::paper_default();
    let rc = cfg.region_config(&gpu);
    let lines_per_bank = cfg.lines_per_bank(&gpu);
    for name in rodinia::NAMES {
        let kernel = rodinia::kernel(name);
        let compiled = compile(&kernel, &rc).unwrap();
        for region in compiled.regions() {
            assert!(
                region.max_concurrent() <= rc.max_regs_per_region,
                "{name}/{:?} exceeds region limit",
                region.id()
            );
            for &u in region.bank_usage() {
                assert!(
                    (u as usize) <= lines_per_bank,
                    "{name}/{:?} exceeds bank capacity",
                    region.id()
                );
            }
        }
    }
}

#[test]
fn barriers_always_end_regions() {
    let rc = RegionConfig::default();
    for name in [
        "backprop",
        "hotspot",
        "lud",
        "pathfinder",
        "hybridsort",
        "lavaMD",
        "nw",
    ] {
        let kernel = rodinia::kernel(name);
        let compiled = compile(&kernel, &rc).unwrap();
        for region in compiled.regions() {
            let insns = &kernel.block(region.block()).insns()[region.start()..region.end()];
            for (i, insn) in insns.iter().enumerate() {
                if matches!(insn.op(), Opcode::Bar) {
                    assert_eq!(
                        i,
                        insns.len() - 1,
                        "{name}: barrier not at region end (deadlock hazard)"
                    );
                }
            }
        }
    }
}

#[test]
fn preload_lists_cover_all_upward_exposed_reads() {
    // Every register a region reads before writing must be in its preload
    // list — the hardware guarantee that reads never miss the OSU.
    let rc = RegionConfig::default();
    for name in rodinia::NAMES {
        let kernel = rodinia::kernel(name);
        let compiled = compile(&kernel, &rc).unwrap();
        for region in compiled.regions() {
            let insns = &kernel.block(region.block()).insns()[region.start()..region.end()];
            let mut written = std::collections::HashSet::new();
            for insn in insns {
                for &s in insn.srcs() {
                    if !written.contains(&s) {
                        assert!(
                            region.inputs().contains(s),
                            "{name}/{:?}: {s} read before write but not preloaded",
                            region.id()
                        );
                    }
                }
                if let Some(d) = insn.dst() {
                    written.insert(d);
                }
            }
        }
    }
}

#[test]
fn bank_rotation_preserves_totals() {
    // The runtime bank of (warp, reg) must stay consistent with the
    // compiler's per-bank usage rotation for every warp id.
    let rc = RegionConfig::default();
    let kernel = rodinia::kernel("kmeans");
    let compiled = compile(&kernel, &rc).unwrap();
    for region in compiled.regions() {
        let total: usize = region.bank_usage().iter().map(|&u| u as usize).sum();
        assert!(total >= region.preloads().len().min(region.max_concurrent()));
        for warp in [0usize, 1, 7, 13] {
            for p in region.preloads() {
                let b = runtime_bank(warp, p.reg);
                assert!(b < 8);
            }
        }
    }
}

#[test]
fn metadata_overhead_is_bounded() {
    // §5.4's encoding keeps metadata a modest fraction of the stream.
    let rc = RegionConfig::default();
    for name in rodinia::NAMES {
        let kernel = rodinia::kernel(name);
        let compiled = compile(&kernel, &rc).unwrap();
        let f = compiled.metadata().overhead_fraction();
        assert!(
            f < 0.40,
            "{name}: metadata fraction {f:.2} unreasonably high"
        );
    }
}

#[test]
fn bank_renumbering_preserves_semantics() {
    use regless::compiler::{renumber_for_banks, static_src_conflicts};
    use regless::sim::interpret;
    for name in ["kmeans", "heartwall", "lud"] {
        let kernel = rodinia::kernel(name);
        let (renumbered, stats) = renumber_for_banks(&kernel);
        assert!(stats.conflicts_after <= stats.conflicts_before, "{name}");
        assert!(
            static_src_conflicts(&renumbered) <= static_src_conflicts(&kernel),
            "{name}: renumbering must not add source-pair conflicts"
        );
        // Pure renaming: observable behaviour (global stores) is identical.
        for w in [0usize, 3, 7] {
            let a = interpret(&kernel, w, 10_000_000).unwrap();
            let b = interpret(&renumbered, w, 10_000_000).unwrap();
            assert_eq!(a.insns, b.insns, "{name}: warp {w}");
            assert_eq!(a.stores, b.stores, "{name}: warp {w} store stream differs");
        }
    }
}
