//! Eviction-accounting contract tests: every line the OSU evicts is
//! classified into exactly one [`EvictionReason`], so the per-reason
//! stack sums to the OSU's own mechanical eviction counter — per SM and
//! whole-GPU — for every kernel × design × capacity, and the accounting
//! is identical with and without a telemetry recorder attached.

use proptest::prelude::*;
use regless::compiler::{compile, RegionConfig};
use regless::core::{RegLessConfig, RegLessSim};
use regless::isa::Kernel;
use regless::sim::{run_baseline, EvictionReason, GpuConfig, RunReport};
use regless::workloads::{high_pressure_kernel, micro};
use std::sync::Arc;

/// The small kernels the property test draws from (the same suite as
/// `tests/cpi_attribution.rs`).
fn test_kernel(idx: usize) -> Kernel {
    match idx % 6 {
        0 => micro::streaming(6),
        1 => micro::pointer_chase(4),
        2 => micro::shared_tile(3),
        3 => micro::reduction_tree(),
        4 => micro::divergence_storm(3),
        _ => micro::nested_divergence(),
    }
}

/// Run `kernel` on the small test machine under one of the designs.
/// Design 0 is the baseline (no OSU, so no evictions); 1 and 2 are
/// RegLess with and without the compressor at the given capacity.
fn run_small(kernel: &Kernel, design: usize, capacity: usize) -> RunReport {
    let gpu = GpuConfig::test_small();
    match design % 3 {
        0 => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_baseline(gpu, Arc::new(compiled)).expect("baseline run")
        }
        1 => {
            let cfg = RegLessConfig::with_capacity(capacity);
            let compiled = compile(kernel, &cfg.region_config(&gpu)).expect("compile");
            RegLessSim::new(gpu, cfg, compiled)
                .run()
                .expect("regless run")
        }
        _ => {
            let cfg = RegLessConfig {
                compressor_enabled: false,
                ..RegLessConfig::with_capacity(capacity)
            };
            let compiled = compile(kernel, &cfg.region_config(&gpu)).expect("compile");
            RegLessSim::new(gpu, cfg, compiled)
                .run()
                .expect("regless run")
        }
    }
}

/// Assert the eviction conservation law on one report: per SM and
/// whole-GPU, Σ per-reason lines == the OSU's mechanical eviction count.
fn assert_eviction_conservation(report: &RunReport) {
    for (i, sm) in report.sm_stats.iter().enumerate() {
        assert_eq!(
            sm.eviction_stack.total(),
            sm.osu_lines_evicted,
            "SM {i}: classified evictions must equal the OSU's own count"
        );
    }
    assert_eq!(
        report.eviction_stack().total(),
        report.total().osu_lines_evicted,
        "whole-GPU: classified evictions must equal the OSU's own count"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation holds for every kernel × design × capacity drawn.
    #[test]
    fn per_reason_eviction_counts_sum_to_the_osu_total(
        kernel_idx in 0usize..6,
        design in 0usize..3,
        capacity_idx in 0usize..3,
    ) {
        let capacity = [128usize, 256, 512][capacity_idx];
        let kernel = test_kernel(kernel_idx);
        let report = run_small(&kernel, design, capacity);
        assert_eviction_conservation(&report);
        if design % 3 == 0 {
            // The baseline has no OSU: both sides of the law are zero.
            prop_assert_eq!(report.total().osu_lines_evicted, 0);
        }
    }
}

/// A regless run actually exercises the taxonomy: the micro suite drains
/// regions and reclaims dead values, and a squeezed OSU preempts or
/// spills, so the law above is not vacuously `0 == 0`.
#[test]
fn the_taxonomy_is_exercised_not_vacuous() {
    let report = run_small(&micro::streaming(6), 1, 256);
    assert!(
        report.total().osu_lines_evicted > 0,
        "streaming under regless must evict lines"
    );
    assert!(
        report.eviction_stack().get(EvictionReason::RegionDrain) > 0
            || report
                .eviction_stack()
                .get(EvictionReason::DeadValueReclaim)
                > 0,
        "drains or dead-value reclaims must appear"
    );

    let gpu = GpuConfig::gtx980_single_sm();
    let kernel = high_pressure_kernel();
    let cfg = RegLessConfig::with_capacity(128);
    let compiled = compile(&kernel, &cfg.region_config(&gpu)).expect("compiles");
    let squeezed = RegLessSim::new(gpu, cfg, compiled).run().expect("runs");
    assert_eviction_conservation(&squeezed);
    let stack = squeezed.eviction_stack();
    assert!(
        stack.get(EvictionReason::CapacityPreemption) > 0
            || stack.get(EvictionReason::CompressorSpill) > 0,
        "a squeezed OSU must preempt or spill ({stack:?})"
    );
}

/// Attaching a telemetry recorder must not change the eviction
/// accounting (the counters are always-on; the recorder only adds trace
/// events and extra sampled series).
#[test]
fn recorder_attachment_does_not_change_eviction_accounting() {
    let kernel = micro::streaming(6);
    let gpu = GpuConfig::test_small();
    let run = |record: bool| {
        let cfg = RegLessConfig::with_capacity(256);
        let compiled = compile(&kernel, &cfg.region_config(&gpu)).expect("compiles");
        let mut sim = RegLessSim::new(gpu, cfg, compiled);
        if record {
            sim.attach_telemetry(1 << 16);
        }
        sim.run().expect("runs")
    };
    let plain = run(false);
    let recorded = run(true);
    assert_eq!(plain.eviction_stack(), recorded.eviction_stack());
    assert_eq!(
        plain.total().osu_lines_evicted,
        recorded.total().osu_lines_evicted
    );
    assert_eviction_conservation(&recorded);
    // The recorder also mirrors the stack into named counters.
    let telemetry = recorded.telemetry.as_ref().expect("attached");
    for (reason, lines) in recorded.eviction_stack().entries() {
        assert_eq!(
            telemetry.counters.get(reason.counter_name()).copied(),
            Some(lines),
            "counter {} must mirror the stack",
            reason.counter_name()
        );
    }
    assert_eq!(
        telemetry.counters.get("osu.lines_evicted").copied(),
        Some(recorded.total().osu_lines_evicted)
    );
}
