//! End-to-end contract tests for the serving subsystem (ISSUE 5).
//!
//! These drive a real server over real TCP through the public client and
//! prove the four serving guarantees: coalescing (M identical concurrent
//! submits run one simulation), cooperative cancellation (a short
//! deadline returns a structured timeout within 2x the deadline and the
//! worker survives), admission control (a full queue answers
//! `queue_full` instead of blocking), and byte-identity (a served report
//! equals a CLI-direct one, however it was served).

use regless::bench::sweep::{SweepEngine, SweepMode};
use regless::bench::{run_design, DesignKind};
use regless::serve::{Client, ErrorCode, Request, RequestKind, ServeConfig, Server, ServerHandle};
use regless::workloads::rodinia;
use regless_json::Json;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A kernel slow enough (~3.2M machine cycles) that a request for it
/// reliably occupies a worker for its full deadline in both debug and
/// release builds — the deadline, not the simulation, bounds test time.
const SLOW_TRIPS: u32 = 50_000;

fn write_slow_asm(tag: &str) -> String {
    let path = std::env::temp_dir().join(format!("regless-serve-{}-{tag}.asm", std::process::id()));
    let text = format!(
        "kernel slow_{tag}\nbb0:\n  r0 = movi 0x0\n  r1 = movi {SLOW_TRIPS:#x}\n  jmp bb1\n\
         bb1:\n  r2 = movi 0x1\n  r0 = iadd r0, r2\n  r3 = setlt r0, r1\n  bra r3, bb1, bb2\n\
         bb2:\n  exit\n"
    );
    std::fs::write(&path, text).expect("write slow kernel");
    path.to_str().expect("utf-8 temp path").to_string()
}

fn start_server(workers: usize, queue_capacity: usize) -> ServerHandle {
    // A fresh memory-only engine per test: no cross-test or on-disk state.
    let engine = Arc::new(SweepEngine::with_config(None, SweepMode::Normal));
    Server::start(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_capacity,
            drain_timeout: Duration::from_secs(60),
        },
        engine,
    )
    .expect("start server")
}

fn stat(stats: &regless::serve::Response, name: &str) -> i64 {
    match stats.payload_field(name) {
        Some(Json::Int(v)) => *v,
        other => panic!("stats field {name} missing or non-integer: {other:?}"),
    }
}

/// Poll `stats` until `pred` holds (or panic after ~5 s).
fn wait_for_stats(
    addr: &str,
    mut pred: impl FnMut(&regless::serve::Response) -> bool,
) -> regless::serve::Response {
    let mut client = Client::connect(addr).expect("connect for stats");
    for _ in 0..500 {
        let stats = client
            .request(&Request::control(0, RequestKind::Stats))
            .expect("stats request");
        if pred(&stats) {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server never reached the expected stats state");
}

#[test]
fn concurrent_identical_submits_coalesce_into_one_simulation() {
    const M: usize = 4;
    let handle = start_server(1, 16);
    let addr = handle.addr().to_string();
    let slow = write_slow_asm("blocker");

    // Occupy the single worker with a slow job that cancels itself via
    // its own deadline; while it runs, all M identical submits below must
    // pile onto one pending job.
    let blocker = {
        let addr = addr.clone();
        let slow = slow.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect blocker");
            let mut req = Request::run(99, &slow);
            req.timeout_ms = Some(1_500);
            let started = Instant::now();
            let resp = c.request(&req).expect("blocker response");
            (resp, started.elapsed())
        })
    };
    wait_for_stats(&addr, |s| {
        stat(s, "in_flight") == 1 && stat(s, "queue_depth") == 0
    });

    let responses: Vec<regless::serve::Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..M)
            .map(|i| {
                let addr = &addr;
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect submitter");
                    c.request(&Request::run(i as u64, "rodinia/nn"))
                        .expect("submit response")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for r in &responses {
        assert!(r.ok, "{r:?}");
    }
    let mut sources: Vec<String> = responses
        .iter()
        .map(|r| match r.payload_field("source") {
            Some(Json::Str(s)) => s.clone(),
            other => panic!("missing source: {other:?}"),
        })
        .collect();
    sources.sort();
    assert_eq!(sources[0], "coalesced");
    assert_eq!(sources[M - 1], "simulated");
    assert_eq!(
        sources.iter().filter(|s| *s == "coalesced").count(),
        M - 1,
        "exactly one submitter runs the simulation: {sources:?}"
    );

    // The deadline-bounded blocker: structured timeout within 2x the
    // deadline, and the cancelled simulation freed the worker (the nn
    // responses above prove it kept serving).
    let (blocker_resp, blocker_elapsed) = blocker.join().unwrap();
    assert_eq!(
        blocker_resp.error_code(),
        Some("timeout"),
        "{blocker_resp:?}"
    );
    assert!(
        blocker_elapsed < Duration::from_millis(3_000),
        "timeout took {blocker_elapsed:?}, over 2x the 1500 ms deadline"
    );

    let stats = wait_for_stats(&addr, |s| stat(s, "in_flight") == 0);
    assert_eq!(stat(&stats, "coalesce_hits"), (M - 1) as i64);
    assert_eq!(
        stat(&stats, "simulations"),
        2,
        "blocker + one shared nn simulation"
    );
    assert_eq!(stat(&stats, "timeouts"), 1);
    assert_eq!(stat(&stats, "cancelled"), 1);
    assert_eq!(stat(&stats, "panics"), 0);

    let _ = std::fs::remove_file(&slow);
    handle.shutdown();
    handle.drain().expect("drain");
}

#[test]
fn full_queue_answers_queue_full_without_blocking() {
    let handle = start_server(1, 1);
    let addr = handle.addr().to_string();
    let slow_a = write_slow_asm("qa");
    let slow_b = write_slow_asm("qb");
    let slow_c = write_slow_asm("qc");

    let submit_slow = |path: String, addr: String| {
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            let mut req = Request::run(1, &path);
            req.timeout_ms = Some(1_500);
            c.request(&req).expect("response")
        })
    };
    // A occupies the worker, B fills the queue (capacity 1).
    let a = submit_slow(slow_a.clone(), addr.clone());
    wait_for_stats(&addr, |s| {
        stat(s, "in_flight") == 1 && stat(s, "queue_depth") == 0
    });
    let b = submit_slow(slow_b.clone(), addr.clone());
    wait_for_stats(&addr, |s| stat(s, "queue_depth") == 1);

    // C must be rejected immediately with a structured error + hint.
    let started = Instant::now();
    let mut c = Client::connect(&addr).expect("connect");
    let resp = c.request(&Request::run(3, &slow_c)).expect("response");
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "queue_full rejection must not block ({:?})",
        started.elapsed()
    );
    assert_eq!(resp.error_code(), Some("queue_full"), "{resp:?}");
    let error = resp.error.as_ref().expect("error body");
    assert_eq!(error.code, ErrorCode::QueueFull);
    assert!(
        error.retry_after_ms.is_some(),
        "queue_full must carry a retry-after hint: {error:?}"
    );

    // The deadline-bounded occupants resolve on their own.
    assert_eq!(a.join().unwrap().error_code(), Some("timeout"));
    assert_eq!(b.join().unwrap().error_code(), Some("timeout"));
    let stats = wait_for_stats(&addr, |s| stat(s, "in_flight") == 0);
    assert_eq!(stat(&stats, "rejected_queue_full"), 1);

    for p in [&slow_a, &slow_b, &slow_c] {
        let _ = std::fs::remove_file(p);
    }
    handle.shutdown();
    handle.drain().expect("drain");
}

#[test]
fn served_reports_are_byte_identical_to_cli_direct_runs() {
    let handle = start_server(2, 8);
    let addr = handle.addr().to_string();

    // CLI-direct reference: the exact code path `regless run` uses.
    let direct = run_design(&rodinia::kernel("nn"), DesignKind::regless_512())
        .stable_json()
        .to_string_compact();

    let mut client = Client::connect(&addr).expect("connect");
    let served = client
        .request(&Request::run(1, "rodinia/nn"))
        .expect("served response");
    assert!(served.ok, "{served:?}");
    assert_eq!(
        served.payload_field("source"),
        Some(&Json::Str("simulated".to_string()))
    );
    let served_report = served
        .payload_field("report")
        .expect("run payload carries the report")
        .to_string_compact();
    assert_eq!(
        served_report, direct,
        "served report must be byte-identical to a CLI-direct run"
    );

    // Second request: served from the engine cache, still byte-identical.
    let cached = client
        .request(&Request::run(2, "rodinia/nn"))
        .expect("cached response");
    assert_eq!(
        cached.payload_field("source"),
        Some(&Json::Str("cache".to_string()))
    );
    assert_eq!(
        cached
            .payload_field("report")
            .expect("cached report")
            .to_string_compact(),
        direct
    );

    handle.shutdown();
    handle.drain().expect("drain");
}

/// Cancellation latency under the event-driven fast path: a served
/// request with a deadline still gets its structured timeout within 2x
/// the deadline even though the run loop now jumps over idle spans. The
/// loop clamps every jump at `DEADLINE_CHECK_CYCLES` (1024-cycle)
/// boundaries, so the gap between cancellation polls is bounded by ~1k
/// simulated cycles — a few microseconds of wall clock — regardless of
/// how far the event calendar says it could skip.
#[test]
fn cancellation_latency_is_bounded_with_the_event_fast_path() {
    if std::env::var("REGLESS_SIM").as_deref() == Ok("stepped") {
        // The differential CI job forces the stepped reference loop
        // process-wide; this contract is specifically about the fast
        // path, so there is nothing to test in that configuration.
        eprintln!("skipping: REGLESS_SIM=stepped forces the reference loop");
        return;
    }

    let handle = start_server(1, 4);
    let addr = handle.addr().to_string();
    let slow = write_slow_asm("fastpath");

    let mut client = Client::connect(&addr).expect("connect");
    let mut req = Request::run(7, &slow);
    req.timeout_ms = Some(1_000);
    let started = Instant::now();
    let resp = client.request(&req).expect("response");
    let elapsed = started.elapsed();

    assert_eq!(resp.error_code(), Some("timeout"), "{resp:?}");
    assert!(
        elapsed < Duration::from_millis(2_000),
        "fast-path timeout took {elapsed:?}, over 2x the 1000 ms deadline"
    );

    // The cancelled run was cooperative: the worker is free and keeps
    // serving real work on the same connection.
    let stats = wait_for_stats(&addr, |s| stat(s, "in_flight") == 0);
    assert_eq!(stat(&stats, "timeouts"), 1);
    assert_eq!(stat(&stats, "cancelled"), 1);
    assert_eq!(stat(&stats, "panics"), 0);
    let follow_up = client
        .request(&Request::run(8, "rodinia/nn"))
        .expect("follow-up response");
    assert!(follow_up.ok, "{follow_up:?}");

    let _ = std::fs::remove_file(&slow);
    handle.shutdown();
    handle.drain().expect("drain");
}

#[test]
fn shutdown_request_drains_gracefully() {
    let handle = start_server(2, 8);
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    // One real job in flight, then shutdown: the job still completes.
    let worker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            c.request(&Request::run(1, "rodinia/nn")).expect("response")
        })
    };
    wait_for_stats(&addr, |s| stat(s, "submitted") >= 1);
    let bye = client
        .request(&Request::control(2, RequestKind::Shutdown))
        .expect("shutdown response");
    assert!(bye.ok);
    let after = client
        .request(&Request::run(3, "rodinia/nn"))
        .expect("response");
    assert_eq!(after.error_code(), Some("shutting_down"), "{after:?}");
    let job = worker.join().unwrap();
    assert!(
        job.ok || job.error_code() == Some("shutting_down"),
        "an admitted job must complete (or the submit raced the drain): {job:?}"
    );
    handle.drain().expect("drain within timeout");
}
