//! Instructions and their functional semantics.

use crate::op::{OpClass, Opcode, Special};
use crate::reg::{Reg, WARP_WIDTH};
use crate::value::LaneVec;
use std::fmt;

/// One static SIMT instruction: an opcode, an optional destination register,
/// and up to three source registers.
///
/// ```
/// use regless_isa::{Instruction, Opcode, Reg};
/// let add = Instruction::new(Opcode::IAdd, Some(Reg(2)), vec![Reg(0), Reg(1)]);
/// assert_eq!(add.dst(), Some(Reg(2)));
/// assert_eq!(add.srcs(), &[Reg(0), Reg(1)]);
/// assert_eq!(add.to_string(), "r2 = iadd r0, r1");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Instruction {
    op: Opcode,
    dst: Option<Reg>,
    srcs: Vec<Reg>,
}

impl Instruction {
    /// Create an instruction.
    ///
    /// # Panics
    ///
    /// Panics if more than three sources are supplied, or if the operand
    /// shape does not fit the opcode (e.g. a destination on a store or a
    /// terminator).
    pub fn new(op: Opcode, dst: Option<Reg>, srcs: Vec<Reg>) -> Self {
        assert!(srcs.len() <= 3, "at most 3 source operands");
        let insn = Instruction { op, dst, srcs };
        insn.assert_shape();
        insn
    }

    fn assert_shape(&self) {
        use Opcode::*;
        let (want_dst, want_srcs): (bool, usize) = match self.op {
            IAdd | ISub | IMul | And | Or | Xor | Shl | Shr | FAdd | FMul | SetLt | SetEq => {
                (true, 2)
            }
            IMad | FFma => (true, 3),
            Sfu | Mov | LdGlobal | LdShared => (true, 1),
            MovImm(_) | ReadSpecial(_) => (true, 0),
            StGlobal | StShared => (false, 2),
            Bra { .. } => (false, 1),
            Jmp { .. } | Exit | Bar => (false, 0),
        };
        assert_eq!(
            self.dst.is_some(),
            want_dst,
            "{:?}: destination presence mismatch",
            self.op
        );
        assert_eq!(
            self.srcs.len(),
            want_srcs,
            "{:?}: source count mismatch",
            self.op
        );
    }

    /// The opcode.
    #[inline]
    pub fn op(&self) -> Opcode {
        self.op
    }

    /// The destination register, if the instruction writes one.
    #[inline]
    pub fn dst(&self) -> Option<Reg> {
        self.dst
    }

    /// The source registers, in operand order.
    #[inline]
    pub fn srcs(&self) -> &[Reg] {
        &self.srcs
    }

    /// The functional-unit class (see [`Opcode::class`]).
    #[inline]
    pub fn class(&self) -> OpClass {
        self.op.class()
    }

    /// Whether this instruction is a global-memory load, the opcode class
    /// whose latency forces region splits in the RegLess compiler.
    #[inline]
    pub fn is_global_load(&self) -> bool {
        matches!(self.op, Opcode::LdGlobal)
    }

    /// Whether this instruction is a basic-block terminator.
    #[inline]
    pub fn is_terminator(&self) -> bool {
        self.op.is_terminator()
    }

    /// Evaluate the instruction's ALU semantics for one warp.
    ///
    /// `srcs` must hold the current values of [`Instruction::srcs`] in order.
    /// Memory operations are *not* evaluated here (the simulator models them
    /// against its memory hierarchy); this returns `None` for them and for
    /// instructions with no destination.
    ///
    /// # Panics
    ///
    /// Panics if `srcs.len()` does not match the instruction's source count.
    pub fn evaluate(&self, srcs: &[LaneVec], warp_index: usize) -> Option<LaneVec> {
        use Opcode::*;
        assert_eq!(srcs.len(), self.srcs.len(), "operand count mismatch");
        let v = match self.op {
            IAdd => srcs[0].zip_map(&srcs[1], u32::wrapping_add),
            ISub => srcs[0].zip_map(&srcs[1], u32::wrapping_sub),
            IMul => srcs[0].zip_map(&srcs[1], u32::wrapping_mul),
            IMad => srcs[0]
                .zip_map(&srcs[1], u32::wrapping_mul)
                .zip_map(&srcs[2], u32::wrapping_add),
            And => srcs[0].zip_map(&srcs[1], |a, b| a & b),
            Or => srcs[0].zip_map(&srcs[1], |a, b| a | b),
            Xor => srcs[0].zip_map(&srcs[1], |a, b| a ^ b),
            Shl => srcs[0].zip_map(&srcs[1], |a, b| a.wrapping_shl(b & 31)),
            Shr => srcs[0].zip_map(&srcs[1], |a, b| a.wrapping_shr(b & 31)),
            // Floating-point ops are modelled as integer mixes: the timing
            // and operand traffic are what the evaluation measures, not IEEE
            // semantics. The mixes keep values deterministic and data-
            // dependent so compressibility is realistic.
            FAdd => srcs[0].zip_map(&srcs[1], |a, b| a.wrapping_add(b).rotate_left(1)),
            FMul => srcs[0].zip_map(&srcs[1], |a, b| a.wrapping_mul(b | 1).rotate_left(3)),
            FFma => srcs[0]
                .zip_map(&srcs[1], |a, b| a.wrapping_mul(b | 1))
                .zip_map(&srcs[2], |a, b| a.wrapping_add(b).rotate_left(1)),
            Sfu => srcs[0].map(|a| (a ^ 0x9e37_79b9).wrapping_mul(0x85eb_ca6b).rotate_left(13)),
            MovImm(imm) => LaneVec::splat(imm),
            Mov => srcs[0],
            ReadSpecial(Special::ThreadIdx) => LaneVec::stride((warp_index * WARP_WIDTH) as u32, 1),
            ReadSpecial(Special::WarpIdx) => LaneVec::splat(warp_index as u32),
            ReadSpecial(Special::LaneIdx) => LaneVec::stride(0, 1),
            SetLt => srcs[0].zip_map(&srcs[1], |a, b| u32::from(a < b)),
            SetEq => srcs[0].zip_map(&srcs[1], |a, b| u32::from(a == b)),
            LdGlobal | StGlobal | LdShared | StShared | Bra { .. } | Jmp { .. } | Exit | Bar => {
                return None
            }
        };
        Some(v)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(d) = self.dst {
            write!(f, "{d} = {}", self.op)?;
        } else {
            write!(f, "{}", self.op)?;
        }
        for (i, s) in self.srcs.iter().enumerate() {
            if i == 0 {
                write!(f, " {s}")?;
            } else {
                write!(f, ", {s}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(d: u16, a: u16, b: u16) -> Instruction {
        Instruction::new(Opcode::IAdd, Some(Reg(d)), vec![Reg(a), Reg(b)])
    }

    #[test]
    fn evaluate_iadd() {
        let insn = add(2, 0, 1);
        let out = insn
            .evaluate(&[LaneVec::splat(3), LaneVec::stride(0, 1)], 0)
            .unwrap();
        assert_eq!(out.lane(0), 3);
        assert_eq!(out.lane(10), 13);
    }

    #[test]
    fn evaluate_thread_idx_depends_on_warp() {
        let insn = Instruction::new(
            Opcode::ReadSpecial(Special::ThreadIdx),
            Some(Reg(0)),
            vec![],
        );
        let w0 = insn.evaluate(&[], 0).unwrap();
        let w2 = insn.evaluate(&[], 2).unwrap();
        assert_eq!(w0.lane(0), 0);
        assert_eq!(w2.lane(0), 64);
        assert_eq!(w2.lane(31), 95);
    }

    #[test]
    fn memory_ops_have_no_alu_result() {
        let ld = Instruction::new(Opcode::LdGlobal, Some(Reg(1)), vec![Reg(0)]);
        assert!(ld.evaluate(&[LaneVec::zero()], 0).is_none());
        assert!(ld.is_global_load());
    }

    #[test]
    fn setlt_produces_condition_bits() {
        let insn = Instruction::new(Opcode::SetLt, Some(Reg(2)), vec![Reg(0), Reg(1)]);
        let out = insn
            .evaluate(&[LaneVec::stride(0, 1), LaneVec::splat(4)], 0)
            .unwrap();
        assert_eq!(out.nonzero_bits(), 0b1111);
    }

    #[test]
    #[should_panic(expected = "source count mismatch")]
    fn wrong_operand_count_panics() {
        Instruction::new(Opcode::IAdd, Some(Reg(0)), vec![Reg(1)]);
    }

    #[test]
    #[should_panic(expected = "destination presence mismatch")]
    fn store_with_destination_panics() {
        Instruction::new(Opcode::StGlobal, Some(Reg(0)), vec![Reg(1), Reg(2)]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(add(3, 1, 2).to_string(), "r3 = iadd r1, r2");
        let st = Instruction::new(Opcode::StGlobal, None, vec![Reg(0), Reg(1)]);
        assert_eq!(st.to_string(), "stglobal r0, r1");
    }
}
