//! Architectural register, warp, and lane identifiers.

use std::fmt;

/// Width of a warp: the number of SIMD lanes that execute an instruction
/// together. Matches NVIDIA's Maxwell-generation hardware (and the paper).
pub const WARP_WIDTH: usize = 32;

/// An architectural (virtual ISA) register identifier, `r0`, `r1`, ….
///
/// Each register names a *per-thread* 32-bit value; across the
/// [`WARP_WIDTH`] lanes of a warp one `Reg` therefore denotes a 128-byte
/// vector, which is the granularity at which the register file, the operand
/// staging unit, and the memory system move operands.
///
/// ```
/// use regless_isa::Reg;
/// let r = Reg(5);
/// assert_eq!(r.to_string(), "r5");
/// assert_eq!(r.index(), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Reg(pub u16);

impl Reg {
    /// The register's index within the kernel's architectural register space.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u16> for Reg {
    fn from(value: u16) -> Self {
        Reg(value)
    }
}

/// A hardware warp identifier within one SM.
///
/// ```
/// use regless_isa::WarpId;
/// assert_eq!(WarpId(3).to_string(), "w3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct WarpId(pub u16);

impl WarpId {
    /// The warp's index within its SM.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A set of active lanes within a warp, one bit per lane.
///
/// The mask is the unit of SIMT control flow: a divergent branch splits the
/// current mask into taken and not-taken subsets, and reconvergence merges
/// them back. An all-zero mask is legal and denotes "no lanes".
///
/// ```
/// use regless_isa::LaneMask;
/// let all = LaneMask::all();
/// let (t, nt) = all.split(0b1010);
/// assert_eq!(t.count(), 2);
/// assert_eq!(nt.count(), 30);
/// assert_eq!(t.union(nt), all);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct LaneMask(pub u32);

impl LaneMask {
    /// Mask with every lane active.
    #[inline]
    pub fn all() -> Self {
        LaneMask(u32::MAX)
    }

    /// Mask with no lanes active.
    #[inline]
    pub fn none() -> Self {
        LaneMask(0)
    }

    /// Mask with exactly the given lane active.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= WARP_WIDTH`.
    #[inline]
    pub fn single(lane: usize) -> Self {
        assert!(lane < WARP_WIDTH, "lane {lane} out of range");
        LaneMask(1 << lane)
    }

    /// Whether the given lane is active.
    #[inline]
    pub fn contains(self, lane: usize) -> bool {
        lane < WARP_WIDTH && self.0 & (1 << lane) != 0
    }

    /// Number of active lanes.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether no lanes are active.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether every lane is active.
    #[inline]
    pub fn is_full(self) -> bool {
        self.0 == u32::MAX
    }

    /// Split this mask by a per-lane condition bitmap: lanes whose condition
    /// bit is set go to the first (taken) mask, the rest to the second.
    #[inline]
    pub fn split(self, taken_bits: u32) -> (LaneMask, LaneMask) {
        (
            LaneMask(self.0 & taken_bits),
            LaneMask(self.0 & !taken_bits),
        )
    }

    /// Union of two masks.
    #[inline]
    pub fn union(self, other: LaneMask) -> LaneMask {
        LaneMask(self.0 | other.0)
    }

    /// Intersection of two masks.
    #[inline]
    pub fn intersect(self, other: LaneMask) -> LaneMask {
        LaneMask(self.0 & other.0)
    }

    /// Iterate over the indices of active lanes, in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..WARP_WIDTH).filter(move |&l| self.contains(l))
    }
}

impl fmt::Display for LaneMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_index() {
        assert_eq!(Reg(0).to_string(), "r0");
        assert_eq!(Reg(255).index(), 255);
        assert_eq!(Reg::from(7u16), Reg(7));
    }

    #[test]
    fn lane_mask_split_partitions() {
        let m = LaneMask::all();
        let (t, nt) = m.split(0x0000_ffff);
        assert_eq!(t.count(), 16);
        assert_eq!(nt.count(), 16);
        assert_eq!(t.union(nt), m);
        assert!(t.intersect(nt).is_empty());
    }

    #[test]
    fn lane_mask_single_and_contains() {
        let m = LaneMask::single(31);
        assert!(m.contains(31));
        assert!(!m.contains(0));
        assert_eq!(m.count(), 1);
        assert!(!m.contains(64)); // out-of-range lanes are never contained
    }

    #[test]
    fn lane_mask_iter_yields_active_lanes() {
        let m = LaneMask(0b1011);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn empty_and_full() {
        assert!(LaneMask::none().is_empty());
        assert!(LaneMask::all().is_full());
        assert!(!LaneMask::all().is_empty());
    }
}
