//! Basic blocks and block identifiers.

use crate::insn::Instruction;
use std::fmt;

/// Identifier of a basic block within a kernel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index within the kernel's block list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A basic block: a straight-line instruction sequence ending in exactly one
/// terminator ([`crate::Opcode::Bra`], [`crate::Opcode::Jmp`] or
/// [`crate::Opcode::Exit`]).
///
/// RegLess regions never span basic-block boundaries (paper §4.1), so blocks
/// are both the unit of control flow and the coarsest possible region.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BasicBlock {
    id: BlockId,
    insns: Vec<Instruction>,
}

impl BasicBlock {
    /// Create a block from its instructions.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty, if its last instruction is not a
    /// terminator, or if a terminator appears before the last position.
    pub fn new(id: BlockId, insns: Vec<Instruction>) -> Self {
        assert!(!insns.is_empty(), "{id}: basic block must not be empty");
        let last = insns.len() - 1;
        for (i, insn) in insns.iter().enumerate() {
            if i == last {
                assert!(
                    insn.is_terminator(),
                    "{id}: block must end with a terminator"
                );
            } else {
                assert!(
                    !insn.is_terminator(),
                    "{id}: terminator before end of block"
                );
            }
        }
        BasicBlock { id, insns }
    }

    /// The block's identifier.
    #[inline]
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The block's instructions, terminator last.
    #[inline]
    pub fn insns(&self) -> &[Instruction] {
        &self.insns
    }

    /// Number of instructions including the terminator.
    #[inline]
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Always false: blocks are non-empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The terminator instruction.
    pub fn terminator(&self) -> &Instruction {
        self.insns.last().expect("blocks are non-empty")
    }

    /// Successor block ids (taken target first for branches).
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator().op().successors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;
    use crate::reg::Reg;

    fn exit() -> Instruction {
        Instruction::new(Opcode::Exit, None, vec![])
    }

    #[test]
    fn block_accessors() {
        let add = Instruction::new(Opcode::IAdd, Some(Reg(2)), vec![Reg(0), Reg(1)]);
        let bb = BasicBlock::new(BlockId(0), vec![add.clone(), exit()]);
        assert_eq!(bb.len(), 2);
        assert_eq!(bb.insns()[0], add);
        assert!(bb.terminator().is_terminator());
        assert!(bb.successors().is_empty());
        assert!(!bb.is_empty());
    }

    #[test]
    fn branch_successors_ordered() {
        let bra = Instruction::new(
            Opcode::Bra {
                taken: BlockId(2),
                not_taken: BlockId(1),
            },
            None,
            vec![Reg(0)],
        );
        let bb = BasicBlock::new(BlockId(0), vec![bra]);
        assert_eq!(bb.successors(), vec![BlockId(2), BlockId(1)]);
    }

    #[test]
    #[should_panic(expected = "must end with a terminator")]
    fn missing_terminator_panics() {
        let add = Instruction::new(Opcode::IAdd, Some(Reg(2)), vec![Reg(0), Reg(1)]);
        BasicBlock::new(BlockId(0), vec![add]);
    }

    #[test]
    #[should_panic(expected = "terminator before end")]
    fn early_terminator_panics() {
        BasicBlock::new(BlockId(0), vec![exit(), exit()]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_block_panics() {
        BasicBlock::new(BlockId(0), vec![]);
    }
}
