//! SIMT instruction set and kernel IR for the RegLess reproduction.
//!
//! This crate defines the compiler- and simulator-facing representation of
//! GPU kernels: [`Reg`]isters, [`Opcode`]s, [`Instruction`]s, [`BasicBlock`]s
//! and validated [`Kernel`] control-flow graphs, plus the warp-wide value
//! type [`LaneVec`] used by the functional simulator and the RegLess
//! compressor.
//!
//! Kernels are most conveniently constructed with [`KernelBuilder`]:
//!
//! ```
//! use regless_isa::KernelBuilder;
//! let mut b = KernelBuilder::new("scale");
//! let i = b.thread_idx();
//! let v = b.ld_global(i);
//! let two = b.movi(2);
//! let scaled = b.imul(v, two);
//! b.st_global(scaled, i);
//! b.exit();
//! let kernel = b.finish()?;
//! assert_eq!(kernel.name(), "scale");
//! # Ok::<(), regless_isa::KernelError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod builder;
mod insn;
mod kernel;
mod kstats;
mod op;
mod reg;
pub mod text;
mod value;

pub use block::{BasicBlock, BlockId};
pub use builder::KernelBuilder;
pub use insn::Instruction;
pub use kernel::{InsnRef, Kernel, KernelError};
pub use kstats::KernelStats;
pub use op::{OpClass, Opcode, Special};
pub use reg::{LaneMask, Reg, WarpId, WARP_WIDTH};
pub use value::LaneVec;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn lane_mask_split_is_partition(mask: u32, cond: u32) {
            let m = LaneMask(mask);
            let (t, nt) = m.split(cond);
            prop_assert_eq!(t.union(nt), m);
            prop_assert!(t.intersect(nt).is_empty());
            prop_assert_eq!(t.count() + nt.count(), m.count());
        }

        #[test]
        fn stride_is_affine(base: u32, step in 0u32..1024) {
            let v = LaneVec::stride(base, step);
            for l in 1..WARP_WIDTH {
                prop_assert_eq!(
                    v.lane(l).wrapping_sub(v.lane(l - 1)),
                    step
                );
            }
        }

        #[test]
        fn zip_map_add_commutes(a: u32, b: u32) {
            let va = LaneVec::splat(a);
            let vb = LaneVec::splat(b);
            prop_assert_eq!(
                va.zip_map(&vb, u32::wrapping_add),
                vb.zip_map(&va, u32::wrapping_add)
            );
        }

        /// The textual format round-trips arbitrary straight-line kernels.
        #[test]
        fn text_roundtrip(ops in proptest::collection::vec(0u8..8, 1..40)) {
            let mut b = KernelBuilder::new("arb");
            let mut live = vec![b.movi(1), b.thread_idx()];
            for (i, &k) in ops.iter().enumerate() {
                let a = live[i % live.len()];
                let c = live[(i * 3 + 1) % live.len()];
                let r = match k {
                    0 => b.iadd(a, c),
                    1 => b.imul(a, c),
                    2 => b.xor(a, c),
                    3 => b.sfu(a),
                    4 => b.ld_global(a),
                    5 => b.ffma(a, c, a),
                    6 => b.setlt(a, c),
                    _ => b.movi(i as u32),
                };
                live.push(r);
            }
            let out = *live.last().expect("nonempty");
            b.st_global(out, out);
            b.exit();
            let kernel = b.finish().expect("valid");
            let text = text::format_kernel(&kernel);
            let parsed = text::parse_kernel(&text).expect("parses");
            prop_assert_eq!(parsed, kernel);
        }

        #[test]
        fn nonzero_bits_counts(vals in proptest::collection::vec(0u32..4, WARP_WIDTH)) {
            let mut v = LaneVec::zero();
            for (i, &x) in vals.iter().enumerate() {
                v.set_lane(i, x);
            }
            let expected = vals.iter().filter(|&&x| x != 0).count() as u32;
            prop_assert_eq!(v.nonzero_bits().count_ones(), expected);
        }
    }
}
