//! Warp-wide register values.

use crate::reg::WARP_WIDTH;
use std::fmt;

/// The 32-bit values a register holds across every lane of a warp.
///
/// One `LaneVec` is exactly the 128-byte payload that the register file, the
/// operand staging unit, and an L1 cache line move as a unit. Keeping
/// concrete per-lane values (rather than an abstract "register is live" flag)
/// lets the RegLess compressor operate on the real value patterns that arise
/// in kernels: broadcast constants, thread-index strides, and so on.
///
/// ```
/// use regless_isa::LaneVec;
/// let tid = LaneVec::stride(100, 1);
/// assert_eq!(tid.lane(0), 100);
/// assert_eq!(tid.lane(31), 131);
/// assert!(LaneVec::splat(7).is_uniform());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneVec(pub [u32; WARP_WIDTH]);

impl LaneVec {
    /// All lanes zero.
    #[inline]
    pub fn zero() -> Self {
        LaneVec([0; WARP_WIDTH])
    }

    /// Every lane holds the same value (a broadcast constant).
    #[inline]
    pub fn splat(value: u32) -> Self {
        LaneVec([value; WARP_WIDTH])
    }

    /// Lane `i` holds `base + i * step` (wrapping), the pattern produced by
    /// thread-index computations.
    pub fn stride(base: u32, step: u32) -> Self {
        let mut v = [0; WARP_WIDTH];
        for (i, lane) in v.iter_mut().enumerate() {
            *lane = base.wrapping_add(step.wrapping_mul(i as u32));
        }
        LaneVec(v)
    }

    /// The value held by one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= WARP_WIDTH`.
    #[inline]
    pub fn lane(&self, lane: usize) -> u32 {
        self.0[lane]
    }

    /// Set the value held by one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= WARP_WIDTH`.
    #[inline]
    pub fn set_lane(&mut self, lane: usize, value: u32) {
        self.0[lane] = value;
    }

    /// Whether every lane holds the same value.
    pub fn is_uniform(&self) -> bool {
        self.0.iter().all(|&v| v == self.0[0])
    }

    /// Apply a binary lane-wise operation.
    pub fn zip_map(&self, other: &LaneVec, mut f: impl FnMut(u32, u32) -> u32) -> LaneVec {
        let mut out = [0; WARP_WIDTH];
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(self.0[i], other.0[i]);
        }
        LaneVec(out)
    }

    /// Apply a unary lane-wise operation.
    pub fn map(&self, mut f: impl FnMut(u32) -> u32) -> LaneVec {
        let mut out = [0; WARP_WIDTH];
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(self.0[i]);
        }
        LaneVec(out)
    }

    /// A bitmap with bit `i` set iff lane `i`'s value is non-zero; the form
    /// branch conditions take.
    pub fn nonzero_bits(&self) -> u32 {
        let mut bits = 0u32;
        for (i, &v) in self.0.iter().enumerate() {
            if v != 0 {
                bits |= 1 << i;
            }
        }
        bits
    }
}

impl Default for LaneVec {
    fn default() -> Self {
        LaneVec::zero()
    }
}

impl fmt::Debug for LaneVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_uniform() {
            write!(f, "LaneVec(splat {})", self.0[0])
        } else {
            write!(
                f,
                "LaneVec({}, {}, …, {})",
                self.0[0],
                self.0[1],
                self.0[WARP_WIDTH - 1]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_is_uniform() {
        assert!(LaneVec::splat(42).is_uniform());
        assert!(!LaneVec::stride(0, 3).is_uniform());
        assert!(LaneVec::stride(9, 0).is_uniform());
    }

    #[test]
    fn stride_values() {
        let v = LaneVec::stride(10, 4);
        assert_eq!(v.lane(0), 10);
        assert_eq!(v.lane(5), 30);
    }

    #[test]
    fn stride_wraps() {
        let v = LaneVec::stride(u32::MAX, 1);
        assert_eq!(v.lane(1), 0);
    }

    #[test]
    fn zip_map_adds() {
        let a = LaneVec::stride(0, 1);
        let b = LaneVec::splat(100);
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c.lane(7), 107);
    }

    #[test]
    fn nonzero_bits_matches_lanes() {
        let mut v = LaneVec::zero();
        v.set_lane(0, 1);
        v.set_lane(31, 5);
        assert_eq!(v.nonzero_bits(), (1 << 0) | (1 << 31));
    }
}
