//! Kernels: validated control-flow graphs of basic blocks.

use crate::block::{BasicBlock, BlockId};
use crate::insn::Instruction;
use std::fmt;

/// A reference to one static instruction: a block and an index within it.
///
/// Ordered first by block, then by index, which matches the linear "static
/// PC" order used by the region-creation algorithm.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InsnRef {
    /// The containing block.
    pub block: BlockId,
    /// The instruction's index within the block.
    pub idx: usize,
}

impl fmt::Display for InsnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.idx)
    }
}

/// Errors detected when validating a kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum KernelError {
    /// A terminator referenced a block id outside the kernel.
    BadBlockTarget {
        /// Block containing the bad terminator.
        from: BlockId,
        /// The out-of-range target.
        target: BlockId,
    },
    /// An instruction referenced a register `>= num_regs`.
    BadRegister {
        /// Location of the offending instruction.
        at: InsnRef,
        /// The out-of-range register index.
        reg: u16,
    },
    /// The kernel has no blocks.
    Empty,
    /// No `Exit` instruction is present.
    NoExit,
    /// Block ids are not dense `0..n` in list order.
    NonDenseIds,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::BadBlockTarget { from, target } => {
                write!(f, "{from} branches to nonexistent {target}")
            }
            KernelError::BadRegister { at, reg } => {
                write!(f, "instruction at {at} uses out-of-range register r{reg}")
            }
            KernelError::Empty => write!(f, "kernel has no basic blocks"),
            KernelError::NoExit => write!(f, "kernel has no exit instruction"),
            KernelError::NonDenseIds => write!(f, "block ids are not dense and ordered"),
        }
    }
}

impl std::error::Error for KernelError {}

/// A complete SIMT kernel: a named, validated CFG plus its architectural
/// register count.
///
/// ```
/// use regless_isa::{KernelBuilder, Opcode};
/// let mut b = KernelBuilder::new("demo");
/// let r = b.movi(7);
/// let s = b.iadd(r, r);
/// b.exit();
/// let kernel = b.finish().expect("valid kernel");
/// assert_eq!(kernel.name(), "demo");
/// assert_eq!(kernel.num_blocks(), 1);
/// assert!(kernel.num_regs() >= 2);
/// # let _ = (s, Opcode::Exit);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Kernel {
    name: String,
    blocks: Vec<BasicBlock>,
    num_regs: u16,
}

impl Kernel {
    /// Create and validate a kernel. The entry block is `BlockId(0)`.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] if the CFG is malformed: empty, non-dense
    /// block ids, dangling branch targets, out-of-range registers, or no
    /// reachable `Exit`.
    pub fn new(
        name: impl Into<String>,
        blocks: Vec<BasicBlock>,
        num_regs: u16,
    ) -> Result<Self, KernelError> {
        if blocks.is_empty() {
            return Err(KernelError::Empty);
        }
        if blocks.iter().enumerate().any(|(i, b)| b.id().index() != i) {
            return Err(KernelError::NonDenseIds);
        }
        let n = blocks.len();
        let mut has_exit = false;
        for block in &blocks {
            for target in block.successors() {
                if target.index() >= n {
                    return Err(KernelError::BadBlockTarget {
                        from: block.id(),
                        target,
                    });
                }
            }
            for (idx, insn) in block.insns().iter().enumerate() {
                if matches!(insn.op(), crate::Opcode::Exit) {
                    has_exit = true;
                }
                let regs = insn.srcs().iter().copied().chain(insn.dst());
                for r in regs {
                    if r.0 >= num_regs {
                        return Err(KernelError::BadRegister {
                            at: InsnRef {
                                block: block.id(),
                                idx,
                            },
                            reg: r.0,
                        });
                    }
                }
            }
        }
        if !has_exit {
            return Err(KernelError::NoExit);
        }
        Ok(Kernel {
            name: name.into(),
            blocks,
            num_regs,
        })
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block (always `BlockId(0)`).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of architectural registers used.
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// All blocks, in id order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Look up one block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Look up one instruction.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    pub fn insn(&self, at: InsnRef) -> &Instruction {
        &self.block(at.block).insns()[at.idx]
    }

    /// Total static instruction count.
    pub fn num_insns(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len).sum()
    }

    /// Iterate over every instruction in linear (block, index) order.
    pub fn iter_insns(&self) -> impl Iterator<Item = (InsnRef, &Instruction)> {
        self.blocks.iter().flat_map(|b| {
            b.insns()
                .iter()
                .enumerate()
                .map(move |(idx, insn)| (InsnRef { block: b.id(), idx }, insn))
        })
    }

    /// Predecessor lists for every block, indexed by block id.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for block in &self.blocks {
            for succ in block.successors() {
                let list = &mut preds[succ.index()];
                if !list.contains(&block.id()) {
                    list.push(block.id());
                }
            }
        }
        preds
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {} ({} regs)", self.name, self.num_regs)?;
        for block in &self.blocks {
            writeln!(f, "{}:", block.id())?;
            for insn in block.insns() {
                writeln!(f, "  {insn}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Opcode;
    use crate::reg::Reg;

    fn insn(op: Opcode, dst: Option<u16>, srcs: &[u16]) -> Instruction {
        Instruction::new(op, dst.map(Reg), srcs.iter().map(|&r| Reg(r)).collect())
    }

    fn diamond() -> Kernel {
        // bb0 -> (bb1 | bb2) -> bb3
        let b0 = BasicBlock::new(
            BlockId(0),
            vec![
                insn(Opcode::MovImm(1), Some(0), &[]),
                insn(
                    Opcode::Bra {
                        taken: BlockId(1),
                        not_taken: BlockId(2),
                    },
                    None,
                    &[0],
                ),
            ],
        );
        let b1 = BasicBlock::new(
            BlockId(1),
            vec![
                insn(Opcode::MovImm(2), Some(1), &[]),
                insn(Opcode::Jmp { target: BlockId(3) }, None, &[]),
            ],
        );
        let b2 = BasicBlock::new(
            BlockId(2),
            vec![
                insn(Opcode::MovImm(3), Some(1), &[]),
                insn(Opcode::Jmp { target: BlockId(3) }, None, &[]),
            ],
        );
        let b3 = BasicBlock::new(BlockId(3), vec![insn(Opcode::Exit, None, &[])]);
        Kernel::new("diamond", vec![b0, b1, b2, b3], 2).unwrap()
    }

    #[test]
    fn valid_kernel_queries() {
        let k = diamond();
        assert_eq!(k.num_blocks(), 4);
        assert_eq!(k.num_insns(), 7);
        assert_eq!(k.entry(), BlockId(0));
        assert_eq!(k.block(BlockId(1)).len(), 2);
        let at = InsnRef {
            block: BlockId(0),
            idx: 0,
        };
        assert_eq!(k.insn(at).dst(), Some(Reg(0)));
    }

    #[test]
    fn predecessors_of_join() {
        let k = diamond();
        let preds = k.predecessors();
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn iter_insns_is_linear() {
        let k = diamond();
        let refs: Vec<InsnRef> = k.iter_insns().map(|(r, _)| r).collect();
        let mut sorted = refs.clone();
        sorted.sort();
        assert_eq!(refs, sorted);
        assert_eq!(refs.len(), k.num_insns());
    }

    #[test]
    fn dangling_target_rejected() {
        let b0 = BasicBlock::new(
            BlockId(0),
            vec![insn(Opcode::Jmp { target: BlockId(9) }, None, &[])],
        );
        let err = Kernel::new("bad", vec![b0], 1).unwrap_err();
        assert!(matches!(err, KernelError::BadBlockTarget { .. }));
    }

    #[test]
    fn out_of_range_register_rejected() {
        let b0 = BasicBlock::new(
            BlockId(0),
            vec![
                insn(Opcode::MovImm(0), Some(5), &[]),
                insn(Opcode::Exit, None, &[]),
            ],
        );
        let err = Kernel::new("bad", vec![b0], 2).unwrap_err();
        assert!(matches!(err, KernelError::BadRegister { reg: 5, .. }));
    }

    #[test]
    fn missing_exit_rejected() {
        let b0 = BasicBlock::new(
            BlockId(0),
            vec![insn(Opcode::Jmp { target: BlockId(0) }, None, &[])],
        );
        let err = Kernel::new("loop", vec![b0], 1).unwrap_err();
        assert_eq!(err, KernelError::NoExit);
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<KernelError> = vec![
            KernelError::Empty,
            KernelError::NoExit,
            KernelError::NonDenseIds,
            KernelError::BadBlockTarget {
                from: BlockId(0),
                target: BlockId(1),
            },
            KernelError::BadRegister {
                at: InsnRef {
                    block: BlockId(0),
                    idx: 0,
                },
                reg: 3,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
