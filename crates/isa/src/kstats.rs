//! Static kernel statistics: instruction mix, control-flow shape, and
//! register usage. Used by the inspector tooling and the workload tests to
//! characterize generated kernels.

use crate::kernel::Kernel;
use crate::op::OpClass;
use std::collections::HashSet;
use std::fmt;

/// Static statistics of one kernel.
#[derive(Clone, PartialEq, Debug)]
pub struct KernelStats {
    /// Static instruction count.
    pub insns: usize,
    /// Basic-block count.
    pub blocks: usize,
    /// CFG edges.
    pub edges: usize,
    /// Conditional branches.
    pub branches: usize,
    /// Back edges (targets with a lower or equal block id — loops).
    pub back_edges: usize,
    /// Integer-ALU instructions.
    pub int_alu: usize,
    /// Floating-point instructions.
    pub fp_alu: usize,
    /// Special-function-unit instructions.
    pub sfu: usize,
    /// Global memory accesses.
    pub mem_global: usize,
    /// Shared memory accesses.
    pub mem_shared: usize,
    /// Barriers.
    pub barriers: usize,
    /// Distinct registers referenced.
    pub regs_used: usize,
    /// Mean source operands per instruction.
    pub mean_srcs: f64,
}

impl KernelStats {
    /// Compute the statistics for a kernel.
    pub fn of(kernel: &Kernel) -> Self {
        let mut s = KernelStats {
            insns: kernel.num_insns(),
            blocks: kernel.num_blocks(),
            edges: 0,
            branches: 0,
            back_edges: 0,
            int_alu: 0,
            fp_alu: 0,
            sfu: 0,
            mem_global: 0,
            mem_shared: 0,
            barriers: 0,
            regs_used: 0,
            mean_srcs: 0.0,
        };
        let mut regs = HashSet::new();
        let mut total_srcs = 0usize;
        for block in kernel.blocks() {
            let succs = block.successors();
            s.edges += succs.len();
            s.back_edges += succs.iter().filter(|t| t.0 <= block.id().0).count();
            if succs.len() > 1 {
                s.branches += 1;
            }
            for insn in block.insns() {
                match insn.class() {
                    OpClass::IntAlu => s.int_alu += 1,
                    OpClass::FpAlu => s.fp_alu += 1,
                    OpClass::Sfu => s.sfu += 1,
                    OpClass::MemGlobal => s.mem_global += 1,
                    OpClass::MemShared => s.mem_shared += 1,
                    OpClass::Sync => s.barriers += 1,
                    OpClass::Control => {}
                }
                total_srcs += insn.srcs().len();
                regs.extend(insn.srcs().iter().copied());
                regs.extend(insn.dst());
            }
        }
        s.regs_used = regs.len();
        s.mean_srcs = total_srcs as f64 / s.insns.max(1) as f64;
        s
    }

    /// Fraction of instructions that access global memory — the
    /// memory-intensity knob that separates `bfs` from `lud`.
    pub fn memory_intensity(&self) -> f64 {
        self.mem_global as f64 / self.insns.max(1) as f64
    }

    /// Whether the kernel contains any loop.
    pub fn has_loop(&self) -> bool {
        self.back_edges > 0
    }
}

impl fmt::Display for KernelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} insns in {} blocks ({} edges, {} branches, {} back edges)",
            self.insns, self.blocks, self.edges, self.branches, self.back_edges
        )?;
        writeln!(
            f,
            "mix: {} int, {} fp, {} sfu, {} global, {} shared, {} barriers",
            self.int_alu, self.fp_alu, self.sfu, self.mem_global, self.mem_shared, self.barriers
        )?;
        write!(
            f,
            "{} registers; {:.2} srcs/insn; memory intensity {:.2}",
            self.regs_used,
            self.mean_srcs,
            self.memory_intensity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    #[test]
    fn straight_line_stats() {
        let mut b = KernelBuilder::new("s");
        let i = b.thread_idx();
        let v = b.ld_global(i);
        let w = b.fadd(v, v);
        b.st_global(w, i);
        b.exit();
        let k = b.finish().unwrap();
        let s = KernelStats::of(&k);
        assert_eq!(s.insns, 5);
        assert_eq!(s.blocks, 1);
        assert_eq!(s.mem_global, 2);
        assert_eq!(s.fp_alu, 1);
        assert_eq!(s.int_alu, 1); // thread_idx
        assert_eq!(s.regs_used, 3);
        assert!(!s.has_loop());
        assert!((s.memory_intensity() - 0.4).abs() < 1e-9);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn loop_detected_as_back_edge() {
        let mut b = KernelBuilder::new("l");
        let body = b.new_block();
        let done = b.new_block();
        let i = b.movi(0);
        let n = b.movi(4);
        b.jmp(body);
        b.select(body);
        let one = b.movi(1);
        b.emit_to(i, crate::Opcode::IAdd, vec![i, one]);
        let c = b.setlt(i, n);
        b.bra(c, body, done);
        b.select(done);
        b.exit();
        let k = b.finish().unwrap();
        let s = KernelStats::of(&k);
        assert!(s.has_loop());
        assert_eq!(s.branches, 1);
        assert_eq!(s.barriers, 0);
    }
}
