//! Convenient construction of kernels.

use crate::block::{BasicBlock, BlockId};
use crate::insn::Instruction;
use crate::kernel::{Kernel, KernelError};
use crate::op::{Opcode, Special};
use crate::reg::Reg;

/// A builder for [`Kernel`]s: allocates virtual registers, tracks the
/// current block, and validates on [`KernelBuilder::finish`].
///
/// The entry block is created and selected automatically. Each value-
/// producing helper allocates a fresh destination register and returns it;
/// use [`KernelBuilder::emit_to`] to re-define an existing register (for
/// example to construct the *soft definition* patterns the liveness analysis
/// must handle).
///
/// ```
/// use regless_isa::KernelBuilder;
/// let mut b = KernelBuilder::new("saxpy-ish");
/// let i = b.thread_idx();
/// let x = b.ld_global(i);
/// let a = b.movi(3);
/// let ax = b.imul(a, x);
/// b.st_global(ax, i);
/// b.exit();
/// let kernel = b.finish().expect("valid");
/// assert_eq!(kernel.num_insns(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct KernelBuilder {
    name: String,
    /// Instruction lists per block; a block is "open" until terminated.
    blocks: Vec<Vec<Instruction>>,
    current: usize,
    next_reg: u16,
}

impl KernelBuilder {
    /// Start a kernel with an empty, selected entry block.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            blocks: vec![Vec::new()],
            current: 0,
            next_reg: 0,
        }
    }

    /// Allocate a fresh virtual register.
    pub fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("register space exhausted");
        r
    }

    /// Create a new (empty, unselected) block and return its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Vec::new());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Select the block that subsequent instructions are appended to.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist or is already terminated.
    pub fn select(&mut self, block: BlockId) {
        assert!(block.index() < self.blocks.len(), "{block} does not exist");
        assert!(!self.is_terminated(block), "{block} is already terminated");
        self.current = block.index();
    }

    /// The currently selected block.
    pub fn current(&self) -> BlockId {
        BlockId(self.current as u32)
    }

    fn is_terminated(&self, block: BlockId) -> bool {
        self.blocks[block.index()]
            .last()
            .is_some_and(Instruction::is_terminator)
    }

    /// Append a raw instruction to the current block.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn push(&mut self, insn: Instruction) {
        assert!(
            !self.is_terminated(self.current()),
            "cannot append past a terminator"
        );
        self.blocks[self.current].push(insn);
    }

    /// Emit `op` into an explicit destination register.
    pub fn emit_to(&mut self, dst: Reg, op: Opcode, srcs: Vec<Reg>) {
        self.push(Instruction::new(op, Some(dst), srcs));
    }

    fn emit_fresh(&mut self, op: Opcode, srcs: Vec<Reg>) -> Reg {
        let dst = self.fresh();
        self.emit_to(dst, op, srcs);
        dst
    }

    /// `dst = imm` (fresh destination).
    pub fn movi(&mut self, imm: u32) -> Reg {
        self.emit_fresh(Opcode::MovImm(imm), vec![])
    }

    /// `dst = src`.
    pub fn mov(&mut self, src: Reg) -> Reg {
        self.emit_fresh(Opcode::Mov, vec![src])
    }

    /// `dst = a + b`.
    pub fn iadd(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit_fresh(Opcode::IAdd, vec![a, b])
    }

    /// `dst = a - b`.
    pub fn isub(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit_fresh(Opcode::ISub, vec![a, b])
    }

    /// `dst = a * b`.
    pub fn imul(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit_fresh(Opcode::IMul, vec![a, b])
    }

    /// `dst = a * b + c`.
    pub fn imad(&mut self, a: Reg, b: Reg, c: Reg) -> Reg {
        self.emit_fresh(Opcode::IMad, vec![a, b, c])
    }

    /// `dst = a ^ b`.
    pub fn xor(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit_fresh(Opcode::Xor, vec![a, b])
    }

    /// `dst = a & b`.
    pub fn and(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit_fresh(Opcode::And, vec![a, b])
    }

    /// `dst = a << b`.
    pub fn shl(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit_fresh(Opcode::Shl, vec![a, b])
    }

    /// Floating add.
    pub fn fadd(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit_fresh(Opcode::FAdd, vec![a, b])
    }

    /// Floating multiply.
    pub fn fmul(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit_fresh(Opcode::FMul, vec![a, b])
    }

    /// Fused multiply-add.
    pub fn ffma(&mut self, a: Reg, b: Reg, c: Reg) -> Reg {
        self.emit_fresh(Opcode::FFma, vec![a, b, c])
    }

    /// Special-function-unit op.
    pub fn sfu(&mut self, a: Reg) -> Reg {
        self.emit_fresh(Opcode::Sfu, vec![a])
    }

    /// Read the global thread index.
    pub fn thread_idx(&mut self) -> Reg {
        self.emit_fresh(Opcode::ReadSpecial(Special::ThreadIdx), vec![])
    }

    /// Read the warp index.
    pub fn warp_idx(&mut self) -> Reg {
        self.emit_fresh(Opcode::ReadSpecial(Special::WarpIdx), vec![])
    }

    /// Read the lane index.
    pub fn lane_idx(&mut self) -> Reg {
        self.emit_fresh(Opcode::ReadSpecial(Special::LaneIdx), vec![])
    }

    /// `dst = (a < b)`.
    pub fn setlt(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit_fresh(Opcode::SetLt, vec![a, b])
    }

    /// `dst = (a == b)`.
    pub fn seteq(&mut self, a: Reg, b: Reg) -> Reg {
        self.emit_fresh(Opcode::SetEq, vec![a, b])
    }

    /// Global load from the address in `addr`.
    pub fn ld_global(&mut self, addr: Reg) -> Reg {
        self.emit_fresh(Opcode::LdGlobal, vec![addr])
    }

    /// Global store of `value` to the address in `addr`.
    pub fn st_global(&mut self, value: Reg, addr: Reg) {
        self.push(Instruction::new(Opcode::StGlobal, None, vec![value, addr]));
    }

    /// Shared-memory load.
    pub fn ld_shared(&mut self, addr: Reg) -> Reg {
        self.emit_fresh(Opcode::LdShared, vec![addr])
    }

    /// Shared-memory store.
    pub fn st_shared(&mut self, value: Reg, addr: Reg) {
        self.push(Instruction::new(Opcode::StShared, None, vec![value, addr]));
    }

    /// Barrier.
    pub fn bar(&mut self) {
        self.push(Instruction::new(Opcode::Bar, None, vec![]));
    }

    /// Terminate the current block with a conditional branch on `cond`.
    pub fn bra(&mut self, cond: Reg, taken: BlockId, not_taken: BlockId) {
        self.push(Instruction::new(
            Opcode::Bra { taken, not_taken },
            None,
            vec![cond],
        ));
    }

    /// Terminate the current block with an unconditional jump.
    pub fn jmp(&mut self, target: BlockId) {
        self.push(Instruction::new(Opcode::Jmp { target }, None, vec![]));
    }

    /// Terminate the current block with `Exit`.
    pub fn exit(&mut self) {
        self.push(Instruction::new(Opcode::Exit, None, vec![]));
    }

    /// Validate and produce the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] for any CFG defect (see [`Kernel::new`]).
    ///
    /// # Panics
    ///
    /// Panics if any block was left unterminated — that is a builder-usage
    /// bug, not a data error.
    pub fn finish(self) -> Result<Kernel, KernelError> {
        let blocks: Vec<BasicBlock> = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, insns)| {
                assert!(
                    insns.last().is_some_and(Instruction::is_terminator),
                    "bb{i} was not terminated"
                );
                BasicBlock::new(BlockId(i as u32), insns)
            })
            .collect();
        Kernel::new(self.name, blocks, self.next_reg.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_kernel() {
        let mut b = KernelBuilder::new("straight");
        let x = b.movi(1);
        let y = b.movi(2);
        let z = b.iadd(x, y);
        let _ = b.imul(z, z);
        b.exit();
        let k = b.finish().unwrap();
        assert_eq!(k.num_blocks(), 1);
        assert_eq!(k.num_regs(), 4);
        assert_eq!(k.num_insns(), 5);
    }

    #[test]
    fn diamond_via_builder() {
        let mut b = KernelBuilder::new("diamond");
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let join = b.new_block();
        let c = b.movi(1);
        b.bra(c, then_bb, else_bb);
        b.select(then_bb);
        let v = b.fresh();
        b.emit_to(v, Opcode::MovImm(10), vec![]);
        b.jmp(join);
        b.select(else_bb);
        b.emit_to(v, Opcode::MovImm(20), vec![]);
        b.jmp(join);
        b.select(join);
        b.exit();
        let k = b.finish().unwrap();
        assert_eq!(k.num_blocks(), 4);
        assert_eq!(k.predecessors()[join.index()].len(), 2);
    }

    #[test]
    fn loop_via_builder() {
        let mut b = KernelBuilder::new("loop");
        let body = b.new_block();
        let exit_bb = b.new_block();
        let i0 = b.movi(0);
        let n = b.movi(10);
        b.jmp(body);
        b.select(body);
        let one = b.movi(1);
        b.emit_to(i0, Opcode::IAdd, vec![i0, one]);
        let c = b.setlt(i0, n);
        b.bra(c, body, exit_bb);
        b.select(exit_bb);
        b.exit();
        let k = b.finish().unwrap();
        // body has itself as a predecessor (back edge).
        assert!(k.predecessors()[body.index()].contains(&body));
    }

    #[test]
    #[should_panic(expected = "was not terminated")]
    fn unterminated_block_panics() {
        let mut b = KernelBuilder::new("bad");
        let _ = b.movi(0);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn selecting_terminated_block_panics() {
        let mut b = KernelBuilder::new("bad");
        b.exit();
        b.select(BlockId(0));
    }

    #[test]
    #[should_panic(expected = "cannot append past a terminator")]
    fn pushing_past_terminator_panics() {
        let mut b = KernelBuilder::new("bad");
        b.exit();
        let _ = b.movi(0);
    }
}
