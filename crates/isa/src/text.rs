//! Textual kernel format: a small assembly syntax for writing kernels in
//! files and dumping them for inspection.
//!
//! ```text
//! kernel saxpy
//! bb0:
//!   r0 = s2r tid
//!   r1 = movi 0x4
//!   r2 = imul r0, r1
//!   r3 = ld.global [r2]
//!   r4 = movi 3
//!   r5 = imad r4, r3, r1
//!   st.global r5, [r2]
//!   exit
//! ```
//!
//! [`format_kernel`] and [`parse_kernel`] round-trip every valid kernel.

use crate::block::{BasicBlock, BlockId};
use crate::insn::Instruction;
use crate::kernel::{Kernel, KernelError};
use crate::op::{Opcode, Special};
use crate::reg::Reg;
use std::fmt;

/// Errors from [`parse_kernel`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<KernelError> for ParseError {
    fn from(e: KernelError) -> Self {
        ParseError {
            line: 0,
            message: format!("invalid kernel: {e}"),
        }
    }
}

/// Render a kernel in the textual format.
pub fn format_kernel(kernel: &Kernel) -> String {
    let mut out = format!("kernel {}\n", kernel.name());
    for block in kernel.blocks() {
        out.push_str(&format!("{}:\n", block.id()));
        for insn in block.insns() {
            out.push_str("  ");
            out.push_str(&format_insn(insn));
            out.push('\n');
        }
    }
    out
}

fn format_insn(insn: &Instruction) -> String {
    let srcs = insn.srcs();
    let dst = insn.dst().map(|d| format!("{d} = ")).unwrap_or_default();
    match insn.op() {
        Opcode::MovImm(v) => format!("{dst}movi {v:#x}"),
        Opcode::ReadSpecial(s) => format!(
            "{dst}s2r {}",
            match s {
                Special::ThreadIdx => "tid",
                Special::WarpIdx => "warp",
                Special::LaneIdx => "lane",
            }
        ),
        Opcode::LdGlobal => format!("{dst}ld.global [{}]", srcs[0]),
        Opcode::LdShared => format!("{dst}ld.shared [{}]", srcs[0]),
        Opcode::StGlobal => format!("st.global {}, [{}]", srcs[0], srcs[1]),
        Opcode::StShared => format!("st.shared {}, [{}]", srcs[0], srcs[1]),
        Opcode::Bra { taken, not_taken } => {
            format!("bra {}, {taken}, {not_taken}", srcs[0])
        }
        Opcode::Jmp { target } => format!("jmp {target}"),
        Opcode::Exit => "exit".to_string(),
        Opcode::Bar => "bar".to_string(),
        op => {
            let name = match op {
                Opcode::IAdd => "iadd",
                Opcode::ISub => "isub",
                Opcode::IMul => "imul",
                Opcode::IMad => "imad",
                Opcode::And => "and",
                Opcode::Or => "or",
                Opcode::Xor => "xor",
                Opcode::Shl => "shl",
                Opcode::Shr => "shr",
                Opcode::FAdd => "fadd",
                Opcode::FMul => "fmul",
                Opcode::FFma => "ffma",
                Opcode::Sfu => "sfu",
                Opcode::Mov => "mov",
                Opcode::SetLt => "setlt",
                Opcode::SetEq => "seteq",
                _ => unreachable!("handled above"),
            };
            let args = srcs
                .iter()
                .map(Reg::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            format!("{dst}{name} {args}")
        }
    }
}

/// Parse the textual format back into a kernel.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line for syntax errors, and a
/// line-0 error when the assembled CFG fails [`Kernel::new`] validation.
pub fn parse_kernel(text: &str) -> Result<Kernel, ParseError> {
    let mut name: Option<String> = None;
    let mut blocks: Vec<(BlockId, Vec<Instruction>)> = Vec::new();
    let mut max_reg: u16 = 0;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("kernel ") {
            if name.is_some() {
                return Err(err(lineno, "duplicate kernel directive"));
            }
            name = Some(rest.trim().to_string());
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let id = parse_block_id(label, lineno)?;
            if id.index() != blocks.len() {
                return Err(err(
                    lineno,
                    format!(
                        "blocks must be declared in order; expected bb{}",
                        blocks.len()
                    ),
                ));
            }
            blocks.push((id, Vec::new()));
            continue;
        }
        let Some((_, insns)) = blocks.last_mut() else {
            return Err(err(lineno, "instruction before any block label"));
        };
        let insn = parse_insn(line, lineno)?;
        for r in insn.srcs().iter().copied().chain(insn.dst()) {
            max_reg = max_reg.max(r.0);
        }
        insns.push(insn);
    }

    let name = name.ok_or_else(|| err(1, "missing `kernel <name>` directive"))?;
    let blocks: Vec<BasicBlock> = blocks
        .into_iter()
        .map(|(id, insns)| {
            if insns.is_empty() || !insns.last().expect("nonempty").is_terminator() {
                return Err(err(0, format!("{id} does not end with a terminator")));
            }
            Ok(BasicBlock::new(id, insns))
        })
        .collect::<Result<_, _>>()?;
    Ok(Kernel::new(name, blocks, max_reg + 1)?)
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_block_id(s: &str, line: usize) -> Result<BlockId, ParseError> {
    s.strip_prefix("bb")
        .and_then(|n| n.parse::<u32>().ok())
        .map(BlockId)
        .ok_or_else(|| err(line, format!("bad block label {s:?}")))
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    s.trim()
        .strip_prefix('r')
        .and_then(|n| n.parse::<u16>().ok())
        .map(Reg)
        .ok_or_else(|| err(line, format!("bad register {s:?}")))
}

fn parse_addr(s: &str, line: usize) -> Result<Reg, ParseError> {
    let inner = s
        .trim()
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [reg], got {s:?}")))?;
    parse_reg(inner, line)
}

fn parse_imm(s: &str, line: usize) -> Result<u32, ParseError> {
    let s = s.trim();
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok()
    } else {
        s.parse::<u32>().ok()
    };
    parsed.ok_or_else(|| err(line, format!("bad immediate {s:?}")))
}

fn parse_insn(line: &str, lineno: usize) -> Result<Instruction, ParseError> {
    // Optional `rN = ` prefix.
    let (dst, body) = match line.split_once('=') {
        Some((lhs, rhs)) if lhs.trim().starts_with('r') && !lhs.trim().contains(' ') => {
            (Some(parse_reg(lhs, lineno)?), rhs.trim())
        }
        _ => (None, line),
    };
    let (mnemonic, rest) = match body.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (body, ""),
    };
    let args: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let nargs = args.len();
    let wrong_args = |want: usize| {
        err(
            lineno,
            format!("{mnemonic} expects {want} operands, got {nargs}"),
        )
    };
    let need_dst = || err(lineno, format!("{mnemonic} needs a destination"));

    let two = |op: Opcode| -> Result<Instruction, ParseError> {
        if args.len() != 2 {
            return Err(wrong_args(2));
        }
        Ok(Instruction::new(
            op,
            Some(dst.ok_or_else(need_dst)?),
            vec![parse_reg(args[0], lineno)?, parse_reg(args[1], lineno)?],
        ))
    };
    let three = |op: Opcode| -> Result<Instruction, ParseError> {
        if args.len() != 3 {
            return Err(wrong_args(3));
        }
        Ok(Instruction::new(
            op,
            Some(dst.ok_or_else(need_dst)?),
            args.iter()
                .map(|a| parse_reg(a, lineno))
                .collect::<Result<_, _>>()?,
        ))
    };

    match mnemonic {
        "iadd" => two(Opcode::IAdd),
        "isub" => two(Opcode::ISub),
        "imul" => two(Opcode::IMul),
        "and" => two(Opcode::And),
        "or" => two(Opcode::Or),
        "xor" => two(Opcode::Xor),
        "shl" => two(Opcode::Shl),
        "shr" => two(Opcode::Shr),
        "fadd" => two(Opcode::FAdd),
        "fmul" => two(Opcode::FMul),
        "setlt" => two(Opcode::SetLt),
        "seteq" => two(Opcode::SetEq),
        "imad" => three(Opcode::IMad),
        "ffma" => three(Opcode::FFma),
        "sfu" | "mov" => {
            if args.len() != 1 {
                return Err(wrong_args(1));
            }
            let op = if mnemonic == "sfu" {
                Opcode::Sfu
            } else {
                Opcode::Mov
            };
            Ok(Instruction::new(
                op,
                Some(dst.ok_or_else(need_dst)?),
                vec![parse_reg(args[0], lineno)?],
            ))
        }
        "movi" => {
            if args.len() != 1 {
                return Err(wrong_args(1));
            }
            Ok(Instruction::new(
                Opcode::MovImm(parse_imm(args[0], lineno)?),
                Some(dst.ok_or_else(need_dst)?),
                vec![],
            ))
        }
        "s2r" => {
            if args.len() != 1 {
                return Err(wrong_args(1));
            }
            let special = match args[0] {
                "tid" => Special::ThreadIdx,
                "warp" => Special::WarpIdx,
                "lane" => Special::LaneIdx,
                other => return Err(err(lineno, format!("unknown special {other:?}"))),
            };
            Ok(Instruction::new(
                Opcode::ReadSpecial(special),
                Some(dst.ok_or_else(need_dst)?),
                vec![],
            ))
        }
        "ld.global" | "ld.shared" => {
            if args.len() != 1 {
                return Err(wrong_args(1));
            }
            let op = if mnemonic == "ld.global" {
                Opcode::LdGlobal
            } else {
                Opcode::LdShared
            };
            Ok(Instruction::new(
                op,
                Some(dst.ok_or_else(need_dst)?),
                vec![parse_addr(args[0], lineno)?],
            ))
        }
        "st.global" | "st.shared" => {
            if args.len() != 2 {
                return Err(wrong_args(2));
            }
            let op = if mnemonic == "st.global" {
                Opcode::StGlobal
            } else {
                Opcode::StShared
            };
            Ok(Instruction::new(
                op,
                None,
                vec![parse_reg(args[0], lineno)?, parse_addr(args[1], lineno)?],
            ))
        }
        "bra" => {
            if args.len() != 3 {
                return Err(wrong_args(3));
            }
            Ok(Instruction::new(
                Opcode::Bra {
                    taken: parse_block_id(args[1], lineno)?,
                    not_taken: parse_block_id(args[2], lineno)?,
                },
                None,
                vec![parse_reg(args[0], lineno)?],
            ))
        }
        "jmp" => {
            if args.len() != 1 {
                return Err(wrong_args(1));
            }
            Ok(Instruction::new(
                Opcode::Jmp {
                    target: parse_block_id(args[0], lineno)?,
                },
                None,
                vec![],
            ))
        }
        "exit" => {
            if !args.is_empty() {
                return Err(wrong_args(0));
            }
            Ok(Instruction::new(Opcode::Exit, None, vec![]))
        }
        "bar" => {
            if !args.is_empty() {
                return Err(wrong_args(0));
            }
            Ok(Instruction::new(Opcode::Bar, None, vec![]))
        }
        other => Err(err(lineno, format!("unknown mnemonic {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    const SAXPY: &str = "\
kernel saxpy
; comments survive parsing
bb0:
  r0 = s2r tid
  r1 = movi 0x4
  r2 = imul r0, r1
  r3 = ld.global [r2]
  r4 = movi 3
  r5 = imad r4, r3, r1
  st.global r5, [r2]
  exit
";

    #[test]
    fn parses_saxpy() {
        let k = parse_kernel(SAXPY).unwrap();
        assert_eq!(k.name(), "saxpy");
        assert_eq!(k.num_blocks(), 1);
        assert_eq!(k.num_insns(), 8);
        assert_eq!(k.num_regs(), 6);
    }

    #[test]
    fn roundtrips_control_flow() {
        let mut b = KernelBuilder::new("cf");
        let body = b.new_block();
        let done = b.new_block();
        let i = b.movi(0);
        let n = b.movi(10);
        b.jmp(body);
        b.select(body);
        let one = b.movi(1);
        b.emit_to(i, Opcode::IAdd, vec![i, one]);
        let c = b.setlt(i, n);
        b.bra(c, body, done);
        b.select(done);
        b.bar();
        b.st_shared(i, n);
        let s = b.ld_shared(i);
        b.st_global(s, i);
        b.exit();
        let k = b.finish().unwrap();
        let text = format_kernel(&k);
        let back = parse_kernel(&text).unwrap();
        assert_eq!(back, k);
    }

    #[test]
    fn error_reports_line() {
        let bad = "kernel x\nbb0:\n  r0 = frobnicate r1\n  exit\n";
        let e = parse_kernel(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_missing_terminator() {
        let bad = "kernel x\nbb0:\n  r0 = movi 1\n";
        let e = parse_kernel(bad).unwrap_err();
        assert!(e.message.contains("terminator"));
    }

    #[test]
    fn rejects_out_of_order_blocks() {
        let bad = "kernel x\nbb1:\n  exit\n";
        assert!(parse_kernel(bad).is_err());
    }

    #[test]
    fn rejects_stray_instruction() {
        let bad = "kernel x\n  exit\n";
        let e = parse_kernel(bad).unwrap_err();
        assert!(e.message.contains("before any block"));
    }

    #[test]
    fn rejects_missing_name() {
        assert!(parse_kernel("bb0:\n  exit\n").is_err());
    }

    #[test]
    fn operand_count_checked() {
        let bad = "kernel x\nbb0:\n  r0 = iadd r1\n  exit\n";
        let e = parse_kernel(bad).unwrap_err();
        assert!(e.message.contains("expects 2 operands"));
    }

    #[test]
    fn immediates_parse_dec_and_hex() {
        let k =
            parse_kernel("kernel x\nbb0:\n  r0 = movi 255\n  r1 = movi 0xff\n  exit\n").unwrap();
        let b0 = k.block(BlockId(0));
        assert_eq!(b0.insns()[0].op(), Opcode::MovImm(255));
        assert_eq!(b0.insns()[1].op(), Opcode::MovImm(255));
    }
}
