//! Opcodes and operation classes.

use crate::block::BlockId;
use std::fmt;

/// Special (hardware-provided) values readable by a kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Special {
    /// The global thread index: `warp_id * WARP_WIDTH + lane`. Produces a
    /// stride-1 lane pattern, the canonical compressible register value.
    ThreadIdx,
    /// The warp index, uniform across lanes.
    WarpIdx,
    /// The lane index within the warp, `0..32`, identical for all warps.
    LaneIdx,
}

/// An instruction opcode.
///
/// The ISA is a deliberately small register-to-register SIMT instruction set
/// capturing the behaviours the RegLess evaluation depends on: integer and
/// floating-point arithmetic with distinct latencies, long-latency global
/// memory accesses, low-latency shared-memory accesses, divergent control
/// flow, and barriers. Every block must end (and may only end) with one of
/// the three terminators [`Opcode::Bra`], [`Opcode::Jmp`], or
/// [`Opcode::Exit`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    /// `dst = src0 + src1` (wrapping).
    IAdd,
    /// `dst = src0 - src1` (wrapping).
    ISub,
    /// `dst = src0 * src1` (wrapping).
    IMul,
    /// `dst = src0 * src1 + src2` (wrapping multiply-add).
    IMad,
    /// `dst = src0 & src1`.
    And,
    /// `dst = src0 | src1`.
    Or,
    /// `dst = src0 ^ src1`.
    Xor,
    /// `dst = src0 << (src1 & 31)`.
    Shl,
    /// `dst = src0 >> (src1 & 31)`.
    Shr,
    /// Floating-point add (simulated over `u32` bit patterns).
    FAdd,
    /// Floating-point multiply.
    FMul,
    /// Floating-point fused multiply-add, `dst = src0 * src1 + src2`.
    FFma,
    /// Special-function-unit operation (reciprocal, sqrt, …): a long-latency
    /// unary transform.
    Sfu,
    /// `dst = immediate` in every lane.
    MovImm(u32),
    /// `dst = src0`.
    Mov,
    /// Read a hardware special value.
    ReadSpecial(Special),
    /// `dst = (src0 < src1) ? 1 : 0` per lane; produces branch conditions.
    SetLt,
    /// `dst = (src0 == src1) ? 1 : 0` per lane.
    SetEq,
    /// Global-memory load: `dst = mem[src0]` per lane. Long latency; the
    /// lanes' addresses are coalesced into 128-byte line requests.
    LdGlobal,
    /// Global-memory store: `mem[src1] = src0` per lane.
    StGlobal,
    /// Shared-memory load: low, fixed latency, no L1 traffic.
    LdShared,
    /// Shared-memory store.
    StShared,
    /// Conditional branch: lanes where `src0 != 0` go to `taken`, the rest
    /// to `not_taken`. Divergence is handled by the SIMT reconvergence stack.
    Bra {
        /// Successor for lanes whose condition is non-zero.
        taken: BlockId,
        /// Successor for the remaining lanes.
        not_taken: BlockId,
    },
    /// Unconditional jump.
    Jmp {
        /// The single successor block.
        target: BlockId,
    },
    /// Terminate the warp.
    Exit,
    /// Block-wide barrier: the warp waits until every warp in its thread
    /// block reaches the barrier.
    Bar,
}

/// Functional-unit class of an opcode, used for latency and energy modelling.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpClass {
    /// Single-cycle-issue integer ALU operation.
    IntAlu,
    /// Floating-point pipeline operation.
    FpAlu,
    /// Special function unit (longer latency, lower throughput).
    Sfu,
    /// Global memory access (variable latency through L1/L2/DRAM).
    MemGlobal,
    /// Shared memory access (fixed short latency).
    MemShared,
    /// Control-flow instruction.
    Control,
    /// Synchronization (barrier).
    Sync,
}

impl Opcode {
    /// The functional-unit class this opcode executes on.
    pub fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            IAdd | ISub | IMul | IMad | And | Or | Xor | Shl | Shr | MovImm(_) | Mov
            | ReadSpecial(_) | SetLt | SetEq => OpClass::IntAlu,
            FAdd | FMul | FFma => OpClass::FpAlu,
            Sfu => OpClass::Sfu,
            LdGlobal | StGlobal => OpClass::MemGlobal,
            LdShared | StShared => OpClass::MemShared,
            Bra { .. } | Jmp { .. } | Exit => OpClass::Control,
            Bar => OpClass::Sync,
        }
    }

    /// Whether this opcode ends a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(self, Opcode::Bra { .. } | Opcode::Jmp { .. } | Opcode::Exit)
    }

    /// Successor blocks if this is a terminator (taken target first).
    pub fn successors(self) -> Vec<BlockId> {
        match self {
            Opcode::Bra { taken, not_taken } => vec![taken, not_taken],
            Opcode::Jmp { target } => vec![target],
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        match self {
            MovImm(v) => write!(f, "movi {v:#x}"),
            ReadSpecial(s) => write!(f, "s2r {s:?}"),
            Bra { taken, not_taken } => write!(f, "bra {taken} {not_taken}"),
            Jmp { target } => write!(f, "jmp {target}"),
            other => write!(f, "{}", format!("{other:?}").to_lowercase()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_consistent() {
        assert_eq!(Opcode::IAdd.class(), OpClass::IntAlu);
        assert_eq!(Opcode::FFma.class(), OpClass::FpAlu);
        assert_eq!(Opcode::LdGlobal.class(), OpClass::MemGlobal);
        assert_eq!(Opcode::Bar.class(), OpClass::Sync);
        assert_eq!(Opcode::Exit.class(), OpClass::Control);
    }

    #[test]
    fn terminators_and_successors() {
        let bra = Opcode::Bra {
            taken: BlockId(1),
            not_taken: BlockId(2),
        };
        assert!(bra.is_terminator());
        assert_eq!(bra.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Opcode::Exit.is_terminator());
        assert!(Opcode::Exit.successors().is_empty());
        assert!(!Opcode::IAdd.is_terminator());
    }

    #[test]
    fn display_is_nonempty() {
        for op in [Opcode::IAdd, Opcode::MovImm(3), Opcode::Exit] {
            assert!(!op.to_string().is_empty());
        }
    }
}
