//! A minimal, dependency-free stand-in for the crates.io `proptest` crate.
//!
//! The build environment for this repository has no network access, so the
//! real `proptest` cannot be fetched; this crate implements the subset of
//! its API the workspace's tests use:
//!
//! - the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   inner attribute), supporting both `name in strategy` and `name: Type`
//!   parameter forms;
//! - the [`Strategy`] trait with [`Strategy::prop_map`];
//! - integer-range strategies (`0u32..4`), tuple strategies, [`Just`],
//!   [`prop_oneof!`], [`any`], and [`collection::vec`];
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from the real crate: generation is a deterministic function
//! of the test's module path, name, and case index (fully reproducible
//! across runs and machines), and failing cases are **not shrunk** — the
//! panic message reports the case index so a failure can be replayed by
//! running the same test again.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is meaningful here.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches the real proptest's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic xorshift64* generator seeding each test case.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded generator (zero seeds are fixed up internally).
    pub fn from_seed(seed: u64) -> Self {
        TestRng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// FNV-1a hash used to derive per-test seeds from the test's path.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// A value generator. Unlike the real proptest there is no shrinking, so a
/// strategy is just a deterministic function of the [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// A strategy choosing uniformly among `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element`-generated values with length drawn from `size`
    /// (an exact `usize` or a `usize` range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Like [`assert!`]; kept as a distinct name for proptest compatibility.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Like [`assert_eq!`]; kept as a distinct name for proptest compatibility.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Like [`assert_ne!`]; kept as a distinct name for proptest compatibility.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::Strategy<Value = _>>> = vec![$(Box::new($s)),+];
        $crate::OneOf::new(options)
    }};
}

/// Declare property tests. Each `fn` body runs once per generated case;
/// parameters are either `name in strategy` or `name: Type` (the latter
/// uses [`any`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::from_seed(
                    seed ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let case_body = |rng: &mut $crate::TestRng| {
                    $crate::__proptest_bind!{ rng = rng; $($params)* }
                    $body
                };
                case_body(&mut rng);
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    (rng = $rng:ident; ) => {};
    (rng = $rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!{ rng = $rng; $($rest)* }
    };
    (rng = $rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
    };
    (rng = $rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!{ rng = $rng; $($rest)* }
    };
    (rng = $rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(0usize..=4), &mut rng);
            assert!(w <= 4);
        }
    }

    #[test]
    fn vec_respects_size() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = Strategy::generate(&collection::vec(0u8..6, 4..40), &mut rng);
            assert!((4..40).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 6));
        }
        let exact = Strategy::generate(&collection::vec(any::<u32>(), 32), &mut rng);
        assert_eq!(exact.len(), 32);
    }

    #[test]
    fn oneof_picks_only_listed_values() {
        let s = prop_oneof![Just(0u32), Just(1), Just(4)];
        let mut rng = TestRng::from_seed(11);
        for _ in 0..100 {
            assert!(matches!(Strategy::generate(&s, &mut rng), 0 | 1 | 4));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<u64> = {
            let mut rng = TestRng::from_seed(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::from_seed(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn macro_binds_mixed_params(a: bool, n in 1u32..5, v in collection::vec(0u8..3, 1..4)) {
            let _ = a;
            prop_assert!((1..5).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        fn tuples_and_map(pair in (0u64..64, any::<bool>()).prop_map(|(n, b)| (n * 2, b))) {
            prop_assert_eq!(pair.0 % 2, 0);
        }
    }
}
