//! Baseline register-file bank model.
//!
//! The paper's baseline Verilog includes "register banks, arbitration logic
//! for register read and write back units, and operand collectors". This
//! module models the timing effect that survives at our abstraction level:
//! a banked register file serves one access per bank per cycle, and an
//! instruction whose source operands collide in a bank pays extra collector
//! cycles gathering them.

use regless_isa::Reg;

/// Number of banks in the baseline register file (GTX 980-class: 256 KB
/// across 16 banks).
pub const RF_BANKS: usize = 16;

/// The bank a (warp, register) pair maps to in the baseline register file.
/// Like the OSU, the warp id offsets the mapping so different warps' copies
/// of the same register spread across banks.
#[inline]
pub fn rf_bank(warp: usize, reg: Reg) -> usize {
    (warp + reg.index()) % RF_BANKS
}

/// Extra operand-collector cycles for one instruction's source reads: each
/// bank serves one read per cycle, so `k` sources in one bank cost `k - 1`
/// extra cycles, accumulated across banks.
pub fn collector_conflict_cycles(warp: usize, srcs: &[Reg]) -> u64 {
    let mut counts = [0u64; RF_BANKS];
    for &s in srcs {
        counts[rf_bank(warp, s)] += 1;
    }
    counts.iter().map(|&c| c.saturating_sub(1)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_banks_are_free() {
        assert_eq!(collector_conflict_cycles(0, &[Reg(0), Reg(1), Reg(2)]), 0);
    }

    #[test]
    fn same_bank_pairs_serialize() {
        // Registers 16 apart share a bank for every warp.
        assert_eq!(collector_conflict_cycles(0, &[Reg(0), Reg(16)]), 1);
        assert_eq!(collector_conflict_cycles(5, &[Reg(0), Reg(16)]), 1);
        assert_eq!(collector_conflict_cycles(0, &[Reg(0), Reg(16), Reg(32)]), 2);
    }

    #[test]
    fn warp_offset_rotates_banks() {
        let b0 = rf_bank(0, Reg(3));
        let b1 = rf_bank(1, Reg(3));
        assert_eq!((b0 + 1) % RF_BANKS, b1);
    }

    #[test]
    fn duplicate_source_counts_once_per_read_port() {
        // Reading the same register twice still needs two bank reads in
        // this model (no operand forwarding between collector slots).
        assert_eq!(collector_conflict_cycles(0, &[Reg(4), Reg(4)]), 1);
    }
}
