//! Optional execution tracing.
//!
//! A [`TraceBuffer`] can be attached to one SM's statistics
//! ([`crate::SmStats::trace`]); the pipeline and the operand backend then
//! record timestamped events — instruction issues, writebacks, barrier
//! releases, and RegLess region lifecycle transitions — up to a fixed
//! capacity. Tracing is off by default and costs nothing when disabled.

use crate::config::Cycle;
use crate::stats::PreloadSource;
use regless_isa::{InsnRef, Reg};

/// One traced event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A real instruction issued.
    Issue {
        /// Issuing warp (SM-local).
        warp: usize,
        /// Static location of the instruction.
        pc: InsnRef,
    },
    /// A destination register's value landed.
    Writeback {
        /// Owning warp.
        warp: usize,
        /// The written register.
        reg: Reg,
    },
    /// A thread block's barrier released.
    BarrierRelease {
        /// Index of the thread block (warps / warps_per_block).
        block: usize,
    },
    /// A warp exited the kernel.
    WarpFinish {
        /// The finished warp.
        warp: usize,
    },
    /// RegLess: a warp was admitted and began preloading a region.
    RegionPreload {
        /// The warp.
        warp: usize,
        /// Region index being staged.
        region: u32,
    },
    /// RegLess: a warp's region became active (all operands staged).
    RegionActivate {
        /// The warp.
        warp: usize,
        /// The active region.
        region: u32,
    },
    /// RegLess: a warp finished draining and released its allocation.
    RegionRelease {
        /// The warp.
        warp: usize,
    },
    /// RegLess: one preload was satisfied.
    Preload {
        /// The warp.
        warp: usize,
        /// The staged register.
        reg: Reg,
        /// Where the value came from.
        source: PreloadSource,
    },
}

/// A timestamped trace record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Cycle the event occurred.
    pub cycle: Cycle,
    /// The event.
    pub event: TraceEvent,
}

/// A bounded event recorder.
///
/// ```
/// use regless_sim::{TraceBuffer, TraceEvent};
/// let mut t = TraceBuffer::new(2);
/// t.record(1, TraceEvent::WarpFinish { warp: 0 });
/// t.record(2, TraceEvent::WarpFinish { warp: 1 });
/// t.record(3, TraceEvent::WarpFinish { warp: 2 }); // dropped: full
/// assert_eq!(t.records().len(), 2);
/// assert_eq!(t.dropped(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer holding up to `capacity` records; later events are counted
    /// but dropped.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            records: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Record one event.
    pub fn record(&mut self, cycle: Cycle, event: TraceEvent) {
        if self.records.len() < self.capacity {
            self.records.push(TraceRecord { cycle, event });
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded events, in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Events dropped after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the region lifecycle of one warp as a timeline.
    pub fn warp_timeline(&self, warp: usize) -> String {
        let mut out = String::new();
        for r in &self.records {
            let line = match r.event {
                TraceEvent::RegionPreload { warp: w, region } if w == warp => {
                    Some(format!("{:>8}  preload region{region}", r.cycle))
                }
                TraceEvent::RegionActivate { warp: w, region } if w == warp => {
                    Some(format!("{:>8}  activate region{region}", r.cycle))
                }
                TraceEvent::RegionRelease { warp: w } if w == warp => {
                    Some(format!("{:>8}  release", r.cycle))
                }
                TraceEvent::Issue { warp: w, pc } if w == warp => {
                    Some(format!("{:>8}    issue {pc}", r.cycle))
                }
                TraceEvent::Preload {
                    warp: w,
                    reg,
                    source,
                } if w == warp => Some(format!("{:>8}    stage {reg} from {source:?}", r.cycle)),
                TraceEvent::WarpFinish { warp: w } if w == warp => {
                    Some(format!("{:>8}  finish", r.cycle))
                }
                _ => None,
            };
            if let Some(l) = line {
                out.push_str(&l);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bounds_records() {
        let mut t = TraceBuffer::new(3);
        for c in 0..10 {
            t.record(c, TraceEvent::WarpFinish { warp: c as usize });
        }
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.dropped(), 7);
    }

    #[test]
    fn timeline_filters_by_warp() {
        let mut t = TraceBuffer::new(16);
        t.record(5, TraceEvent::RegionPreload { warp: 1, region: 0 });
        t.record(6, TraceEvent::RegionActivate { warp: 1, region: 0 });
        t.record(6, TraceEvent::RegionActivate { warp: 2, region: 0 });
        t.record(9, TraceEvent::RegionRelease { warp: 1 });
        let tl = t.warp_timeline(1);
        assert!(tl.contains("preload region0"));
        assert!(tl.contains("activate region0"));
        assert!(tl.contains("release"));
        assert_eq!(tl.lines().count(), 3, "warp 2's event excluded");
    }
}
