//! The simulator's structured-event vocabulary and its bridge onto the
//! `regless-telemetry` recording subsystem.
//!
//! The pipeline and the operand backends describe what happened with the
//! typed [`TraceEvent`] enum; [`emit`] translates each occurrence into the
//! generic track/span/instant model of [`regless_telemetry`]. Warp tracks
//! carry the region lifecycle as three back-to-back spans —
//! `preload` (admission → activation), `active` (activation → drain
//! start), and `drain` (drain start → release) — with issues, writebacks,
//! and staged preloads as instants; shared structures (OSU, compressor,
//! scheduler) get their own tracks. Recording is off unless a recorder is
//! attached (see [`crate::Machine::attach_telemetry`]) and costs nothing
//! when disabled.

use crate::config::Cycle;
use crate::stats::PreloadSource;
use regless_isa::{InsnRef, Reg};
use regless_telemetry::{Event, EvictionReason, Recorder, Structure, Track};

/// One traced event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A real instruction issued.
    Issue {
        /// Issuing warp (SM-local).
        warp: usize,
        /// Static location of the instruction.
        pc: InsnRef,
    },
    /// A destination register's value landed.
    Writeback {
        /// Owning warp.
        warp: usize,
        /// The written register.
        reg: Reg,
    },
    /// A thread block's barrier released.
    BarrierRelease {
        /// Index of the thread block (warps / warps_per_block).
        block: usize,
    },
    /// A warp exited the kernel.
    WarpFinish {
        /// The finished warp.
        warp: usize,
    },
    /// RegLess: a warp was admitted and began preloading a region.
    RegionPreload {
        /// The warp.
        warp: usize,
        /// Region index being staged.
        region: u32,
    },
    /// RegLess: a warp's region became active (all operands staged).
    RegionActivate {
        /// The warp.
        warp: usize,
        /// The active region.
        region: u32,
    },
    /// RegLess: a warp's region began draining (last instruction issued,
    /// the warp left the region, or the warp finished).
    RegionDrain {
        /// The warp.
        warp: usize,
    },
    /// RegLess: a warp finished draining and released its allocation.
    RegionRelease {
        /// The warp.
        warp: usize,
    },
    /// RegLess: one preload was satisfied.
    Preload {
        /// The warp.
        warp: usize,
        /// The staged register.
        reg: Reg,
        /// Where the value came from.
        source: PreloadSource,
    },
    /// RegLess: an OSU line left active residency — drained, reclaimed
    /// dead, dropped clean, or spilled dirty (the closed
    /// [`EvictionReason`] taxonomy).
    OsuEvict {
        /// Owning warp of the evicted line.
        warp: usize,
        /// The evicted register.
        reg: Reg,
        /// Which of the four causes evicted it.
        reason: EvictionReason,
    },
    /// RegLess: the compressor handled a displaced line.
    CompressorStore {
        /// Owning warp of the line.
        warp: usize,
        /// The register.
        reg: Reg,
        /// Whether a pattern matched (false = spilled uncompressed).
        compressed: bool,
    },
}

impl PreloadSource {
    /// Short label for telemetry args.
    pub fn label(self) -> &'static str {
        match self {
            PreloadSource::Osu => "osu",
            PreloadSource::Compressor => "compressor",
            PreloadSource::L1 => "l1",
            PreloadSource::L2OrDram => "l2-dram",
        }
    }
}

/// Translate one [`TraceEvent`] into telemetry events.
///
/// Region lifecycle transitions close the previous span and open the next
/// on the warp's track, so an exported Chrome trace shows the
/// preload/active/drain phases as contiguous slices.
pub(crate) fn emit(rec: &mut regless_telemetry::MemoryRecorder, cycle: Cycle, ev: &TraceEvent) {
    match *ev {
        TraceEvent::Issue { warp, pc } => {
            rec.record(Event::instant(cycle, Track::warp(warp), "issue").arg("pc", pc.to_string()));
        }
        TraceEvent::Writeback { warp, reg } => {
            rec.record(
                Event::instant(cycle, Track::warp(warp), "writeback").arg("reg", reg.to_string()),
            );
        }
        TraceEvent::BarrierRelease { block } => {
            rec.record(
                Event::instant(
                    cycle,
                    Track::structure(Structure::Scheduler),
                    "barrier_release",
                )
                .arg("block", block),
            );
        }
        TraceEvent::WarpFinish { warp } => {
            rec.record(Event::instant(cycle, Track::warp(warp), "finish"));
        }
        TraceEvent::RegionPreload { warp, region } => {
            rec.record(Event::begin(cycle, Track::warp(warp), "preload").arg("region", region));
        }
        TraceEvent::RegionActivate { warp, region } => {
            rec.record(Event::end(cycle, Track::warp(warp), "preload"));
            rec.record(Event::begin(cycle, Track::warp(warp), "active").arg("region", region));
        }
        TraceEvent::RegionDrain { warp } => {
            rec.record(Event::end(cycle, Track::warp(warp), "active"));
            rec.record(Event::begin(cycle, Track::warp(warp), "drain"));
        }
        TraceEvent::RegionRelease { warp } => {
            rec.record(Event::end(cycle, Track::warp(warp), "drain"));
        }
        TraceEvent::Preload { warp, reg, source } => {
            rec.record(
                Event::instant(cycle, Track::warp(warp), "stage")
                    .arg("reg", reg.to_string())
                    .arg("source", source.label()),
            );
        }
        TraceEvent::OsuEvict { warp, reg, reason } => {
            rec.record(
                Event::instant(cycle, Track::structure(Structure::Osu), "evict")
                    .arg("warp", warp)
                    .arg("reg", reg.to_string())
                    .arg("reason", reason.name()),
            );
        }
        TraceEvent::CompressorStore {
            warp,
            reg,
            compressed,
        } => {
            rec.record(
                Event::instant(cycle, Track::structure(Structure::Compressor), "store")
                    .arg("warp", warp)
                    .arg("reg", reg.to_string())
                    .arg("compressed", compressed),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_telemetry::{Lane, MemoryRecorder, Phase};

    #[test]
    fn lifecycle_maps_to_contiguous_spans() {
        let mut rec = MemoryRecorder::new(64);
        emit(
            &mut rec,
            5,
            &TraceEvent::RegionPreload { warp: 1, region: 0 },
        );
        emit(
            &mut rec,
            8,
            &TraceEvent::RegionActivate { warp: 1, region: 0 },
        );
        emit(&mut rec, 20, &TraceEvent::RegionDrain { warp: 1 });
        emit(&mut rec, 23, &TraceEvent::RegionRelease { warp: 1 });
        let events = rec.events();
        assert_eq!(events.len(), 6);
        // Begin/end counts balance on the warp track.
        let begins = events.iter().filter(|e| e.phase == Phase::Begin).count();
        let ends = events.iter().filter(|e| e.phase == Phase::End).count();
        assert_eq!(begins, 3);
        assert_eq!(ends, 3);
        assert!(events
            .iter()
            .all(|e| e.track.lane == Lane::Warp(1) && e.ts >= 5 && e.ts <= 23));
    }

    #[test]
    fn structure_events_land_on_structure_tracks() {
        let mut rec = MemoryRecorder::new(64);
        emit(
            &mut rec,
            1,
            &TraceEvent::OsuEvict {
                warp: 0,
                reg: Reg(3),
                reason: EvictionReason::CompressorSpill,
            },
        );
        emit(
            &mut rec,
            2,
            &TraceEvent::CompressorStore {
                warp: 0,
                reg: Reg(3),
                compressed: true,
            },
        );
        emit(&mut rec, 3, &TraceEvent::BarrierRelease { block: 0 });
        let lanes: Vec<Lane> = rec.events().iter().map(|e| e.track.lane).collect();
        assert_eq!(
            lanes,
            vec![
                Lane::Structure(Structure::Osu),
                Lane::Structure(Structure::Compressor),
                Lane::Structure(Structure::Scheduler),
            ]
        );
    }

    #[test]
    fn preload_sources_have_stable_labels() {
        assert_eq!(PreloadSource::Osu.label(), "osu");
        assert_eq!(PreloadSource::L2OrDram.label(), "l2-dram");
    }
}
