//! Warp scheduling policies.

use crate::config::SchedulerKind;

/// A warp scheduler instance for one scheduling group. Warp indices are
/// *local* to the group.
///
/// The interface is deliberately small: each cycle the pipeline presents
/// the set of ready warps and the policy picks one.
#[derive(Clone, Debug)]
pub enum Scheduler {
    /// Greedy-then-oldest: keep issuing the last warp while it stays ready,
    /// otherwise the oldest (lowest-index) ready warp.
    Gto {
        /// Warp issued most recently.
        last: Option<usize>,
    },
    /// Loose round-robin: pick the next ready warp after the last issued
    /// one, wrapping around.
    Lrr {
        /// Warp issued most recently.
        last: Option<usize>,
    },
    /// Two-level: only warps in the active set may issue; a warp that
    /// performs a long-latency operation is demoted and a pending warp
    /// promoted (Gebhart et al. / Narasiman et al.).
    TwoLevel {
        /// Current active set, in promotion order.
        active: Vec<usize>,
        /// Pending (inactive) warps, in demotion order.
        pending: Vec<usize>,
        /// Capacity of the active set.
        capacity: usize,
        /// Warp issued most recently.
        last: Option<usize>,
    },
}

impl Scheduler {
    /// Create a scheduler of the configured kind over `num_warps` local
    /// warps.
    pub fn new(kind: SchedulerKind, num_warps: usize) -> Self {
        match kind {
            SchedulerKind::Gto => Scheduler::Gto { last: None },
            SchedulerKind::Lrr => Scheduler::Lrr { last: None },
            SchedulerKind::TwoLevel {
                active_per_scheduler,
            } => {
                let capacity = active_per_scheduler.max(1).min(num_warps.max(1));
                Scheduler::TwoLevel {
                    active: (0..capacity.min(num_warps)).collect(),
                    pending: (capacity.min(num_warps)..num_warps).collect(),
                    capacity,
                    last: None,
                }
            }
        }
    }

    /// Pick a warp to issue from `ready` (ascending local indices).
    pub fn pick(&mut self, ready: &[usize]) -> Option<usize> {
        match self {
            Scheduler::Gto { last } => {
                let choice = match *last {
                    Some(w) if ready.contains(&w) => Some(w),
                    _ => ready.first().copied(),
                };
                *last = choice.or(*last);
                choice
            }
            Scheduler::Lrr { last } => {
                let choice = match *last {
                    Some(prev) => ready
                        .iter()
                        .copied()
                        .find(|&w| w > prev)
                        .or_else(|| ready.first().copied()),
                    None => ready.first().copied(),
                };
                *last = choice.or(*last);
                choice
            }
            Scheduler::TwoLevel {
                active,
                pending,
                last,
                ..
            } => {
                let in_active = |w: &usize| active.contains(w);
                let choice = match *last {
                    Some(w) if ready.contains(&w) && active.contains(&w) => Some(w),
                    _ => ready.iter().copied().find(|w| in_active(w)),
                };
                let choice = match choice {
                    Some(c) => Some(c),
                    None => {
                        // No active warp is ready: swap in a ready pending
                        // warp for the stalest active one. The swap itself
                        // costs the issue slot — the promoted warp starts
                        // issuing next cycle (the reactivation latency that
                        // makes two-level scheduling lose to GTO, §6.4).
                        let promote = ready.iter().copied().find(|w| pending.contains(w));
                        if let Some(promote) = promote {
                            pending.retain(|&w| w != promote);
                            if let Some(demoted) = active.first().copied() {
                                active.remove(0);
                                pending.push(demoted);
                            }
                            active.push(promote);
                        }
                        None
                    }
                };
                *last = choice.or(*last);
                choice
            }
        }
    }

    /// Notify the policy that warp `w` began a long-latency operation
    /// (global load): two-level demotes it.
    pub fn on_long_latency(&mut self, w: usize) {
        if let Scheduler::TwoLevel {
            active,
            pending,
            capacity,
            ..
        } = self
        {
            if let Some(pos) = active.iter().position(|&a| a == w) {
                active.remove(pos);
                pending.push(w);
                if active.len() < *capacity {
                    if let Some(p) = pending.first().copied() {
                        // Promote the longest-waiting pending warp.
                        pending.remove(0);
                        active.push(p);
                    }
                }
            }
        }
    }

    /// Warps currently allowed to issue (the active set); `None` for GTO
    /// (all warps).
    pub fn active_set(&self) -> Option<&[usize]> {
        match self {
            Scheduler::Gto { .. } | Scheduler::Lrr { .. } => None,
            Scheduler::TwoLevel { active, .. } => Some(active),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gto_is_greedy_then_oldest() {
        let mut s = Scheduler::new(SchedulerKind::Gto, 4);
        assert_eq!(s.pick(&[0, 1, 2]), Some(0));
        assert_eq!(s.pick(&[0, 1, 2]), Some(0), "greedy on same warp");
        assert_eq!(s.pick(&[1, 2]), Some(1), "oldest when last not ready");
        assert_eq!(s.pick(&[1, 2]), Some(1));
        assert_eq!(s.pick(&[]), None);
    }

    #[test]
    fn lrr_rotates_through_ready_warps() {
        let mut s = Scheduler::new(SchedulerKind::Lrr, 4);
        assert_eq!(s.pick(&[0, 1, 3]), Some(0));
        assert_eq!(s.pick(&[0, 1, 3]), Some(1));
        assert_eq!(s.pick(&[0, 1, 3]), Some(3));
        assert_eq!(s.pick(&[0, 1, 3]), Some(0), "wraps around");
        assert_eq!(s.pick(&[]), None);
    }

    #[test]
    fn two_level_restricts_to_active() {
        let mut s = Scheduler::new(
            SchedulerKind::TwoLevel {
                active_per_scheduler: 2,
            },
            4,
        );
        // Active = {0, 1}. Warp 2 is ready but not active; 1 is ready.
        assert_eq!(s.pick(&[1, 2]), Some(1));
        // Only pending warps ready: the swap consumes this issue slot and
        // the promoted warp issues on the next pick.
        assert_eq!(s.pick(&[2, 3]), None);
        let promoted = s.pick(&[2, 3]).unwrap();
        assert!(promoted == 2 || promoted == 3);
        assert!(s.active_set().unwrap().contains(&promoted));
    }

    #[test]
    fn two_level_demotes_on_long_latency() {
        let mut s = Scheduler::new(
            SchedulerKind::TwoLevel {
                active_per_scheduler: 2,
            },
            4,
        );
        s.on_long_latency(0);
        let active = s.active_set().unwrap();
        assert!(!active.contains(&0));
        assert!(active.contains(&2), "pending warp promoted");
    }

    #[test]
    fn two_level_caps_active_size() {
        let s = Scheduler::new(
            SchedulerKind::TwoLevel {
                active_per_scheduler: 8,
            },
            4,
        );
        assert_eq!(s.active_set().unwrap().len(), 4);
    }
}
