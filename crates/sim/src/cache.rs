//! Set-associative cache tag model with LRU replacement.

use crate::config::CacheConfig;

/// One cache line's bookkeeping.
#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_used: u64,
}

impl Line {
    fn empty() -> Self {
        Line {
            tag: 0,
            valid: false,
            dirty: false,
            last_used: 0,
        }
    }
}

/// Result of a cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether a dirty line was evicted to make room (write-back traffic).
    pub evicted_dirty: bool,
    /// Address of the displaced dirty line, when one was written back.
    pub evicted_addr: Option<u64>,
}

/// A set-associative write-back cache tag array.
///
/// Only presence is modelled — data contents live with the caller. The
/// RegLess L1 uses write-back, *no fetch on write* for register lines
/// (paper §5.2.3): [`Cache::write_allocate_no_fetch`] installs a dirty line
/// without a fill.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    line_bytes: usize,
    tick: u64,
}

impl Cache {
    /// Build an empty cache with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets.
    pub fn new(config: &CacheConfig) -> Self {
        let num_sets = config.num_sets();
        assert!(num_sets > 0, "cache too small for associativity");
        Cache {
            sets: vec![vec![Line::empty(); config.assoc]; num_sets],
            line_bytes: config.line_bytes,
            tick: 0,
        }
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes as u64;
        (
            (line as usize) % self.sets.len(),
            line / self.sets.len() as u64,
        )
    }

    /// Probe without modifying state.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Access `addr`; on a miss, fill the line (evicting LRU). `write`
    /// marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessResult {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_used = tick;
            line.dirty |= write;
            return AccessResult {
                hit: true,
                evicted_dirty: false,
                evicted_addr: None,
            };
        }
        let num_sets = self.sets.len() as u64;
        let lines = &mut self.sets[set];
        let victim = lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_used } else { 0 })
            .expect("associativity > 0");
        let evicted_dirty = victim.valid && victim.dirty;
        let evicted_addr =
            evicted_dirty.then(|| (victim.tag * num_sets + set as u64) * self.line_bytes as u64);
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            last_used: tick,
        };
        AccessResult {
            hit: false,
            evicted_dirty,
            evicted_addr,
        }
    }

    /// Install `addr` as a dirty line without fetching the old contents
    /// (RegLess register stores overwrite whole lines, paper §5.2.3).
    /// Returns whether a dirty victim was displaced.
    pub fn write_allocate_no_fetch(&mut self, addr: u64) -> bool {
        self.access(addr, true).evicted_dirty
    }

    /// Invalidate `addr` if present; returns whether a line was dropped.
    /// The dropped line's dirty state is discarded (register invalidations
    /// delete dead values, so no write-back is needed).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.valid = false;
                line.dirty = false;
                return true;
            }
        }
        false
    }

    /// Number of valid lines (for occupancy checks in tests).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 128B = 1 KB
        Cache::new(&CacheConfig {
            bytes: 1024,
            assoc: 2,
            line_bytes: 128,
            hit_latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(64, false).hit, "same line");
        assert!(!c.access(128, false).hit, "next line");
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets * line = 512).
        c.access(0, false);
        c.access(512, false);
        c.access(0, false); // refresh 0
        let r = c.access(1024, false); // evicts 512 (LRU)
        assert!(!r.hit);
        assert!(c.probe(0));
        assert!(!c.probe(512));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.access(0, true);
        c.access(512, false);
        let r = c.access(1024, false); // evicts dirty 0
        assert!(r.evicted_dirty);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.access(0, true);
        assert!(c.invalidate(0));
        assert!(!c.probe(0));
        assert!(!c.invalidate(0));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn write_allocate_no_fetch_installs_dirty() {
        let mut c = tiny();
        c.write_allocate_no_fetch(256);
        assert!(c.probe(256));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::CacheConfig;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// A reference model: per-set LRU lists.
    #[derive(Default)]
    struct RefCache {
        sets: HashMap<usize, Vec<u64>>, // most-recent last
    }

    impl RefCache {
        fn access(&mut self, sets: usize, assoc: usize, line: u64) -> bool {
            let set = self.sets.entry((line as usize) % sets).or_default();
            let hit = if let Some(pos) = set.iter().position(|&l| l == line) {
                set.remove(pos);
                true
            } else {
                false
            };
            set.push(line);
            if set.len() > assoc {
                set.remove(0);
            }
            hit
        }
    }

    proptest! {
        /// Hit/miss behaviour matches an LRU reference model exactly.
        #[test]
        fn matches_lru_reference(addrs in proptest::collection::vec(0u64..32, 1..200)) {
            let config = CacheConfig { bytes: 1024, assoc: 2, line_bytes: 128, hit_latency: 1 };
            let mut cache = Cache::new(&config);
            let mut reference = RefCache::default();
            for &line in &addrs {
                let got = cache.access(line * 128, false).hit;
                let want = reference.access(config.num_sets(), config.assoc, line);
                prop_assert_eq!(got, want, "line {}", line);
            }
        }

        /// Occupancy never exceeds capacity, and invalidation removes
        /// exactly the named line.
        #[test]
        fn occupancy_bounded(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..200)) {
            let config = CacheConfig { bytes: 2048, assoc: 4, line_bytes: 128, hit_latency: 1 };
            let capacity = config.bytes / config.line_bytes;
            let mut cache = Cache::new(&config);
            for &(line, inval) in &ops {
                if inval {
                    cache.invalidate(line * 128);
                    prop_assert!(!cache.probe(line * 128));
                } else {
                    cache.access(line * 128, true);
                    prop_assert!(cache.probe(line * 128));
                }
                prop_assert!(cache.occupancy() <= capacity);
            }
        }
    }
}
