//! Per-warp architectural and control state, including the SIMT
//! reconvergence stack.

use crate::config::Cycle;
use regless_isa::{BlockId, InsnRef, Kernel, LaneMask, LaneVec, Opcode, Reg};

/// One entry of the SIMT reconvergence stack.
#[derive(Clone, Copy, Debug)]
pub struct StackEntry {
    /// Next instruction for this entry's lanes.
    pub pc: InsnRef,
    /// Lanes executing under this entry.
    pub mask: LaneMask,
    /// Block at which this entry pops and merges into the one below
    /// (the immediate postdominator of the diverging branch).
    pub reconv: Option<BlockId>,
}

/// Why a warp cannot issue right now.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WarpBlock {
    /// Ready to issue.
    Ready,
    /// Finished the kernel.
    Finished,
    /// Waiting at a barrier.
    Barrier,
    /// An operand (or the destination) has a pending write.
    Scoreboard,
}

/// The scoreboard: the set of registers with writes in flight, kept as a
/// flat bitmap sized to the kernel's register count. The per-issue checks
/// (`contains` on every source and the destination) are the hottest reads
/// in the SM loop, so the set lives in one or two words instead of a
/// `HashSet`'s heap nodes. Set semantics are preserved exactly: inserting
/// an already-pending register is a no-op, matching the scoreboard's
/// merge-on-double-write behaviour.
#[derive(Clone, Debug, Default)]
pub struct PendingSet {
    bits: Vec<u64>,
}

impl PendingSet {
    /// An empty scoreboard covering `num_regs` registers.
    pub fn with_regs(num_regs: usize) -> Self {
        PendingSet {
            bits: vec![0; num_regs.div_ceil(64)],
        }
    }

    /// Mark `reg` pending; returns whether it was newly inserted.
    pub fn insert(&mut self, reg: Reg) -> bool {
        let (word, bit) = (reg.index() / 64, reg.index() % 64);
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let was = self.bits[word] & (1 << bit) != 0;
        self.bits[word] |= 1 << bit;
        !was
    }

    /// Clear `reg`; returns whether it was present.
    pub fn remove(&mut self, reg: &Reg) -> bool {
        let (word, bit) = (reg.index() / 64, reg.index() % 64);
        match self.bits.get_mut(word) {
            Some(w) => {
                let was = *w & (1 << bit) != 0;
                *w &= !(1 << bit);
                was
            }
            None => false,
        }
    }

    /// Whether `reg` has a write in flight.
    pub fn contains(&self, reg: &Reg) -> bool {
        let (word, bit) = (reg.index() / 64, reg.index() % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Whether no writes are in flight.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Drop every pending mark.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }
}

/// Architectural + control state of one warp.
#[derive(Clone, Debug)]
pub struct WarpState {
    /// SIMT stack; the top entry is the executing one.
    pub stack: Vec<StackEntry>,
    /// Current register values (functional state).
    pub regs: Vec<LaneVec>,
    /// Registers with writes in flight.
    pub pending: PendingSet,
    /// Waiting at a barrier.
    pub at_barrier: bool,
    /// Dynamic instructions issued by this warp.
    pub insns_issued: u64,
    /// Cycle the warp finished, if it has.
    pub finished_at: Option<Cycle>,
}

impl WarpState {
    /// A warp at the kernel entry with every lane active.
    pub fn new(kernel: &Kernel) -> Self {
        WarpState {
            stack: vec![StackEntry {
                pc: InsnRef {
                    block: kernel.entry(),
                    idx: 0,
                },
                mask: LaneMask::all(),
                reconv: None,
            }],
            regs: vec![LaneVec::zero(); kernel.num_regs() as usize],
            pending: PendingSet::with_regs(kernel.num_regs() as usize),
            at_barrier: false,
            insns_issued: 0,
            finished_at: None,
        }
    }

    /// Whether the warp has exited.
    pub fn finished(&self) -> bool {
        self.stack.is_empty()
    }

    /// The next instruction to issue, if any.
    pub fn pc(&self) -> Option<InsnRef> {
        self.stack.last().map(|e| e.pc)
    }

    /// The active lane mask.
    pub fn mask(&self) -> LaneMask {
        self.stack.last().map_or(LaneMask::none(), |e| e.mask)
    }

    /// Issue readiness, checking the scoreboard against the instruction at
    /// the current PC.
    pub fn block_reason(&self, kernel: &Kernel) -> WarpBlock {
        if self.finished() {
            return WarpBlock::Finished;
        }
        if self.at_barrier {
            return WarpBlock::Barrier;
        }
        let insn = kernel.insn(self.pc().expect("not finished"));
        let hazard = insn.srcs().iter().any(|s| self.pending.contains(s))
            || insn.dst().is_some_and(|d| self.pending.contains(&d));
        if hazard {
            WarpBlock::Scoreboard
        } else {
            WarpBlock::Ready
        }
    }

    /// Advance control state past the instruction at the top-of-stack PC.
    ///
    /// `taken_bits` is the branch condition bitmap (ignored for non-
    /// branches); `ipdom` supplies reconvergence blocks for divergent
    /// branches. Returns the lanes that executed.
    ///
    /// # Panics
    ///
    /// Panics if the warp already finished.
    pub fn advance(
        &mut self,
        kernel: &Kernel,
        taken_bits: u32,
        ipdom: impl Fn(BlockId) -> Option<BlockId>,
    ) -> LaneMask {
        let top = *self.stack.last().expect("warp not finished");
        let insn = kernel.insn(top.pc);
        let executed = top.mask;
        match insn.op() {
            Opcode::Jmp { target } => {
                self.jump_to(target);
            }
            Opcode::Exit => {
                self.stack.pop();
            }
            Opcode::Bra { taken, not_taken } => {
                let (t, nt) = top.mask.split(taken_bits);
                if nt.is_empty() {
                    self.jump_to(taken);
                } else if t.is_empty() {
                    self.jump_to(not_taken);
                } else {
                    let reconv = ipdom(top.pc.block);
                    let e = self.stack.last_mut().expect("top exists");
                    match reconv {
                        Some(r) => {
                            // The current entry waits at the reconvergence
                            // point with the full mask; the two sides run
                            // above it.
                            e.pc = InsnRef { block: r, idx: 0 };
                            self.stack.push(StackEntry {
                                pc: InsnRef {
                                    block: not_taken,
                                    idx: 0,
                                },
                                mask: nt,
                                reconv: Some(r),
                            });
                            self.stack.push(StackEntry {
                                pc: InsnRef {
                                    block: taken,
                                    idx: 0,
                                },
                                mask: t,
                                reconv: Some(r),
                            });
                        }
                        None => {
                            // No common reconvergence (a side exits): the
                            // sides run to completion independently.
                            self.stack.pop();
                            self.stack.push(StackEntry {
                                pc: InsnRef {
                                    block: not_taken,
                                    idx: 0,
                                },
                                mask: nt,
                                reconv: top.reconv,
                            });
                            self.stack.push(StackEntry {
                                pc: InsnRef {
                                    block: taken,
                                    idx: 0,
                                },
                                mask: t,
                                reconv: top.reconv,
                            });
                        }
                    }
                }
            }
            _ => {
                let e = self.stack.last_mut().expect("top exists");
                e.pc.idx += 1;
            }
        }
        self.merge_at_reconvergence();
        executed
    }

    fn jump_to(&mut self, target: BlockId) {
        let e = self.stack.last_mut().expect("top exists");
        e.pc = InsnRef {
            block: target,
            idx: 0,
        };
    }

    /// Pop entries that have arrived at their reconvergence block.
    fn merge_at_reconvergence(&mut self) {
        while let Some(top) = self.stack.last() {
            match top.reconv {
                Some(r) if top.pc.block == r && top.pc.idx == 0 => {
                    self.stack.pop();
                }
                _ => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Cycle;
    use regless_compiler::DomInfo;
    use regless_isa::{Kernel, KernelBuilder, Reg};

    fn run_to_completion(kernel: &Kernel) -> (u64, Vec<(InsnRef, LaneMask)>) {
        let dom = DomInfo::compute(kernel);
        let mut w = WarpState::new(kernel);
        let mut trace = Vec::new();
        let mut steps = 0u64;
        while !w.finished() {
            let pc = w.pc().unwrap();
            let insn = kernel.insn(pc);
            // Evaluate branch conditions functionally.
            let taken_bits = if let Opcode::Bra { .. } = insn.op() {
                w.regs[insn.srcs()[0].index()].nonzero_bits()
            } else {
                0
            };
            if let Some(v) = insn.evaluate(
                &insn
                    .srcs()
                    .iter()
                    .map(|s| w.regs[s.index()])
                    .collect::<Vec<_>>(),
                0,
            ) {
                let d = insn.dst().unwrap();
                w.regs[d.index()] = v;
            }
            let mask = w.advance(kernel, taken_bits, |b| dom.immediate_postdominator(b));
            trace.push((pc, mask));
            steps += 1;
            assert!(steps < 10_000, "runaway warp");
        }
        (steps, trace)
    }

    #[test]
    fn straight_line_executes_all() {
        let mut b = KernelBuilder::new("s");
        let x = b.movi(1);
        let _ = b.iadd(x, x);
        b.exit();
        let k = b.finish().unwrap();
        let (steps, trace) = run_to_completion(&k);
        assert_eq!(steps, 3);
        assert!(trace.iter().all(|&(_, m)| m.is_full()));
    }

    #[test]
    fn uniform_branch_takes_one_side() {
        let mut b = KernelBuilder::new("u");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.movi(1); // uniformly true
        b.bra(c, t, e);
        b.select(t);
        b.jmp(j);
        b.select(e);
        b.jmp(j);
        b.select(j);
        b.exit();
        let k = b.finish().unwrap();
        let (_, trace) = run_to_completion(&k);
        assert!(trace.iter().any(|&(pc, _)| pc.block == t));
        assert!(!trace.iter().any(|&(pc, _)| pc.block == e));
    }

    #[test]
    fn divergent_branch_executes_both_sides_and_reconverges() {
        let mut b = KernelBuilder::new("d");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let lane = b.lane_idx();
        let eight = b.movi(8);
        let c = b.setlt(lane, eight); // lanes 0..8 take the branch
        b.bra(c, t, e);
        b.select(t);
        b.jmp(j);
        b.select(e);
        b.jmp(j);
        b.select(j);
        let _ = b.iadd(lane, lane);
        b.exit();
        let k = b.finish().unwrap();
        let (_, trace) = run_to_completion(&k);
        let t_mask = trace.iter().find(|&&(pc, _)| pc.block == t).unwrap().1;
        let e_mask = trace.iter().find(|&&(pc, _)| pc.block == e).unwrap().1;
        assert_eq!(t_mask.count(), 8);
        assert_eq!(e_mask.count(), 24);
        assert!(t_mask.intersect(e_mask).is_empty());
        // At the join, the full mask is restored.
        let j_mask = trace.iter().find(|&&(pc, _)| pc.block == j).unwrap().1;
        assert!(j_mask.is_full());
    }

    #[test]
    fn divergent_loop_trip_counts() {
        // Lanes loop `lane_idx % 4 + 1` times.
        let mut b = KernelBuilder::new("dl");
        let body = b.new_block();
        let done = b.new_block();
        let lane = b.lane_idx();
        let three = b.movi(3);
        let trip = b.and(lane, three);
        let i = b.movi(0);
        b.jmp(body);
        b.select(body);
        let one = b.movi(1);
        b.emit_to(i, Opcode::IAdd, vec![i, one]);
        let c = b.setlt(i, trip);
        b.bra(c, body, done);
        b.select(done);
        b.exit();
        let k = b.finish().unwrap();
        let (_, trace) = run_to_completion(&k);
        // The loop body executes 4 times (the max trip count + 1 iterations
        // pattern: i=0..trip means trip iterations; max trip = 3).
        let body_execs: Vec<LaneMask> = trace
            .iter()
            .filter(|&&(pc, _)| pc.block == body && pc.idx == 0)
            .map(|&(_, m)| m)
            .collect();
        assert_eq!(body_execs.len(), 3);
        // First iteration: all lanes. Later iterations: progressively fewer.
        assert!(body_execs[0].is_full());
        assert!(body_execs[1].count() < 32);
        assert!(body_execs[1].count() > body_execs[2].count());
        let _c: Cycle = 0;
    }

    #[test]
    fn scoreboard_blocks_dependent_issue() {
        let mut b = KernelBuilder::new("sb");
        let x = b.movi(1);
        let _ = b.iadd(x, x);
        b.exit();
        let k = b.finish().unwrap();
        let mut w = WarpState::new(&k);
        // Issue the movi and leave its write pending.
        w.advance(&k, 0, |_| None);
        w.pending.insert(Reg(0));
        assert_eq!(w.block_reason(&k), WarpBlock::Scoreboard);
        w.pending.clear();
        assert_eq!(w.block_reason(&k), WarpBlock::Ready);
    }

    #[test]
    fn barrier_blocks() {
        let mut b = KernelBuilder::new("bar");
        b.bar();
        b.exit();
        let k = b.finish().unwrap();
        let mut w = WarpState::new(&k);
        w.at_barrier = true;
        assert_eq!(w.block_reason(&k), WarpBlock::Barrier);
    }
}
