//! Operand-storage backends.
//!
//! The pipeline in [`crate::sm`] is generic over *where operands live*: the
//! baseline's big register file, RegLess's operand staging unit, or the
//! RFH/RFV comparison designs. A backend observes issues and writebacks,
//! gates which warps are eligible (RegLess's capacity manager), injects
//! metadata bubbles, and adds operand-access latency (bank conflicts).

use crate::config::Cycle;
use crate::mem::MemSystem;
use crate::stats::SmStats;
use crate::warp::WarpState;
use regless_isa::{InsnRef, Instruction, LaneVec, Reg};
use regless_telemetry::StallReason;

/// Mutable context handed to backend hooks.
pub struct BackendCtx<'a> {
    /// This SM's index.
    pub sm: usize,
    /// Current cycle.
    pub now: Cycle,
    /// The shared memory hierarchy.
    pub mem: &'a mut MemSystem,
    /// This SM's counters.
    pub stats: &'a mut SmStats,
}

/// Storage/scheduling behaviour plugged into the SM pipeline.
pub trait OperandBackend {
    /// Called once per cycle before issue; the RegLess capacity manager
    /// runs its activation and preload pipelines here.
    fn begin_cycle(&mut self, ctx: &mut BackendCtx<'_>) {
        let _ = ctx;
    }

    /// Variant of [`OperandBackend::begin_cycle`] that also sees the warp
    /// array (region transitions depend on warp PCs). The default simply
    /// forwards to `begin_cycle`.
    fn begin_cycle_with_warps(&mut self, warps: &[WarpState], ctx: &mut BackendCtx<'_>) {
        let _ = warps;
        self.begin_cycle(ctx);
    }

    /// Whether warp `w` (SM-local index) may issue its next instruction at
    /// `pc`. The baseline always says yes; RegLess requires the
    /// instruction's region to be active for the warp.
    fn warp_eligible(&mut self, w: usize, pc: InsnRef) -> bool {
        let _ = (w, pc);
        true
    }

    /// Why warp `w` is ineligible to issue at `pc` right now, for the
    /// per-cycle issue-slot attribution (CPI stacks). Only consulted for
    /// warps whose [`OperandBackend::warp_eligible`] returned `false` this
    /// cycle; `None` means the backend has no stake in the warp (finished,
    /// or the backend never gates it). RegLess reports
    /// [`StallReason::CmPreloadWait`], [`StallReason::OsuCapacityWait`],
    /// or [`StallReason::Drain`]; occupancy-limited baselines report
    /// capacity waits.
    fn issue_stall(&self, w: usize, pc: InsnRef) -> Option<StallReason> {
        let _ = (w, pc);
        None
    }

    /// If the warp owes metadata bubbles (region-flag instructions), consume
    /// one issue slot and return `true`.
    fn take_bubble(&mut self, w: usize, ctx: &mut BackendCtx<'_>) -> bool {
        let _ = (w, ctx);
        false
    }

    /// A real instruction issued from warp `w`. Returns extra operand-access
    /// latency (e.g. OSU bank conflicts) added to the instruction's
    /// writeback delay.
    fn on_issue(
        &mut self,
        w: usize,
        at: InsnRef,
        insn: &Instruction,
        ctx: &mut BackendCtx<'_>,
    ) -> Cycle;

    /// A destination register's value is written back.
    fn on_writeback(
        &mut self,
        w: usize,
        at: InsnRef,
        reg: Reg,
        value: LaneVec,
        ctx: &mut BackendCtx<'_>,
    );

    /// Warp `w` exited the kernel.
    fn on_warp_finish(&mut self, w: usize, ctx: &mut BackendCtx<'_>) {
        let _ = (w, ctx);
    }

    /// Cross-check the backend's staged operand values against the
    /// architectural register state just before an issue. The pipeline
    /// calls this for every instruction; backends that hold value copies
    /// (RegLess's OSU) compare and count mismatches — a staging-path value
    /// bug is unacceptable, not just a performance artifact.
    fn check_staged_operands(&self, w: usize, operands: &[(Reg, LaneVec)], stats: &mut SmStats) {
        let _ = (w, operands, stats);
    }

    /// Whether all backend work has drained (used to let simulations end
    /// only after in-flight evictions finish).
    fn quiesced(&self) -> bool {
        true
    }

    /// Earliest future cycle at which this backend's `begin_cycle` could do
    /// observable work (change state, mutate statistics, or unblock a
    /// warp), given that no warp issues and no writeback retires before
    /// then. `None` means "never — nothing is pending on my side"; the
    /// event-driven fast path then only has to respect the writeback event
    /// heap. The conservative default, `Some(now + 1)`, keeps unknown
    /// backends on the cycle-by-cycle path (a skip is never taken past a
    /// backend that cannot vouch for its own quiescence).
    fn next_wakeup(&self, now: Cycle) -> Option<Cycle> {
        Some(now + 1)
    }

    /// The fast path jumped from cycle `from` to cycle `to` (exclusive:
    /// cycles `from..to` were skipped; `to` itself gets a real tick).
    /// Backends that mutate statistics unconditionally in `begin_cycle`
    /// (RFV's throttled-warp-cycle counter) bulk-apply the same mutation
    /// here so the fast path stays byte-identical to the stepped loop. The
    /// default is a no-op, correct for backends whose `begin_cycle` is
    /// stats-silent when idle.
    fn on_skip(&mut self, from: Cycle, to: Cycle, stats: &mut SmStats) {
        let _ = (from, to, stats);
    }

    /// Called exactly once after the run completes, before statistics are
    /// collected: the backend's last chance to fold internal state into
    /// [`SmStats`]. RegLess publishes the OSU's mechanical eviction count
    /// here — the final cycle can evict lines after the last
    /// `begin_cycle`, so a per-cycle sync would undercount.
    fn finish(&mut self, stats: &mut SmStats) {
        let _ = stats;
    }
}

/// The baseline: a full-size register file. Every operand read/write is an
/// RF bank access; the RF is also the Figure 3 "backing store".
#[derive(Clone, Debug, Default)]
pub struct BaselineRf;

impl BaselineRf {
    /// Create the baseline backend.
    pub fn new() -> Self {
        BaselineRf
    }
}

impl OperandBackend for BaselineRf {
    fn on_issue(
        &mut self,
        w: usize,
        _at: InsnRef,
        insn: &Instruction,
        ctx: &mut BackendCtx<'_>,
    ) -> Cycle {
        let reads = insn.srcs().len() as u64;
        ctx.stats.rf_reads += reads;
        ctx.stats.backing_series.record(ctx.now, reads);
        // Operand collectors gather same-bank sources over extra cycles.
        let conflicts = crate::rf::collector_conflict_cycles(w, insn.srcs());
        ctx.stats.rf_bank_conflicts += conflicts;
        conflicts
    }

    fn on_writeback(
        &mut self,
        _w: usize,
        _at: InsnRef,
        _reg: Reg,
        _value: LaneVec,
        ctx: &mut BackendCtx<'_>,
    ) {
        ctx.stats.rf_writes += 1;
        ctx.stats.backing_series.record(ctx.now, 1);
    }

    fn next_wakeup(&self, _now: Cycle) -> Option<Cycle> {
        // Stateless: warps unblock only via writebacks (the event heap) or
        // barriers (which the SM tracks), never via this backend.
        None
    }
}

/// The baseline register file with **static occupancy limiting**: a warp
/// may only run if the register file has capacity for its full
/// architectural register allocation, the way real GPUs cap occupancy by
/// register count. The plain [`BaselineRf`] ignores this (all evaluated
/// kernels fit); this variant exists for the oversubscription extension
/// study (paper §7: RegLess "would be able to oversubscribe the register
/// file without any design changes", because it only stores live values).
#[derive(Clone, Debug)]
pub struct OccupancyLimitedRf {
    admitted: std::collections::HashSet<usize>,
    finished: std::collections::HashSet<usize>,
    max_resident: usize,
    warps_per_sm: usize,
    inner: BaselineRf,
}

impl OccupancyLimitedRf {
    /// Build for a kernel needing `regs_per_warp` registers on a machine
    /// with `rf_entries` register-file entries per SM.
    pub fn new(rf_entries: usize, regs_per_warp: usize, warps_per_sm: usize) -> Self {
        OccupancyLimitedRf {
            admitted: std::collections::HashSet::new(),
            finished: std::collections::HashSet::new(),
            max_resident: (rf_entries / regs_per_warp.max(1)).max(1),
            warps_per_sm,
            inner: BaselineRf::new(),
        }
    }

    /// Warps that can be resident concurrently.
    pub fn max_resident(&self) -> usize {
        self.max_resident
    }
}

impl OperandBackend for OccupancyLimitedRf {
    fn begin_cycle(&mut self, _ctx: &mut BackendCtx<'_>) {
        if self.admitted.len() < self.max_resident {
            for w in 0..self.warps_per_sm {
                if self.admitted.len() >= self.max_resident {
                    break;
                }
                if !self.finished.contains(&w) {
                    self.admitted.insert(w);
                }
            }
        }
    }

    fn warp_eligible(&mut self, w: usize, _pc: InsnRef) -> bool {
        self.admitted.contains(&w)
    }

    fn issue_stall(&self, w: usize, _pc: InsnRef) -> Option<StallReason> {
        if self.finished.contains(&w) {
            None
        } else {
            // Not admitted: waiting for register-file capacity.
            Some(StallReason::OsuCapacityWait)
        }
    }

    fn on_issue(
        &mut self,
        w: usize,
        at: InsnRef,
        insn: &Instruction,
        ctx: &mut BackendCtx<'_>,
    ) -> Cycle {
        self.inner.on_issue(w, at, insn, ctx)
    }

    fn on_writeback(
        &mut self,
        w: usize,
        at: InsnRef,
        reg: Reg,
        value: LaneVec,
        ctx: &mut BackendCtx<'_>,
    ) {
        self.inner.on_writeback(w, at, reg, value, ctx);
    }

    fn on_warp_finish(&mut self, w: usize, _ctx: &mut BackendCtx<'_>) {
        self.admitted.remove(&w);
        self.finished.insert(w);
    }

    fn next_wakeup(&self, _now: Cycle) -> Option<Cycle> {
        // Admission is idempotent and only changes when a warp finishes
        // (an issue-path event), so an idle span never needs a tick here.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use regless_isa::Opcode;

    #[test]
    fn occupancy_limit_admits_bounded_warps() {
        let mut mem = MemSystem::new(&GpuConfig::test_small());
        let mut stats = SmStats::default();
        // 64 entries, 16 regs/warp -> at most 4 resident warps of 8.
        let mut b = OccupancyLimitedRf::new(64, 16, 8);
        assert_eq!(b.max_resident(), 4);
        let at = InsnRef {
            block: regless_isa::BlockId(0),
            idx: 0,
        };
        {
            let mut ctx = BackendCtx {
                sm: 0,
                now: 0,
                mem: &mut mem,
                stats: &mut stats,
            };
            b.begin_cycle(&mut ctx);
        }
        let eligible = (0..8).filter(|&w| b.warp_eligible(w, at)).count();
        assert_eq!(eligible, 4);
        // Finishing a warp admits the next one.
        {
            let mut ctx = BackendCtx {
                sm: 0,
                now: 1,
                mem: &mut mem,
                stats: &mut stats,
            };
            b.on_warp_finish(0, &mut ctx);
            b.begin_cycle(&mut ctx);
        }
        let eligible = (0..8).filter(|&w| b.warp_eligible(w, at)).count();
        assert_eq!(eligible, 4);
        assert!(!b.warp_eligible(0, at), "finished warp not re-admitted");
    }

    #[test]
    fn baseline_counts_rf_accesses() {
        let mut mem = MemSystem::new(&GpuConfig::test_small());
        let mut stats = SmStats::default();
        let mut b = BaselineRf::new();
        let insn = Instruction::new(Opcode::IAdd, Some(Reg(2)), vec![Reg(0), Reg(1)]);
        let at = InsnRef {
            block: regless_isa::BlockId(0),
            idx: 0,
        };
        {
            let mut ctx = BackendCtx {
                sm: 0,
                now: 0,
                mem: &mut mem,
                stats: &mut stats,
            };
            assert!(b.warp_eligible(0, at));
            assert!(!b.take_bubble(0, &mut ctx));
            let extra = b.on_issue(0, at, &insn, &mut ctx);
            assert_eq!(extra, 0);
            b.on_writeback(0, at, Reg(2), LaneVec::zero(), &mut ctx);
        }
        assert_eq!(stats.rf_reads, 2);
        assert_eq!(stats.rf_writes, 1);
        assert!(b.quiesced());
    }
}
