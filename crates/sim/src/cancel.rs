//! Cooperative cancellation for in-flight simulations.
//!
//! A [`CancelToken`] is shared between a simulation (which polls it from
//! the tick loop) and a controller (which cancels it, typically because a
//! client deadline expired or a server is shutting down). Cancellation is
//! *cooperative*: the simulation returns [`crate::SimError::Cancelled`]
//! at the next cycle boundary instead of being torn down mid-update, so
//! the owning thread survives and can immediately run the next job — the
//! serving layer's analogue of the capacity manager admitting a warp only
//! while its resources are coherent.
//!
//! The token carries two triggers:
//!
//! - an explicit flag ([`CancelToken::cancel`]), checked every cycle with
//!   a relaxed atomic load, and
//! - an optional wall-clock deadline, polled only every
//!   [`DEADLINE_CHECK_CYCLES`] cycles so the hot loop does not pay a
//!   clock syscall per simulated cycle (a cycle-budget check).

use crate::config::Cycle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many simulated cycles pass between wall-clock deadline polls.
/// At typical simulation speeds (millions of cycles per second) this
/// bounds the cancellation latency to well under a millisecond.
pub const DEADLINE_CHECK_CYCLES: Cycle = 1024;

/// A shared cancellation handle (cheaply cloneable).
#[derive(Clone, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; it only cancels via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }

    /// A token that additionally trips once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + timeout),
        }
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested (explicitly, or by an
    /// earlier deadline poll that tripped).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Poll from the simulation loop: returns `true` once the run should
    /// stop. The explicit flag is checked every call; the wall-clock
    /// deadline only every [`DEADLINE_CHECK_CYCLES`] cycles (and the
    /// result latches into the flag so clones observe it too).
    pub fn should_stop(&self, cycle: Cycle) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if cycle.is_multiple_of(DEADLINE_CHECK_CYCLES) && Instant::now() >= deadline {
                self.cancel();
                return true;
            }
        }
        false
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.should_stop(0));
        assert!(!u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        assert!(t.should_stop(1), "flag is honored on every cycle");
    }

    #[test]
    fn deadline_trips_only_on_check_cycles_and_latches() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        // Cycle 1 is not a check boundary: the clock is not consulted.
        assert!(!t.should_stop(1));
        // Cycle 0 mod DEADLINE_CHECK_CYCLES polls the clock and latches.
        assert!(t.should_stop(DEADLINE_CHECK_CYCLES));
        assert!(t.is_cancelled());
        assert!(t.should_stop(DEADLINE_CHECK_CYCLES + 1));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.should_stop(0));
        assert!(!t.is_cancelled());
    }
}
