//! The streaming-multiprocessor pipeline and whole-GPU driver.
//!
//! Each SM steps one cycle at a time: retire due writebacks, let the
//! operand backend run (RegLess's capacity manager lives there), release
//! barriers, then let each warp scheduler issue at most one instruction.
//! Functional execution happens at issue; timing is carried by scoreboard
//! entries that clear at the instruction's writeback time, which for
//! global accesses comes from the shared memory hierarchy.
//!
//! **Event-driven fast path.** Most cycles issue nothing: every warp is
//! blocked on a scoreboard entry, a barrier, or the staging pipeline. When
//! a tick proves that state (nothing issued, no warp was even ready, no
//! barrier is about to release), [`Machine::run`] jumps `now` straight to
//! the earliest cycle anything is due — the writeback event heap or the
//! backend's [`OperandBackend::next_wakeup`] — and bulk-charges the skipped
//! issue slots to the same [`StallReason`]s the stepped loop would have
//! picked, preserving the conservation law `Σ reasons == cycles × issue
//! slots` exactly. Jumps are clamped to the next stats-window and
//! cancellation-poll boundaries so window samplers and deadline latency
//! behave identically. `REGLESS_SIM=stepped` (or
//! [`Machine::set_stepped`]) forces the original cycle-by-cycle loop,
//! kept as the differential-testing reference: both paths produce
//! byte-identical [`RunReport::stable_json`] output.

use crate::backend::{BackendCtx, OperandBackend};
use crate::config::{Cycle, GpuConfig};
use crate::mem::{MemSystem, Traffic};
use crate::sched::Scheduler;
use crate::stats::{MemStats, SmStats};
use crate::warp::{WarpBlock, WarpState};
use regless_compiler::CompiledKernel;
use regless_isa::{InsnRef, LaneVec, OpClass, Opcode, Reg, WarpId};
use regless_telemetry::{IssueStack, SelfProfiler, StallReason};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

/// Deterministic per-address contents of simulated global memory.
///
/// Loads return a hash of the address: data-dependent but reproducible,
/// and realistically incompressible (unlike index arithmetic, which stays
/// compressible). Stores are sinks.
pub fn load_value(addr: u32) -> u32 {
    let mut x = addr.wrapping_mul(0x9e37_79b9) ^ 0x85eb_ca6b;
    x ^= x >> 13;
    x = x.wrapping_mul(0xc2b2_ae35);
    x ^ (x >> 16)
}

/// Simulation errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The cycle limit was reached before all warps finished — a hang or a
    /// configuration far too small for the workload.
    MaxCyclesExceeded {
        /// The limit that was hit.
        limit: Cycle,
        /// Warps still unfinished, per SM.
        unfinished: Vec<usize>,
    },
    /// The run's [`crate::CancelToken`] tripped (an explicit cancel or an
    /// expired deadline); the simulation stopped at a cycle boundary.
    Cancelled {
        /// The cycle at which cancellation was observed.
        at_cycle: Cycle,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MaxCyclesExceeded { limit, unfinished } => write!(
                f,
                "simulation exceeded {limit} cycles with unfinished warps per SM {unfinished:?}"
            ),
            SimError::Cancelled { at_cycle } => {
                write!(f, "simulation cancelled cooperatively at cycle {at_cycle}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Priority for choosing which blocked warp's reason an idle issue slot is
/// charged to (lower wins). Design-specific staging stalls come first —
/// they are what RegLess's CPI stacks exist to expose; a slot is only
/// charged at all when *no* warp could issue, so surfacing the staging
/// bottleneck over the generic hazard is the informative choice.
fn stall_priority(r: StallReason) -> usize {
    match r {
        StallReason::OsuCapacityWait => 0,
        StallReason::MshrFull => 1,
        StallReason::L1PortBusy => 2,
        StallReason::CmPreloadWait => 3,
        StallReason::Drain => 4,
        StallReason::DataHazard => 5,
        StallReason::Barrier => 6,
        StallReason::Issued | StallReason::NoWarp => 7,
    }
}

/// A pending register writeback, carried directly in the heap entry. The
/// heap orders on `(due, seq)` only — `seq` preserves push order among
/// same-cycle events, exactly as the former id-keyed side table did, and
/// the payload rides along so retiring an event can never miss its data.
#[derive(Clone, Debug)]
struct Event {
    due: Cycle,
    /// Push-order tie-break for events due the same cycle.
    seq: u64,
    warp: usize,
    at: InsnRef,
    reg: Reg,
    value: LaneVec,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// What one [`Sm::tick`] proved about the cycles ahead: whether the SM can
/// be fast-forwarded without simulating each cycle, and the earliest
/// future cycle at which anything on this SM is due.
#[derive(Clone, Copy, Debug)]
struct TickOutcome {
    /// Nothing issued, no warp was ready in any slot, and no barrier is
    /// about to release: until an event fires, every further tick would
    /// repeat this one's idle accounting verbatim.
    skippable: bool,
    /// Earliest due writeback or backend wakeup; `None` when nothing is
    /// pending (the SM is done or hard-blocked on another SM's progress).
    next_wakeup: Option<Cycle>,
}

/// One SM: warps, schedulers, in-flight writebacks, and the operand
/// backend.
pub struct Sm<B> {
    id: usize,
    config: GpuConfig,
    compiled: Arc<CompiledKernel>,
    /// Architectural state of each hardware warp.
    pub warps: Vec<WarpState>,
    scheds: Vec<Scheduler>,
    events: BinaryHeap<Reverse<Event>>,
    next_event_seq: u64,
    /// Per-scheduler highest-priority blocked warp from the last tick's
    /// idle slots, reused by [`Sm::skip_to`] to bulk-charge skipped cycles
    /// (the blocked set is frozen while nothing issues and no event fires).
    skip_blocked: Vec<Option<(StallReason, usize)>>,
    /// Each warp's current [`WarpBlock`], kept incrementally: warp state
    /// changes only at issue, writeback retire, and barrier release, so
    /// refreshing at those three points lets the per-slot scan read an
    /// array instead of re-deriving the scoreboard check per warp per
    /// cycle.
    block_cache: Vec<WarpBlock>,
    /// Scratch ready-list for the issue loop, reused across slots to
    /// avoid a heap allocation per slot per cycle.
    ready_buf: Vec<usize>,
    live_warps: usize,
    /// This SM's statistics.
    pub stats: SmStats,
    /// The operand backend (baseline RF, RegLess, RFH, RFV…).
    pub backend: B,
}

impl<B: OperandBackend> Sm<B> {
    fn new(id: usize, config: &GpuConfig, compiled: Arc<CompiledKernel>, backend: B) -> Self {
        let warps: Vec<WarpState> = (0..config.warps_per_sm)
            .map(|_| WarpState::new(compiled.kernel()))
            .collect();
        let scheds: Vec<Scheduler> = (0..config.schedulers_per_sm)
            .map(|_| Scheduler::new(config.scheduler, config.warps_per_scheduler()))
            .collect();
        let live_warps = warps.len();
        let num_scheds = scheds.len();
        let block_cache = warps
            .iter()
            .map(|w| w.block_reason(compiled.kernel()))
            .collect();
        Sm {
            id,
            config: *config,
            compiled,
            warps,
            scheds,
            events: BinaryHeap::new(),
            next_event_seq: 0,
            skip_blocked: vec![None; num_scheds],
            block_cache,
            ready_buf: Vec::new(),
            live_warps,
            stats: SmStats::default(),
            backend,
        }
    }

    /// Re-derive one warp's cached [`WarpBlock`] after its state changed.
    fn refresh_block(&mut self, w: usize) {
        self.block_cache[w] = self.warps[w].block_reason(self.compiled.kernel());
    }

    fn push_event(&mut self, mut e: Event) {
        e.seq = self.next_event_seq;
        self.next_event_seq += 1;
        self.events.push(Reverse(e));
    }

    fn all_done(&self) -> bool {
        self.live_warps == 0 && self.events.is_empty() && self.backend.quiesced()
    }

    /// Advance one cycle. `prof` is the machine's host-side self profiler
    /// (`None` when disabled): the phase guards below time host wall
    /// clock only and never touch simulated state, so profiled and
    /// unprofiled runs stay byte-identical.
    fn tick(
        &mut self,
        now: Cycle,
        mem: &mut MemSystem,
        prof: Option<&SelfProfiler>,
    ) -> TickOutcome {
        // 1. Retire writebacks due now. The payload lives in the heap
        // entry itself, so a popped event always has its data with it.
        let wb_guard = SelfProfiler::scope_opt(prof, "writeback");
        while self.events.peek().is_some_and(|Reverse(e)| e.due <= now) {
            let Reverse(e) = self.events.pop().expect("peeked above");
            self.warps[e.warp].pending.remove(&e.reg);
            self.refresh_block(e.warp);
            self.stats.trace_event(
                now,
                crate::TraceEvent::Writeback {
                    warp: e.warp,
                    reg: e.reg,
                },
            );
            let mut ctx = BackendCtx {
                sm: self.id,
                now,
                mem,
                stats: &mut self.stats,
            };
            self.backend
                .on_writeback(e.warp, e.at, e.reg, e.value, &mut ctx);
        }

        drop(wb_guard);

        // 2. Backend housekeeping (CM activation, preload pipeline).
        {
            let _g = SelfProfiler::scope_opt(prof, "backend_tick");
            let mut ctx = BackendCtx {
                sm: self.id,
                now,
                mem,
                stats: &mut self.stats,
            };
            self.backend.begin_cycle_with_warps(&self.warps, &mut ctx);
        }

        // 3. Barrier release, per thread block: a barrier synchronizes the
        // warps of one block, not the whole SM. A release changes warp
        // state that backends sample in `begin_cycle` (a warp leaving
        // `at_barrier` becomes an admission candidate), so the tick after a
        // release must be real even if this one issues nothing.
        let mut barrier_released = false;
        if self.live_warps > 0 {
            let bs = self.config.warps_per_block;
            for (bi, block) in self.warps.chunks_mut(bs).enumerate() {
                let any_waiting = block.iter().any(|w| w.at_barrier);
                let all_at_barrier = block.iter().filter(|w| !w.finished()).all(|w| w.at_barrier);
                if any_waiting && all_at_barrier {
                    for w in block.iter_mut() {
                        w.at_barrier = false;
                    }
                    barrier_released = true;
                    self.stats
                        .trace_event(now, crate::TraceEvent::BarrierRelease { block: bi });
                }
            }
            if barrier_released {
                for w in 0..self.warps.len() {
                    self.refresh_block(w);
                }
            }
        }

        // 4. Issue: up to `issue_slots_per_scheduler` instructions per
        // scheduler. Every slot is charged to exactly one [`StallReason`]
        // (the conservation law behind the CPI stacks): `Issued` when an
        // instruction or metadata bubble goes out, otherwise the
        // highest-priority reason among the warps that could not.
        let issue_guard = SelfProfiler::scope_opt(prof, "issue");
        let num_scheds = self.scheds.len();
        let per_sched = self.config.warps_per_scheduler();
        let mut issued_any = false;
        let mut all_ready_empty = true;
        for s in 0..num_scheds {
            for _slot in 0..self.config.issue_slots_per_scheduler {
                self.ready_buf.clear();
                // Highest-priority blocked warp seen so far, for charging
                // the slot if nothing issues.
                let mut blocked: Option<(StallReason, usize)> = None;
                for local in 0..per_sched {
                    let w = local * num_scheds + s;
                    let reason = match self.block_cache[w] {
                        WarpBlock::Finished => continue,
                        WarpBlock::Barrier => StallReason::Barrier,
                        WarpBlock::Scoreboard => StallReason::DataHazard,
                        WarpBlock::Ready => {
                            let pc = self.warps[w].pc().expect("ready implies a pc");
                            if self.backend.warp_eligible(w, pc) {
                                self.ready_buf.push(local);
                                continue;
                            }
                            match self.backend.issue_stall(w, pc) {
                                Some(r) => r,
                                None => continue,
                            }
                        }
                    };
                    let best = blocked.map_or(usize::MAX, |(r, _)| stall_priority(r));
                    if stall_priority(reason) < best {
                        blocked = Some((reason, w));
                    }
                }
                if !self.ready_buf.is_empty() {
                    // `pick` on a non-empty set may rotate scheduler state
                    // even when it declines, so such a tick cannot seed a
                    // skip (replaying it would not be a no-op).
                    all_ready_empty = false;
                }
                let Some(local) = self.scheds[s].pick(&self.ready_buf) else {
                    self.stats.idle_slots += 1;
                    self.skip_blocked[s] = blocked;
                    self.charge_idle_slot(blocked, now, mem);
                    continue;
                };
                issued_any = true;
                let w = local * num_scheds + s;
                let took_bubble = {
                    let mut ctx = BackendCtx {
                        sm: self.id,
                        now,
                        mem,
                        stats: &mut self.stats,
                    };
                    self.backend.take_bubble(w, &mut ctx)
                };
                if took_bubble {
                    self.stats.meta_insns += 1;
                    // The metadata bubble occupied the slot: issued work.
                    let region = self.warps[w].pc().map(|pc| self.compiled.region_at(pc).0);
                    self.stats.charge_slot(StallReason::Issued, Some(w), region);
                    continue;
                }
                self.issue(w, s, local, now, mem);
                self.refresh_block(w);
            }
        }

        drop(issue_guard);

        // 5. Roll statistics windows.
        {
            let _g = SelfProfiler::scope_opt(prof, "stats_windows");
            self.stats.working_set.roll(now);
            self.stats.backing_series.roll(now);
            self.stats.osu_occupancy.roll(now);
            self.stats.osu_reserved_series.roll(now);
            self.stats.osu_free_series.roll(now);
            self.stats.cm_queue_series.roll(now);
            self.stats.cycles = now + 1;
        }

        // 6. Prove (or refuse) skippability for the cycles ahead. A barrier
        // about to release would change warp state on the very next tick,
        // so it pins the stepped path; it should be unreachable from a
        // no-issue tick (the releasing issue runs phase 3 next tick), but
        // the check is cheap insurance against charging through a release.
        let mut barrier_pending = false;
        if self.live_warps > 0 {
            let bs = self.config.warps_per_block;
            for block in self.warps.chunks(bs) {
                let any_waiting = block.iter().any(|w| w.at_barrier);
                let all_at_barrier = block.iter().filter(|w| !w.finished()).all(|w| w.at_barrier);
                if any_waiting && all_at_barrier {
                    barrier_pending = true;
                }
            }
        }
        let mut wakeup = self.backend.next_wakeup(now);
        if let Some(Reverse(e)) = self.events.peek() {
            // Post-retire, every queued event is due strictly after `now`.
            wakeup = Some(wakeup.map_or(e.due, |w| w.min(e.due)));
        }
        if barrier_released {
            // The released warps must be re-examined next tick.
            wakeup = Some(wakeup.map_or(now + 1, |w| w.min(now + 1)));
        }
        TickOutcome {
            skippable: !issued_any && all_ready_empty && !barrier_pending,
            next_wakeup: wakeup,
        }
    }

    /// Bulk-account the idle cycles `from..to` (exclusive of `to`, which
    /// gets a real [`Sm::tick`]) that [`Machine::run`] fast-forwarded over.
    /// Each skipped cycle would have charged every issue slot to the same
    /// reason the last stepped tick found (the blocked set is frozen while
    /// nothing issues and no event fires), so the charge is a multiply —
    /// except the memory-state refinement of `CmPreloadWait`, whose two
    /// probes move monotonically: MSHRs stay full until a fixed completion
    /// cycle and the L1 port backlog drains at a fixed free cycle, so the
    /// span splits into at most three runs charged in order.
    fn skip_to(&mut self, from: Cycle, to: Cycle, mem: &MemSystem) {
        debug_assert!(from < to);
        let span = to - from;
        let slots = self.config.issue_slots_per_scheduler as u64;
        for s in 0..self.scheds.len() {
            self.stats.idle_slots += span * slots;
            match self.skip_blocked[s] {
                None => {
                    self.stats
                        .charge_slot_many(StallReason::NoWarp, None, None, span * slots);
                }
                Some((reason, w)) => {
                    let region = self.warps[w].pc().map(|pc| self.compiled.region_at(pc).0);
                    if reason == StallReason::CmPreloadWait {
                        // full(t) ⟺ t < c1; backlog(t) > 0 ⟺ t < c2.
                        let c1 = mem.l1_mshr_full_until(self.id).clamp(from, to);
                        let c2 = mem.l1_port_free_cycle(self.id).clamp(c1, to);
                        self.stats.charge_slot_many(
                            StallReason::MshrFull,
                            Some(w),
                            region,
                            (c1 - from) * slots,
                        );
                        self.stats.charge_slot_many(
                            StallReason::L1PortBusy,
                            Some(w),
                            region,
                            (c2 - c1) * slots,
                        );
                        self.stats.charge_slot_many(
                            StallReason::CmPreloadWait,
                            Some(w),
                            region,
                            (to - c2) * slots,
                        );
                    } else {
                        self.stats
                            .charge_slot_many(reason, Some(w), region, span * slots);
                    }
                }
            }
        }
        self.stats.cycles = to;
        self.backend.on_skip(from, to, &mut self.stats);
    }

    /// Charge an issue slot that went unused. `blocked` carries the
    /// highest-priority reason found among this scheduler's warps (and the
    /// warp it came from); with no candidate at all the slot is `NoWarp`,
    /// which has no warp or region to blame. Staging waits are refined
    /// with the memory system's live state: a full MSHR file or a backed-up
    /// L1 port is the real bottleneck behind a preload that has not landed.
    fn charge_idle_slot(
        &mut self,
        blocked: Option<(StallReason, usize)>,
        now: Cycle,
        mem: &MemSystem,
    ) {
        let Some((mut reason, w)) = blocked else {
            self.stats.charge_slot(StallReason::NoWarp, None, None);
            return;
        };
        if reason == StallReason::CmPreloadWait {
            if mem.l1_mshrs_full(self.id, now) {
                reason = StallReason::MshrFull;
            } else if mem.l1_port_backlog(self.id, now) > 0 {
                reason = StallReason::L1PortBusy;
            }
        }
        let region = self.warps[w].pc().map(|pc| self.compiled.region_at(pc).0);
        self.stats.charge_slot(reason, Some(w), region);
    }

    fn issue(&mut self, w: usize, sched: usize, local: usize, now: Cycle, mem: &mut MemSystem) {
        let at = self.warps[w].pc().expect("issuing warp has a pc");
        let insn = self.compiled.kernel().insn(at).clone();
        let mask = self.warps[w].mask();

        // Track the operand working set (Figure 2).
        for &srcr in insn.srcs() {
            self.stats.working_set.record(WarpId(w as u16), srcr, now);
        }
        if let Some(d) = insn.dst() {
            self.stats.working_set.record(WarpId(w as u16), d, now);
        }

        self.stats.charge_slot(
            StallReason::Issued,
            Some(w),
            Some(self.compiled.region_at(at).0),
        );
        self.stats
            .trace_event(now, crate::TraceEvent::Issue { warp: w, pc: at });

        // Functional evaluation. Staged operand values are cross-checked
        // against the architectural state *before* the backend applies its
        // last-use annotations.
        let src_vals: Vec<LaneVec> = insn
            .srcs()
            .iter()
            .map(|s| self.warps[w].regs[s.index()])
            .collect();
        {
            let operands: Vec<(Reg, LaneVec)> = insn
                .srcs()
                .iter()
                .copied()
                .zip(src_vals.iter().copied())
                .collect();
            self.backend
                .check_staged_operands(w, &operands, &mut self.stats);
        }
        let extra = {
            let mut ctx = BackendCtx {
                sm: self.id,
                now,
                mem,
                stats: &mut self.stats,
            };
            self.backend.on_issue(w, at, &insn, &mut ctx)
        };
        let alu_value = insn.evaluate(&src_vals, self.global_warp_index(w));
        let taken_bits = if matches!(insn.op(), Opcode::Bra { .. }) {
            src_vals[0].nonzero_bits()
        } else {
            0
        };

        // Timing + memory traffic.
        let mut writeback: Option<(Cycle, LaneVec)> = None;
        match insn.op() {
            Opcode::LdGlobal => {
                let addrs = &src_vals[0];
                let done = self.coalesced_access(addrs, mask, false, now, mem);
                let mut v = LaneVec::zero();
                for l in mask.iter() {
                    v.set_lane(l, load_value(addrs.lane(l)));
                }
                writeback = Some((done + extra, v));
                self.scheds[sched].on_long_latency(local);
            }
            Opcode::StGlobal => {
                let addrs = &src_vals[1];
                let _ = self.coalesced_access(addrs, mask, true, now, mem);
            }
            Opcode::LdShared => {
                let addrs = &src_vals[0];
                let mut v = LaneVec::zero();
                for l in mask.iter() {
                    v.set_lane(l, load_value(addrs.lane(l) ^ 0x5f5f_5f5f));
                }
                writeback = Some((now + self.config.latency.shared_mem + extra, v));
            }
            Opcode::StShared | Opcode::Bra { .. } | Opcode::Jmp { .. } | Opcode::Exit => {}
            Opcode::Bar => {
                self.warps[w].at_barrier = true;
            }
            _ => {
                let lat = match insn.class() {
                    OpClass::FpAlu => self.config.latency.fp_alu,
                    OpClass::Sfu => self.config.latency.sfu,
                    _ => self.config.latency.int_alu,
                };
                writeback = Some((
                    now + lat + extra,
                    alu_value.expect("ALU ops produce values"),
                ));
            }
        }

        // Scoreboard + functional write.
        if let Some(d) = insn.dst() {
            let (due, value) = writeback.expect("dst implies a writeback");
            // Soft definitions merge with inactive lanes' old values.
            let mut merged = self.warps[w].regs[d.index()];
            for l in mask.iter() {
                merged.set_lane(l, value.lane(l));
            }
            self.warps[w].regs[d.index()] = merged;
            self.warps[w].pending.insert(d);
            self.push_event(Event {
                due,
                seq: 0, // assigned by push_event
                warp: w,
                at,
                reg: d,
                value: merged,
            });
        }

        // Control state.
        let dom = self.compiled.dom();
        self.warps[w].advance(self.compiled.kernel(), taken_bits, |b| {
            dom.immediate_postdominator(b)
        });
        self.warps[w].insns_issued += 1;
        self.stats.insns += 1;

        if self.warps[w].finished() {
            self.warps[w].finished_at = Some(now);
            self.live_warps -= 1;
            self.stats
                .trace_event(now, crate::TraceEvent::WarpFinish { warp: w });
            let mut ctx = BackendCtx {
                sm: self.id,
                now,
                mem,
                stats: &mut self.stats,
            };
            self.backend.on_warp_finish(w, &mut ctx);
        }
    }

    /// Coalesce a warp's lane addresses into unique 128-byte lines and
    /// issue them to the memory system; returns the completion cycle.
    fn coalesced_access(
        &mut self,
        addrs: &LaneVec,
        mask: regless_isa::LaneMask,
        write: bool,
        now: Cycle,
        mem: &mut MemSystem,
    ) -> Cycle {
        let mut lines: Vec<u64> = mask.iter().map(|l| addrs.lane(l) as u64 / 128).collect();
        lines.sort_unstable();
        lines.dedup();
        let mut done = now + 1;
        for line in lines {
            let a = mem.access_line(self.id, line * 128, write, Traffic::Data, now);
            done = done.max(a.done);
        }
        self.stats
            .observe("mem.data_latency", done.saturating_sub(now));
        done
    }

    fn global_warp_index(&self, w: usize) -> usize {
        self.id * self.config.warps_per_sm + w
    }

    /// The compiled kernel this SM runs.
    pub fn compiled(&self) -> &CompiledKernel {
        &self.compiled
    }
}

/// Result of a whole-GPU run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Total cycles until the last SM finished.
    pub cycles: Cycle,
    /// Per-SM counters.
    pub sm_stats: Vec<SmStats>,
    /// Memory-hierarchy counters.
    pub mem: MemStats,
    /// Final architectural register values, `final_regs[sm][warp][reg]`,
    /// for checking against the functional interpreter.
    pub final_regs: Vec<Vec<Vec<LaneVec>>>,
    /// Dynamic instructions per warp, `warp_insns[sm][warp]`.
    pub warp_insns: Vec<Vec<u64>>,
    /// Wall-clock seconds the simulation itself took, measured by
    /// [`Machine::run`]. A report served from the sweep-engine cache keeps
    /// the wall time of the run that originally produced it.
    pub wall_seconds: f64,
    /// Merged telemetry across SMs when a recorder was attached via
    /// [`Machine::attach_telemetry`]; `None` otherwise. Like `final_regs`,
    /// this is a debugging payload and is never persisted by the JSON
    /// serializers.
    pub telemetry: Option<Box<regless_telemetry::Telemetry>>,
}

// JSON layout for the sweep-engine result cache. `final_regs` is a
// functional-correctness payload (large, and unused by every figure), so
// it is deliberately *not* persisted: reports loaded from the cache carry
// an empty `final_regs`. Consumers that need architectural state (the
// oracle tests) always run the simulator directly.
impl regless_json::ToJson for RunReport {
    fn to_json(&self) -> regless_json::Json {
        regless_json::Json::Obj(vec![
            ("cycles".into(), regless_json::ToJson::to_json(&self.cycles)),
            (
                "sm_stats".into(),
                regless_json::ToJson::to_json(&self.sm_stats),
            ),
            ("mem".into(), regless_json::ToJson::to_json(&self.mem)),
            (
                "warp_insns".into(),
                regless_json::ToJson::to_json(&self.warp_insns),
            ),
            (
                "wall_seconds".into(),
                regless_json::ToJson::to_json(&self.wall_seconds),
            ),
        ])
    }
}

impl regless_json::FromJson for RunReport {
    fn from_json(v: &regless_json::Json) -> Result<Self, regless_json::JsonError> {
        Ok(RunReport {
            cycles: regless_json::FromJson::from_json(v.field("cycles")?)?,
            sm_stats: regless_json::FromJson::from_json(v.field("sm_stats")?)?,
            mem: regless_json::FromJson::from_json(v.field("mem")?)?,
            final_regs: Vec::new(),
            warp_insns: regless_json::FromJson::from_json(v.field("warp_insns")?)?,
            wall_seconds: regless_json::FromJson::from_json(v.field("wall_seconds")?)?,
            telemetry: None,
        })
    }
}

impl RunReport {
    /// The deterministic JSON view of this report: everything [`ToJson`]
    /// serializes *except* `wall_seconds`, which is wall-clock noise. Two
    /// runs of the same kernel under the same design produce byte-identical
    /// `stable_json` strings, which is what the serving layer returns to
    /// clients and what byte-identity tests compare, whether a run was
    /// simulated directly, coalesced, or replayed from the sweep cache.
    ///
    /// [`ToJson`]: regless_json::ToJson
    pub fn stable_json(&self) -> regless_json::Json {
        regless_json::Json::Obj(vec![
            ("cycles".into(), regless_json::ToJson::to_json(&self.cycles)),
            (
                "sm_stats".into(),
                regless_json::ToJson::to_json(&self.sm_stats),
            ),
            ("mem".into(), regless_json::ToJson::to_json(&self.mem)),
            (
                "warp_insns".into(),
                regless_json::ToJson::to_json(&self.warp_insns),
            ),
        ])
    }

    /// Merged counters across SMs.
    pub fn total(&self) -> SmStats {
        let mut t = SmStats::default();
        for s in &self.sm_stats {
            t.merge(s);
        }
        t
    }

    /// Instructions per cycle across the GPU.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.total().insns as f64 / self.cycles as f64
    }

    /// The whole-GPU CPI stack (all SMs' issue slots merged).
    pub fn issue_stack(&self) -> IssueStack {
        let mut total = IssueStack::new();
        for s in &self.sm_stats {
            total.merge(&s.issue_stack);
        }
        total
    }

    /// The whole-GPU per-cause OSU eviction stack (all SMs merged). Its
    /// total equals [`SmStats::osu_lines_evicted`] summed across SMs —
    /// the eviction-accounting conservation law.
    pub fn eviction_stack(&self) -> regless_telemetry::EvictionStack {
        let mut total = regless_telemetry::EvictionStack::new();
        for s in &self.sm_stats {
            total.merge(&s.eviction_stack);
        }
        total
    }

    /// The `n` regions with the most stalled issue slots, merged across
    /// SMs: `(region id, stack)` sorted by stalled slots descending (ties
    /// by region id, so the order is deterministic).
    pub fn region_hotspots(&self, n: usize) -> Vec<(u32, IssueStack)> {
        let mut merged: std::collections::BTreeMap<u32, IssueStack> =
            std::collections::BTreeMap::new();
        for s in &self.sm_stats {
            for (&region, stack) in &s.region_stacks {
                merged.entry(region).or_default().merge(stack);
            }
        }
        let mut rows: Vec<(u32, IssueStack)> = merged.into_iter().collect();
        rows.sort_by_key(|&(region, ref stack)| (std::cmp::Reverse(stack.stalled()), region));
        rows.truncate(n);
        rows
    }
}

/// A whole GPU: SMs sharing one memory hierarchy, all running the same
/// compiled kernel (the usual SPMD launch).
pub struct Machine<B> {
    mem: MemSystem,
    sms: Vec<Sm<B>>,
    config: GpuConfig,
    cancel: Option<crate::CancelToken>,
    /// Force the original cycle-by-cycle loop (no skip-ahead). Kept as the
    /// differential-testing reference; both paths produce byte-identical
    /// reports.
    stepped: bool,
    /// Host-side self profiler timing where the simulator's own wall time
    /// goes (issue vs writeback vs backend vs skip-ahead). `None` unless
    /// `REGLESS_SELFPROF` is set or a caller attached one; purely a
    /// host-clock observer, so reports stay byte-identical either way.
    selfprof: Option<Arc<SelfProfiler>>,
    /// Whether the profiler was auto-created from the environment (then
    /// the run loop prints its table to stderr at the end, since nobody
    /// else holds a handle to it).
    selfprof_auto: bool,
}

impl<B: OperandBackend> Machine<B> {
    /// Build a machine; `make_backend` constructs each SM's backend.
    pub fn new(
        config: GpuConfig,
        compiled: Arc<CompiledKernel>,
        mut make_backend: impl FnMut(usize) -> B,
    ) -> Self {
        config.validate();
        let mem = MemSystem::new(&config);
        let sms = (0..config.num_sms)
            .map(|i| Sm::new(i, &config, Arc::clone(&compiled), make_backend(i)))
            .collect();
        let selfprof_auto = SelfProfiler::env_enabled();
        Machine {
            mem,
            sms,
            config,
            cancel: None,
            stepped: std::env::var_os("REGLESS_SIM").is_some_and(|v| v == "stepped"),
            selfprof: selfprof_auto.then(|| Arc::new(SelfProfiler::new(true))),
            selfprof_auto,
        }
    }

    /// Attach a shared [`SelfProfiler`]: the run loop records host time
    /// per phase into it, and the caller keeps the handle to render or
    /// export afterwards. Overrides the `REGLESS_SELFPROF` auto-profiler
    /// (and its end-of-run stderr table).
    pub fn attach_self_profiler(&mut self, prof: Arc<SelfProfiler>) {
        self.selfprof = Some(prof);
        self.selfprof_auto = false;
    }

    /// Force (`true`) or disable (`false`) the stepped cycle-by-cycle loop,
    /// overriding the `REGLESS_SIM=stepped` environment escape hatch. Tests
    /// use this rather than the env var, which is racy under a parallel
    /// test runner.
    pub fn set_stepped(&mut self, stepped: bool) {
        self.stepped = stepped;
    }

    /// Attach a cooperative [`crate::CancelToken`]: the run loop polls it
    /// every cycle and returns [`SimError::Cancelled`] once it trips, so a
    /// controller (deadline timer, serving layer) can stop a simulation
    /// without orphaning the thread that runs it.
    pub fn set_cancel_token(&mut self, token: crate::CancelToken) {
        self.cancel = Some(token);
    }

    /// Run to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MaxCyclesExceeded`] if the configured cycle
    /// limit is hit first.
    pub fn run(mut self) -> Result<RunReport, SimError> {
        let started = std::time::Instant::now();
        let prof = self.selfprof.clone();
        let mut now: Cycle = 0;
        while !self.sms.iter().all(Sm::all_done) {
            if let Some(token) = &self.cancel {
                if token.should_stop(now) {
                    return Err(SimError::Cancelled { at_cycle: now });
                }
            }
            if now >= self.config.max_cycles {
                return Err(SimError::MaxCyclesExceeded {
                    limit: self.config.max_cycles,
                    unfinished: self
                        .sms
                        .iter()
                        .map(|sm| sm.warps.iter().filter(|w| !w.finished()).count())
                        .collect(),
                });
            }
            // Seed with the fast path enabled; any SM that issued (or might
            // on the next cycle) pins the machine to single-stepping.
            let mut skippable = !self.stepped;
            let mut wakeup: Option<Cycle> = None;
            for sm in &mut self.sms {
                let out = sm.tick(now, &mut self.mem, prof.as_deref());
                skippable &= out.skippable;
                if let Some(due) = out.next_wakeup {
                    wakeup = Some(wakeup.map_or(due, |w| w.min(due)));
                }
            }
            // A backend can finish draining inside an otherwise idle tick,
            // so re-check completion before committing to a skip.
            if skippable && !self.sms.iter().all(Sm::all_done) {
                // Jump to the earliest due event, clamped to the next
                // stats-window boundary (RegLess's census samples on
                // multiples of WINDOW_CYCLES), the next cancellation-poll
                // boundary (deadline latency stays bounded), and the cycle
                // limit. With no wakeup anywhere, the window clamp alone
                // bounds the jump; progress then depends on another SM,
                // whose events are visible only machine-wide.
                let window = (now / crate::stats::WINDOW_CYCLES + 1) * crate::stats::WINDOW_CYCLES;
                let poll = (now / crate::cancel::DEADLINE_CHECK_CYCLES + 1)
                    * crate::cancel::DEADLINE_CHECK_CYCLES;
                let mut target = window.min(poll).min(self.config.max_cycles);
                if let Some(w) = wakeup {
                    target = target.min(w);
                }
                if target > now + 1 {
                    let _g = SelfProfiler::scope_opt(prof.as_deref(), "event_jump");
                    for sm in &mut self.sms {
                        sm.skip_to(now + 1, target, &self.mem);
                    }
                    now = target;
                    continue;
                }
            }
            now += 1;
        }
        let final_regs = self
            .sms
            .iter()
            .map(|sm| sm.warps.iter().map(|w| w.regs.clone()).collect())
            .collect();
        let warp_insns = self
            .sms
            .iter()
            .map(|sm| sm.warps.iter().map(|w| w.insns_issued).collect())
            .collect();
        let mut sm_stats: Vec<SmStats> = self
            .sms
            .into_iter()
            .map(|mut sm| {
                sm.backend.finish(&mut sm.stats);
                sm.stats
            })
            .collect();
        let telemetry = collect_telemetry(&mut sm_stats, &self.mem.stats, now);
        if self.selfprof_auto {
            // Env-activated profiler: nobody else holds the handle, so the
            // run loop itself surfaces the breakdown (stderr keeps stdout
            // JSON pipelines clean).
            if let Some(p) = &prof {
                let table = p.render_table("sim");
                if !table.is_empty() {
                    eprintln!("{table}");
                }
            }
        }
        Ok(RunReport {
            cycles: now,
            sm_stats,
            mem: self.mem.stats,
            final_regs,
            warp_insns,
            wall_seconds: started.elapsed().as_secs_f64(),
            telemetry,
        })
    }

    /// The machine's SMs (inspection in tests).
    pub fn sms(&self) -> &[Sm<B>] {
        &self.sms
    }

    /// Attach a telemetry recorder to every SM, each buffering up to
    /// `events_per_sm` structured events (counters, histograms, and time
    /// series are unbounded). The merged telemetry comes back in
    /// [`RunReport::telemetry`].
    pub fn attach_telemetry(&mut self, events_per_sm: usize) {
        for (i, sm) in self.sms.iter_mut().enumerate() {
            sm.stats.recorder = Some(Box::new(
                regless_telemetry::MemoryRecorder::new(events_per_sm).with_group(i as u16),
            ));
        }
    }
}

/// Drain every SM's recorder, merge into one [`regless_telemetry::Telemetry`],
/// and fold the headline run counters into the exported view so summaries
/// are self-contained.
fn collect_telemetry(
    sm_stats: &mut [SmStats],
    mem: &MemStats,
    cycles: Cycle,
) -> Option<Box<regless_telemetry::Telemetry>> {
    let mut merged = regless_telemetry::Telemetry::new();
    let mut any = false;
    for s in sm_stats.iter_mut() {
        if let Some(rec) = s.recorder.take() {
            merged.merge(rec.into_telemetry());
            any = true;
        }
    }
    if !any {
        return None;
    }
    let mut total = SmStats::default();
    for s in sm_stats.iter() {
        total.merge(s);
    }
    merged.add_counter("cycles", cycles);
    merged.add_counter("sm.insns", total.insns);
    merged.add_counter("sm.meta_insns", total.meta_insns);
    merged.add_counter("sm.idle_slots", total.idle_slots);
    // The CPI stack, as `stall.<reason>` counters (summaries stay
    // self-contained without re-deriving the stack from SmStats).
    for (reason, slots) in total.issue_stack.entries() {
        merged.add_counter(reason.counter_name(), slots);
    }
    merged.add_counter("preload.osu", total.preloads_osu);
    merged.add_counter("preload.compressor", total.preloads_compressor);
    merged.add_counter("preload.l1", total.preloads_l1);
    merged.add_counter("preload.l2_dram", total.preloads_l2_dram);
    merged.add_counter("osu.reads", total.osu_reads);
    merged.add_counter("osu.writes", total.osu_writes);
    merged.add_counter("osu.tag_probes", total.osu_tag_probes);
    merged.add_counter("osu.bank_conflicts", total.osu_bank_conflicts);
    merged.add_counter("compressor.matches", total.compressor_matches);
    merged.add_counter("compressor.compressed", total.compressor_compressed);
    // Per-cause evictions as `evict.<reason>` counters, plus the OSU's
    // mechanical total they must sum to.
    merged.add_counter("osu.lines_evicted", total.osu_lines_evicted);
    for (reason, lines) in total.eviction_stack.entries() {
        merged.add_counter(reason.counter_name(), lines);
    }
    // Compressor effectiveness: per-pattern hits and staging byte traffic.
    merged.add_counter("compressor.pattern.constant", total.comp_constant);
    merged.add_counter("compressor.pattern.stride1", total.comp_stride1);
    merged.add_counter("compressor.pattern.stride4", total.comp_stride4);
    merged.add_counter("compressor.pattern.half_stride1", total.comp_half_stride1);
    merged.add_counter("compressor.pattern.half_stride4", total.comp_half_stride4);
    merged.add_counter("compressor.incompressible", total.comp_incompressible);
    merged.add_counter("compressor.bytes_in", total.comp_bytes_in);
    merged.add_counter("compressor.bytes_out", total.comp_bytes_out);
    merged.add_counter("regions.activated", total.regions_activated);
    merged.add_counter("regions.active_cycles", total.region_active_cycles);
    merged.add_counter("reg.stores_l1", total.reg_stores_l1);
    merged.add_counter("reg.invalidate_l1", total.reg_invalidate_l1);
    merged.add_counter("mem.l1_data_accesses", mem.l1_data_accesses);
    merged.add_counter("mem.l1_reg_accesses", mem.l1_reg_accesses);
    merged.add_counter("mem.l1_hits", mem.l1_hits);
    merged.add_counter("mem.l1_misses", mem.l1_misses);
    merged.add_counter("mem.l2_accesses", mem.l2_accesses);
    merged.add_counter("mem.dram_accesses", mem.dram_accesses);
    Some(Box::new(merged))
}

/// Convenience runner for the baseline register-file design.
pub fn run_baseline(
    config: GpuConfig,
    compiled: Arc<CompiledKernel>,
) -> Result<RunReport, SimError> {
    run_baseline_with(config, compiled, false)
}

/// [`run_baseline`] with an explicit run-loop mode: `stepped` forces the
/// cycle-by-cycle reference loop (see [`Machine::set_stepped`]).
pub fn run_baseline_with(
    config: GpuConfig,
    compiled: Arc<CompiledKernel>,
    stepped: bool,
) -> Result<RunReport, SimError> {
    let mut machine = Machine::new(config, compiled, |_| crate::backend::BaselineRf::new());
    machine.set_stepped(stepped);
    machine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_compiler::{compile, RegionConfig};
    use regless_isa::KernelBuilder;

    fn compiled(kernel: regless_isa::Kernel) -> Arc<CompiledKernel> {
        Arc::new(compile(&kernel, &RegionConfig::default()).unwrap())
    }

    fn straight_line() -> Arc<CompiledKernel> {
        let mut b = KernelBuilder::new("s");
        let i = b.thread_idx();
        let x = b.iadd(i, i);
        let y = b.imul(x, i);
        b.st_global(y, i);
        b.exit();
        compiled(b.finish().unwrap())
    }

    #[test]
    fn baseline_runs_to_completion() {
        let report = run_baseline(GpuConfig::test_small(), straight_line()).unwrap();
        let total = report.total();
        // 8 warps x 5 instructions.
        assert_eq!(total.insns, 8 * 5);
        assert!(report.cycles > 0);
        assert!(total.rf_reads > 0 && total.rf_writes > 0);
    }

    #[test]
    fn load_latency_delays_dependents() {
        // Dependent chain through a global load must take at least the
        // L2 latency (data bypasses L1).
        let mut b = KernelBuilder::new("lat");
        let i = b.thread_idx();
        let v = b.ld_global(i);
        let x = b.iadd(v, v);
        b.st_global(x, i);
        b.exit();
        let c = compiled(b.finish().unwrap());
        let config = GpuConfig {
            warps_per_sm: 2,
            warps_per_block: 2,
            schedulers_per_sm: 2,
            ..GpuConfig::test_small()
        };
        let report = run_baseline(config, c).unwrap();
        assert!(
            report.cycles >= GpuConfig::test_small().l2.hit_latency,
            "cycles {} should cover L2 latency",
            report.cycles
        );
    }

    #[test]
    fn divergent_kernel_executes_both_paths() {
        let mut b = KernelBuilder::new("div");
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let lane = b.lane_idx();
        let half = b.movi(16);
        let c = b.setlt(lane, half);
        b.bra(c, t, e);
        b.select(t);
        let a1 = b.iadd(lane, lane);
        b.st_global(a1, lane);
        b.jmp(j);
        b.select(e);
        let a2 = b.imul(lane, lane);
        b.st_global(a2, lane);
        b.jmp(j);
        b.select(j);
        b.exit();
        let report = run_baseline(GpuConfig::test_small(), compiled(b.finish().unwrap())).unwrap();
        // Both sides execute: 4 + 3 + 3 + 1 instructions per warp.
        assert_eq!(report.total().insns, 8 * 11);
    }

    #[test]
    fn barrier_synchronizes_all_warps() {
        let mut b = KernelBuilder::new("bar");
        let i = b.thread_idx();
        let x = b.iadd(i, i);
        b.bar();
        let y = b.imul(x, x);
        b.st_global(y, i);
        b.exit();
        let report = run_baseline(GpuConfig::test_small(), compiled(b.finish().unwrap())).unwrap();
        assert_eq!(report.total().insns, 8 * 6);
    }

    #[test]
    fn loop_kernel_terminates() {
        let mut b = KernelBuilder::new("loop");
        let body = b.new_block();
        let done = b.new_block();
        let i0 = b.movi(0);
        let n = b.movi(16);
        b.jmp(body);
        b.select(body);
        let one = b.movi(1);
        b.emit_to(i0, Opcode::IAdd, vec![i0, one]);
        let c = b.setlt(i0, n);
        b.bra(c, body, done);
        b.select(done);
        b.exit();
        let report = run_baseline(GpuConfig::test_small(), compiled(b.finish().unwrap())).unwrap();
        // 16 iterations x 4 body insns + 3 prologue + 1 exit per warp.
        assert_eq!(report.total().insns, 8 * (16 * 4 + 4));
    }

    #[test]
    fn pre_cancelled_token_stops_the_run_immediately() {
        let token = crate::CancelToken::new();
        token.cancel();
        let mut machine = Machine::new(GpuConfig::test_small(), straight_line(), |_| {
            crate::backend::BaselineRf::new()
        });
        machine.set_cancel_token(token);
        match machine.run() {
            Err(e) => assert_eq!(e, SimError::Cancelled { at_cycle: 0 }),
            Ok(_) => panic!("pre-cancelled run must not complete"),
        }
    }

    #[test]
    fn cancel_mid_run_reports_the_observed_cycle() {
        // A token cancelled from another thread shortly after the run
        // starts must stop the simulation cooperatively rather than let it
        // finish; a long-looping kernel guarantees the window.
        let mut b = KernelBuilder::new("long");
        let body = b.new_block();
        let done = b.new_block();
        let i0 = b.movi(0);
        let n = b.movi(1_000_000);
        b.jmp(body);
        b.select(body);
        let one = b.movi(1);
        b.emit_to(i0, Opcode::IAdd, vec![i0, one]);
        let c = b.setlt(i0, n);
        b.bra(c, body, done);
        b.select(done);
        b.exit();
        let token = crate::CancelToken::new();
        let canceller = token.clone();
        let mut machine = Machine::new(
            GpuConfig::test_small(),
            compiled(b.finish().unwrap()),
            |_| crate::backend::BaselineRf::new(),
        );
        machine.set_cancel_token(token);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            canceller.cancel();
        });
        match machine.run() {
            Err(SimError::Cancelled { .. }) => {}
            other => panic!("expected cancellation, got {other:?}"),
        }
        t.join().unwrap();
    }

    #[test]
    fn uncancelled_token_leaves_the_report_byte_identical() {
        let plain = run_baseline(GpuConfig::test_small(), straight_line()).unwrap();
        let mut machine = Machine::new(GpuConfig::test_small(), straight_line(), |_| {
            crate::backend::BaselineRf::new()
        });
        machine.set_cancel_token(crate::CancelToken::new());
        let with_token = machine.run().unwrap();
        assert_eq!(
            plain.stable_json().to_string_compact(),
            with_token.stable_json().to_string_compact()
        );
    }

    #[test]
    fn ipc_bounded_by_schedulers() {
        let report = run_baseline(GpuConfig::test_small(), straight_line()).unwrap();
        assert!(report.ipc() <= GpuConfig::test_small().schedulers_per_sm as f64);
    }

    #[test]
    fn working_set_tracked() {
        let mut b = KernelBuilder::new("ws");
        let body = b.new_block();
        let done = b.new_block();
        let i0 = b.movi(0);
        let n = b.movi(200);
        b.jmp(body);
        b.select(body);
        let one = b.movi(1);
        b.emit_to(i0, Opcode::IAdd, vec![i0, one]);
        let c = b.setlt(i0, n);
        b.bra(c, body, done);
        b.select(done);
        b.exit();
        let report = run_baseline(GpuConfig::test_small(), compiled(b.finish().unwrap())).unwrap();
        assert!(!report.sm_stats[0].working_set.samples().is_empty());
        assert!(report.sm_stats[0].working_set.mean_kb() > 0.0);
    }

    use regless_isa::Opcode;
}
