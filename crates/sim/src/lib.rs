//! Cycle-level SIMT streaming-multiprocessor simulator.
//!
//! This crate is the execution substrate of the RegLess reproduction: a
//! from-scratch GPU core model with warps, a SIMT reconvergence stack, a
//! scoreboard, GTO and two-level warp schedulers, a baseline register file,
//! and an L1/L2/DRAM memory hierarchy whose L1 accepts **one request per
//! cycle** — the bandwidth constraint at the center of the paper's design
//! (§2.2).
//!
//! The pipeline is generic over an [`OperandBackend`], so the same timing
//! model runs the baseline ([`BaselineRf`]), RegLess (`regless-core`), and
//! the RFH/RFV comparison points (`regless-baselines`).
//!
//! ```
//! use regless_sim::{run_baseline, GpuConfig};
//! use regless_compiler::{compile, RegionConfig};
//! use regless_isa::KernelBuilder;
//! use std::sync::Arc;
//!
//! let mut b = KernelBuilder::new("double");
//! let i = b.thread_idx();
//! let v = b.iadd(i, i);
//! b.st_global(v, i);
//! b.exit();
//! let compiled = Arc::new(compile(&b.finish()?, &RegionConfig::default())?);
//!
//! let report = run_baseline(GpuConfig::test_small(), compiled).expect("runs");
//! assert_eq!(report.total().insns, 8 * 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Version tag for the simulator's *timing model semantics*, folded into the
/// sweep engine's on-disk cache fingerprint. Bump it whenever a change makes
/// previously simulated numbers stale (pipeline timing, scheduler policy,
/// memory-system behaviour, stat accounting) so cached `RunReport`s from
/// older builds are ignored rather than silently reused.
pub const SIM_MODEL_VERSION: u32 = 1;

mod backend;
mod cache;
mod cancel;
mod config;
mod interp;
mod mem;
mod rf;
mod sched;
mod sm;
mod stats;
mod trace;
mod warp;

pub use backend::{BackendCtx, BaselineRf, OccupancyLimitedRf, OperandBackend};
pub use cache::{AccessResult, Cache};
pub use cancel::{CancelToken, DEADLINE_CHECK_CYCLES};
pub use config::{table1_rows, CacheConfig, Cycle, GpuConfig, LatencyConfig, SchedulerKind};
pub use interp::{interpret, InterpError, InterpResult};
pub use mem::{Level, MemAccess, MemSystem, Traffic};
pub use rf::{collector_conflict_cycles, rf_bank, RF_BANKS};
pub use sched::Scheduler;
pub use sm::{load_value, run_baseline, run_baseline_with, Machine, RunReport, SimError, Sm};
pub use stats::{MemStats, PreloadSource, SmStats, WindowSeries, WorkingSetTracker, WINDOW_CYCLES};
pub use trace::TraceEvent;

// The telemetry subsystem the structured events feed into; re-exported so
// backend crates and binaries don't need a separate dependency line.
pub use regless_telemetry as telemetry;
// The CPI-stack types appear directly in backend and stats signatures.
pub use regless_telemetry::{
    EvictionReason, EvictionStack, IssueStack, StallReason, NUM_EVICTION_REASONS, NUM_STALL_REASONS,
};
pub use warp::{StackEntry, WarpBlock, WarpState};
