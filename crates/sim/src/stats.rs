//! Event counters and time-series trackers.

use crate::config::Cycle;
use regless_isa::{Reg, WarpId};
use regless_telemetry::{EvictionStack, IssueStack, StallReason};
use std::collections::{BTreeMap, HashSet};

/// Length of the sampling window used by the paper's Figures 2 and 3.
pub const WINDOW_CYCLES: Cycle = 100;

/// Tracks the register working set per 100-cycle window (Figure 2): the
/// number of distinct `(warp, register)` operands touched in each window,
/// reported in kilobytes (128 bytes per register).
#[derive(Clone, Debug, Default)]
pub struct WorkingSetTracker {
    current: HashSet<(WarpId, Reg)>,
    window_start: Cycle,
    samples: Vec<usize>,
}

impl WorkingSetTracker {
    /// New tracker starting at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an operand access at `now`.
    pub fn record(&mut self, warp: WarpId, reg: Reg, now: Cycle) {
        self.roll(now);
        self.current.insert((warp, reg));
    }

    /// Advance the window if `now` has moved past it.
    pub fn roll(&mut self, now: Cycle) {
        while now >= self.window_start + WINDOW_CYCLES {
            self.samples.push(self.current.len());
            self.current.clear();
            self.window_start += WINDOW_CYCLES;
        }
    }

    /// Mean working set over all complete windows, in KB.
    pub fn mean_kb(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let regs: usize = self.samples.iter().sum();
        (regs as f64 * 128.0 / 1024.0) / self.samples.len() as f64
    }

    /// Working-set samples (register count per window).
    pub fn samples(&self) -> &[usize] {
        &self.samples
    }
}

/// Accumulates a per-window count time series (Figure 3's backing-store
/// accesses per 100 cycles).
#[derive(Clone, Debug, Default)]
pub struct WindowSeries {
    current: u64,
    window_start: Cycle,
    samples: Vec<u64>,
}

impl WindowSeries {
    /// New series starting at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` events at `now`.
    pub fn record(&mut self, now: Cycle, n: u64) {
        self.roll(now);
        self.current += n;
    }

    /// Advance the window if `now` has moved past it.
    pub fn roll(&mut self, now: Cycle) {
        while now >= self.window_start + WINDOW_CYCLES {
            self.samples.push(self.current);
            self.current = 0;
            self.window_start += WINDOW_CYCLES;
        }
    }

    /// Completed window samples.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Mean events per window.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }
}

/// Where a RegLess preload was satisfied from (Figure 17's categories).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PreloadSource {
    /// The register was still resident in the OSU.
    Osu,
    /// The compressor reproduced the value from a compressed line.
    Compressor,
    /// Fetched from the L1 data cache.
    L1,
    /// Fetched from L2 or DRAM.
    L2OrDram,
}

/// Counters produced by one SM's execution. Baseline runs leave the
/// RegLess-specific counters at zero; the RegLess backend fills them in.
#[derive(Clone, Debug, Default)]
pub struct SmStats {
    /// Cycles this SM ran.
    pub cycles: Cycle,
    /// Real (non-metadata) instructions issued.
    pub insns: u64,
    /// Metadata instructions issued (RegLess only).
    pub meta_insns: u64,
    /// Issue *slots* (not cycles) in which no warp issued. Each scheduler
    /// contributes `issue_slots_per_scheduler` slots per cycle, so this can
    /// legitimately exceed `cycles` on wide configurations; it always equals
    /// `cycles × schedulers × slots − issue_stack.get(Issued)`.
    pub idle_slots: u64,

    /// Baseline register-file reads (per 128-byte operand). For the RFH
    /// baseline these are main-register-file (MRF) accesses; for RFV they
    /// are accesses to the half-size renamed RF.
    pub rf_reads: u64,
    /// Baseline register-file writes.
    pub rf_writes: u64,
    /// RFH last-result-file reads.
    pub lrf_reads: u64,
    /// RFH last-result-file writes.
    pub lrf_writes: u64,
    /// RFH register-file-cache reads.
    pub rfc_reads: u64,
    /// RFH register-file-cache writes.
    pub rfc_writes: u64,
    /// RFV rename-table lookups.
    pub rename_lookups: u64,
    /// RFV cycles in which warps were throttled for physical registers.
    pub rfv_throttled_warp_cycles: u64,
    /// RegDem stores of cold registers into the shared-memory scratch
    /// partition (one per cold destination writeback).
    pub spill_stores: u64,
    /// RegDem fills of cold registers from the shared-memory scratch
    /// partition (one per cold source operand read).
    pub spill_fills: u64,
    /// RegDem warp-cycles throttled for shared-memory scratch capacity.
    pub spill_throttled_warp_cycles: u64,
    /// Compressed-RF warp-cycles throttled for physical-entry capacity.
    pub comprf_throttled_warp_cycles: u64,
    /// Extra operand-collector cycles from baseline RF bank conflicts.
    pub rf_bank_conflicts: u64,

    /// OSU data-array reads.
    pub osu_reads: u64,
    /// OSU data-array writes.
    pub osu_writes: u64,
    /// OSU tag probes (reads, preload checks).
    pub osu_tag_probes: u64,
    /// Extra cycles lost to OSU bank conflicts.
    pub osu_bank_conflicts: u64,

    /// Preloads by satisfying source.
    pub preloads_osu: u64,
    /// Preloads satisfied by the compressor.
    pub preloads_compressor: u64,
    /// Preloads that fetched from L1.
    pub preloads_l1: u64,
    /// Preloads that went to L2 or DRAM.
    pub preloads_l2_dram: u64,
    /// Dirty-register stores to the L1.
    pub reg_stores_l1: u64,
    /// Cache-invalidation requests sent to the L1.
    pub reg_invalidate_l1: u64,
    /// Compressor pattern-match attempts.
    pub compressor_matches: u64,
    /// Registers successfully compressed on eviction.
    pub compressor_compressed: u64,
    /// Regions activated.
    pub regions_activated: u64,
    /// Total cycles warps spent with an active region (activation to drain
    /// completion); `/ regions_activated` gives Table 2's cycles-per-region.
    pub region_active_cycles: u64,
    /// OSU line allocations that exceeded a region's reservation
    /// (model safety valve; should stay tiny).
    pub reservation_overflows: u64,
    /// Staged operand values that disagreed with the architectural register
    /// state at issue — any nonzero count is a staging-path value bug.
    pub staging_mismatches: u64,

    /// Total OSU eviction events counted *mechanically inside the OSU*
    /// (published by the backend at run end). The per-cause
    /// [`eviction_stack`](Self::eviction_stack) must sum to exactly this —
    /// the conservation law that proves the backend's cause classification
    /// covers every eviction site.
    pub osu_lines_evicted: u64,
    /// Spilled lines the compressor matched as a constant pattern.
    pub comp_constant: u64,
    /// Spilled lines matched as stride-1.
    pub comp_stride1: u64,
    /// Spilled lines matched as stride-4.
    pub comp_stride4: u64,
    /// Spilled lines matched as half-width stride-1.
    pub comp_half_stride1: u64,
    /// Spilled lines matched as half-width stride-4.
    pub comp_half_stride4: u64,
    /// Spilled lines no pattern matched (stored uncompressed).
    pub comp_incompressible: u64,
    /// Bytes presented to the compressor (128 per spilled line).
    pub comp_bytes_in: u64,
    /// Bytes the compressor produced (pattern payload, or the full line
    /// when incompressible); `comp_bytes_out / comp_bytes_in` is the
    /// staging-traffic compression ratio.
    pub comp_bytes_out: u64,

    /// Per-cycle issue-slot attribution (the SM's CPI stack): every issue
    /// slot of every cycle is charged to exactly one [`StallReason`], so
    /// `issue_stack.total() == cycles × issue slots` — a conservation law
    /// the tier-1 tests enforce. Always on (it is a handful of array
    /// increments), independent of whether a telemetry recorder is
    /// attached.
    pub issue_stack: IssueStack,
    /// Per-warp CPI stacks (SM-local warp index). [`StallReason::NoWarp`]
    /// slots have no warp to blame, so they are charged to the SM stack
    /// only; for every other reason the per-warp stacks sum to the SM
    /// stack.
    pub warp_stacks: Vec<IssueStack>,
    /// Per-region CPI stacks keyed by region id, for hotspot tables. Like
    /// the warp stacks, `NoWarp` slots carry no region.
    pub region_stacks: BTreeMap<u32, IssueStack>,

    /// Optional telemetry recorder (off by default; see
    /// [`crate::Machine::attach_telemetry`]). When absent, every
    /// instrumentation site reduces to one `Option` check.
    pub recorder: Option<Box<regless_telemetry::MemoryRecorder>>,
    /// Register working set per window (Figure 2).
    pub working_set: WorkingSetTracker,
    /// Backing-store accesses per window (Figure 3): baseline RF accesses,
    /// RFH main-RF accesses, or RegLess L1 register traffic.
    pub backing_series: WindowSeries,
    /// Active OSU lines sampled once per window (occupancy over time).
    pub osu_occupancy: WindowSeries,
    /// Per-cause OSU eviction counts (capacity preemption, compressor
    /// spill, region drain, dead-value reclaim). Always on, like the CPI
    /// stack: a handful of array increments per eviction.
    pub eviction_stack: EvictionStack,
    /// CM-reserved (committed) OSU lines sampled once per window.
    pub osu_reserved_series: WindowSeries,
    /// Free (unallocated) OSU lines sampled once per window.
    pub osu_free_series: WindowSeries,
    /// CM admission-queue depth (stacked warps) sampled once per window.
    pub cm_queue_series: WindowSeries,
}

impl SmStats {
    /// Total preloads processed.
    pub fn preloads_total(&self) -> u64 {
        self.preloads_osu + self.preloads_compressor + self.preloads_l1 + self.preloads_l2_dram
    }

    /// Total L1 requests made on behalf of register traffic.
    pub fn reg_l1_requests(&self) -> u64 {
        self.preloads_l1 + self.preloads_l2_dram + self.reg_stores_l1 + self.reg_invalidate_l1
    }

    /// Whether a telemetry recorder is attached; callers doing non-trivial
    /// work to *construct* event data should check first.
    pub fn telemetry_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Record one structured event if telemetry is enabled.
    pub fn trace_event(&mut self, cycle: crate::config::Cycle, event: crate::trace::TraceEvent) {
        if let Some(r) = &mut self.recorder {
            crate::trace::emit(r, cycle, &event);
        }
    }

    /// Record a value into a named telemetry histogram if enabled.
    pub fn observe(&mut self, hist: &'static str, value: u64) {
        if let Some(r) = &mut self.recorder {
            regless_telemetry::Recorder::observe(r.as_mut(), hist, value);
        }
    }

    /// Append a point to a named telemetry time series if enabled.
    pub fn sample(&mut self, series: &'static str, ts: crate::config::Cycle, value: f64) {
        if let Some(r) = &mut self.recorder {
            regless_telemetry::Recorder::sample(r.as_mut(), series, ts, value);
        }
    }

    /// Charge one issue slot to `reason`, attributed to `warp` (SM-local
    /// index) and `region` when the slot has a culprit (everything except
    /// [`StallReason::NoWarp`]).
    pub fn charge_slot(&mut self, reason: StallReason, warp: Option<usize>, region: Option<u32>) {
        self.issue_stack.charge(reason);
        if let Some(w) = warp {
            if self.warp_stacks.len() <= w {
                self.warp_stacks.resize(w + 1, IssueStack::new());
            }
            self.warp_stacks[w].charge(reason);
        }
        if let Some(r) = region {
            self.region_stacks.entry(r).or_default().charge(reason);
        }
    }

    /// Charge `n` issue slots to `reason` in one shot — the bulk form of
    /// [`charge_slot`](Self::charge_slot) used by the event-driven fast
    /// path when it jumps over a span of provably idle cycles. The
    /// conservation law (`Σ reasons == cycles × issue slots`) is preserved
    /// because the caller charges exactly `span × slots` this way.
    pub fn charge_slot_many(
        &mut self,
        reason: StallReason,
        warp: Option<usize>,
        region: Option<u32>,
        n: u64,
    ) {
        if n == 0 {
            return;
        }
        self.issue_stack.charge_n(reason, n);
        if let Some(w) = warp {
            if self.warp_stacks.len() <= w {
                self.warp_stacks.resize(w + 1, IssueStack::new());
            }
            self.warp_stacks[w].charge_n(reason, n);
        }
        if let Some(r) = region {
            self.region_stacks.entry(r).or_default().charge_n(reason, n);
        }
    }

    /// Record a preload outcome.
    pub fn record_preload(&mut self, source: PreloadSource) {
        match source {
            PreloadSource::Osu => self.preloads_osu += 1,
            PreloadSource::Compressor => self.preloads_compressor += 1,
            PreloadSource::L1 => self.preloads_l1 += 1,
            PreloadSource::L2OrDram => self.preloads_l2_dram += 1,
        }
    }

    /// Merge another SM's counters into this one (for whole-GPU totals).
    pub fn merge(&mut self, other: &SmStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.insns += other.insns;
        self.meta_insns += other.meta_insns;
        self.idle_slots += other.idle_slots;
        self.rf_reads += other.rf_reads;
        self.rf_writes += other.rf_writes;
        self.lrf_reads += other.lrf_reads;
        self.lrf_writes += other.lrf_writes;
        self.rfc_reads += other.rfc_reads;
        self.rfc_writes += other.rfc_writes;
        self.rename_lookups += other.rename_lookups;
        self.rfv_throttled_warp_cycles += other.rfv_throttled_warp_cycles;
        self.spill_stores += other.spill_stores;
        self.spill_fills += other.spill_fills;
        self.spill_throttled_warp_cycles += other.spill_throttled_warp_cycles;
        self.comprf_throttled_warp_cycles += other.comprf_throttled_warp_cycles;
        self.rf_bank_conflicts += other.rf_bank_conflicts;
        self.osu_reads += other.osu_reads;
        self.osu_writes += other.osu_writes;
        self.osu_tag_probes += other.osu_tag_probes;
        self.osu_bank_conflicts += other.osu_bank_conflicts;
        self.preloads_osu += other.preloads_osu;
        self.preloads_compressor += other.preloads_compressor;
        self.preloads_l1 += other.preloads_l1;
        self.preloads_l2_dram += other.preloads_l2_dram;
        self.reg_stores_l1 += other.reg_stores_l1;
        self.reg_invalidate_l1 += other.reg_invalidate_l1;
        self.compressor_matches += other.compressor_matches;
        self.compressor_compressed += other.compressor_compressed;
        self.regions_activated += other.regions_activated;
        self.region_active_cycles += other.region_active_cycles;
        self.reservation_overflows += other.reservation_overflows;
        self.staging_mismatches += other.staging_mismatches;
        self.osu_lines_evicted += other.osu_lines_evicted;
        self.comp_constant += other.comp_constant;
        self.comp_stride1 += other.comp_stride1;
        self.comp_stride4 += other.comp_stride4;
        self.comp_half_stride1 += other.comp_half_stride1;
        self.comp_half_stride4 += other.comp_half_stride4;
        self.comp_incompressible += other.comp_incompressible;
        self.comp_bytes_in += other.comp_bytes_in;
        self.comp_bytes_out += other.comp_bytes_out;
        self.eviction_stack.merge(&other.eviction_stack);
        self.issue_stack.merge(&other.issue_stack);
        if self.warp_stacks.len() < other.warp_stacks.len() {
            self.warp_stacks
                .resize(other.warp_stacks.len(), IssueStack::new());
        }
        for (mine, theirs) in self.warp_stacks.iter_mut().zip(other.warp_stacks.iter()) {
            mine.merge(theirs);
        }
        for (&region, stack) in &other.region_stacks {
            self.region_stacks.entry(region).or_default().merge(stack);
        }
    }
}

// JSON conversions for the sweep-engine result cache (`results/cache/`).
// The trackers persist only their completed-window samples: the partially
// filled current window is discarded by the mean/sample accessors anyway,
// so a cached report reproduces every derived statistic exactly.

impl regless_json::ToJson for WorkingSetTracker {
    fn to_json(&self) -> regless_json::Json {
        regless_json::Json::Obj(vec![
            (
                "window_start".into(),
                regless_json::ToJson::to_json(&self.window_start),
            ),
            (
                "samples".into(),
                regless_json::ToJson::to_json(&self.samples),
            ),
        ])
    }
}

impl regless_json::FromJson for WorkingSetTracker {
    fn from_json(v: &regless_json::Json) -> Result<Self, regless_json::JsonError> {
        Ok(WorkingSetTracker {
            current: HashSet::new(),
            window_start: regless_json::FromJson::from_json(v.field("window_start")?)?,
            samples: regless_json::FromJson::from_json(v.field("samples")?)?,
        })
    }
}

impl regless_json::ToJson for WindowSeries {
    fn to_json(&self) -> regless_json::Json {
        regless_json::Json::Obj(vec![
            (
                "window_start".into(),
                regless_json::ToJson::to_json(&self.window_start),
            ),
            (
                "samples".into(),
                regless_json::ToJson::to_json(&self.samples),
            ),
        ])
    }
}

impl regless_json::FromJson for WindowSeries {
    fn from_json(v: &regless_json::Json) -> Result<Self, regless_json::JsonError> {
        Ok(WindowSeries {
            current: 0,
            window_start: regless_json::FromJson::from_json(v.field("window_start")?)?,
            samples: regless_json::FromJson::from_json(v.field("samples")?)?,
        })
    }
}

/// Applies a macro to every plain counter field of [`SmStats`] (everything
/// except the trace handle and the window trackers, which have their own
/// serializers). Keep in sync with the struct definition.
macro_rules! for_each_sm_counter {
    ($m:ident) => {
        $m!(
            cycles,
            insns,
            meta_insns,
            idle_slots,
            rf_reads,
            rf_writes,
            lrf_reads,
            lrf_writes,
            rfc_reads,
            rfc_writes,
            rename_lookups,
            rfv_throttled_warp_cycles,
            spill_stores,
            spill_fills,
            spill_throttled_warp_cycles,
            comprf_throttled_warp_cycles,
            rf_bank_conflicts,
            osu_reads,
            osu_writes,
            osu_tag_probes,
            osu_bank_conflicts,
            preloads_osu,
            preloads_compressor,
            preloads_l1,
            preloads_l2_dram,
            reg_stores_l1,
            reg_invalidate_l1,
            compressor_matches,
            compressor_compressed,
            regions_activated,
            region_active_cycles,
            reservation_overflows,
            staging_mismatches,
            osu_lines_evicted,
            comp_constant,
            comp_stride1,
            comp_stride4,
            comp_half_stride1,
            comp_half_stride4,
            comp_incompressible,
            comp_bytes_in,
            comp_bytes_out
        )
    };
}

impl regless_json::ToJson for SmStats {
    fn to_json(&self) -> regless_json::Json {
        let mut pairs: Vec<(String, regless_json::Json)> = Vec::new();
        macro_rules! put {
            ($($f:ident),+) => {
                $(pairs.push((stringify!($f).to_string(), regless_json::ToJson::to_json(&self.$f)));)+
            };
        }
        for_each_sm_counter!(put);
        // The optional telemetry recorder is a debugging aid, not a
        // result; it is never persisted.
        pairs.push((
            "issue_stack".into(),
            regless_json::ToJson::to_json(&self.issue_stack),
        ));
        pairs.push((
            "warp_stacks".into(),
            regless_json::ToJson::to_json(&self.warp_stacks),
        ));
        // The region map serializes as sorted `[region, stack]` pairs so
        // the cached layout is deterministic.
        pairs.push((
            "region_stacks".into(),
            regless_json::Json::Arr(
                self.region_stacks
                    .iter()
                    .map(|(&region, stack)| {
                        regless_json::Json::Arr(vec![
                            regless_json::ToJson::to_json(&region),
                            regless_json::ToJson::to_json(stack),
                        ])
                    })
                    .collect(),
            ),
        ));
        pairs.push((
            "working_set".into(),
            regless_json::ToJson::to_json(&self.working_set),
        ));
        pairs.push((
            "backing_series".into(),
            regless_json::ToJson::to_json(&self.backing_series),
        ));
        pairs.push((
            "osu_occupancy".into(),
            regless_json::ToJson::to_json(&self.osu_occupancy),
        ));
        pairs.push((
            "eviction_stack".into(),
            regless_json::ToJson::to_json(&self.eviction_stack),
        ));
        pairs.push((
            "osu_reserved_series".into(),
            regless_json::ToJson::to_json(&self.osu_reserved_series),
        ));
        pairs.push((
            "osu_free_series".into(),
            regless_json::ToJson::to_json(&self.osu_free_series),
        ));
        pairs.push((
            "cm_queue_series".into(),
            regless_json::ToJson::to_json(&self.cm_queue_series),
        ));
        regless_json::Json::Obj(pairs)
    }
}

impl regless_json::FromJson for SmStats {
    fn from_json(v: &regless_json::Json) -> Result<Self, regless_json::JsonError> {
        let mut stats = SmStats::default();
        macro_rules! get {
            ($($f:ident),+) => {
                $(stats.$f = regless_json::FromJson::from_json(v.field(stringify!($f))?)?;)+
            };
        }
        for_each_sm_counter!(get);
        stats.issue_stack = regless_json::FromJson::from_json(v.field("issue_stack")?)?;
        stats.warp_stacks = regless_json::FromJson::from_json(v.field("warp_stacks")?)?;
        match v.field("region_stacks")? {
            regless_json::Json::Arr(pairs) => {
                for pair in pairs {
                    let regless_json::Json::Arr(kv) = pair else {
                        return Err(regless_json::JsonError::new(
                            "region_stacks entries must be [region, stack] pairs",
                        ));
                    };
                    if kv.len() != 2 {
                        return Err(regless_json::JsonError::new(
                            "region_stacks entries must be [region, stack] pairs",
                        ));
                    }
                    let region: u32 = regless_json::FromJson::from_json(&kv[0])?;
                    let stack: IssueStack = regless_json::FromJson::from_json(&kv[1])?;
                    stats.region_stacks.insert(region, stack);
                }
            }
            other => {
                return Err(regless_json::JsonError::new(format!(
                    "region_stacks must be an array, got {}",
                    other.kind()
                )))
            }
        }
        stats.working_set = regless_json::FromJson::from_json(v.field("working_set")?)?;
        stats.backing_series = regless_json::FromJson::from_json(v.field("backing_series")?)?;
        stats.osu_occupancy = regless_json::FromJson::from_json(v.field("osu_occupancy")?)?;
        stats.eviction_stack = regless_json::FromJson::from_json(v.field("eviction_stack")?)?;
        stats.osu_reserved_series =
            regless_json::FromJson::from_json(v.field("osu_reserved_series")?)?;
        stats.osu_free_series = regless_json::FromJson::from_json(v.field("osu_free_series")?)?;
        stats.cm_queue_series = regless_json::FromJson::from_json(v.field("cm_queue_series")?)?;
        Ok(stats)
    }
}

/// Memory-hierarchy counters (shared across SMs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemStats {
    /// L1 accesses for ordinary data.
    pub l1_data_accesses: u64,
    /// L1 accesses for register traffic (RegLess).
    pub l1_reg_accesses: u64,
    /// L1 hits (all kinds).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// L2 accesses caused by register traffic only.
    pub l2_reg_accesses: u64,
}

regless_json::impl_json_struct!(MemStats {
    l1_data_accesses,
    l1_reg_accesses,
    l1_hits,
    l1_misses,
    l2_accesses,
    l2_hits,
    dram_accesses,
    l2_reg_accesses,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_windows() {
        let mut t = WorkingSetTracker::new();
        t.record(WarpId(0), Reg(0), 10);
        t.record(WarpId(0), Reg(0), 20); // duplicate in window
        t.record(WarpId(1), Reg(0), 30);
        t.roll(250); // complete two windows
        assert_eq!(t.samples(), &[2, 0]);
        // 2 regs in one window, 0 in the next: mean = 1 reg = 0.125 KB
        assert!((t.mean_kb() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn window_series_accumulates() {
        let mut s = WindowSeries::new();
        s.record(0, 5);
        s.record(99, 3);
        s.record(100, 7);
        s.roll(300);
        assert_eq!(s.samples(), &[8, 7, 0]);
        assert!((s.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn preload_sources_counted() {
        let mut s = SmStats::default();
        s.record_preload(PreloadSource::Osu);
        s.record_preload(PreloadSource::Osu);
        s.record_preload(PreloadSource::L1);
        assert_eq!(s.preloads_total(), 3);
        assert_eq!(s.preloads_osu, 2);
        assert_eq!(s.reg_l1_requests(), 1);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = SmStats {
            cycles: 10,
            insns: 5,
            ..Default::default()
        };
        let b = SmStats {
            cycles: 20,
            insns: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 20);
        assert_eq!(a.insns, 12);
    }
}
