//! A pure functional interpreter: the timing-free reference semantics.
//!
//! [`interpret`] executes one warp's view of a kernel — SIMT divergence,
//! ALU semantics, and the deterministic memory contents of
//! [`crate::load_value`] — with no pipeline, scheduler, or operand storage
//! at all. Because every timing model in this workspace must leave
//! architectural state untouched, the interpreter serves as the oracle the
//! cycle-level simulators are checked against.

use crate::sm::load_value;
use crate::warp::WarpState;
use regless_compiler::DomInfo;
use regless_isa::{Kernel, LaneVec, Opcode};

/// Result of interpreting one warp.
#[derive(Clone, Debug)]
pub struct InterpResult {
    /// Final architectural register values.
    pub regs: Vec<LaneVec>,
    /// Dynamic instructions executed.
    pub insns: u64,
    /// Global stores performed, in order: `(address, value)` per active
    /// lane.
    pub stores: Vec<(u32, u32)>,
}

/// Errors from [`interpret`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InterpError {
    /// The warp exceeded the instruction budget — a non-terminating kernel.
    Runaway {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Runaway { budget } => {
                write!(f, "kernel did not terminate within {budget} instructions")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Execute `kernel` functionally for the warp with global index
/// `warp_index`, with an instruction `budget` guarding non-termination.
///
/// # Errors
///
/// Returns [`InterpError::Runaway`] if the budget is exhausted.
pub fn interpret(
    kernel: &Kernel,
    warp_index: usize,
    budget: u64,
) -> Result<InterpResult, InterpError> {
    let dom = DomInfo::compute(kernel);
    let mut warp = WarpState::new(kernel);
    let mut insns = 0u64;
    let mut stores = Vec::new();
    while !warp.finished() {
        if insns >= budget {
            return Err(InterpError::Runaway { budget });
        }
        let pc = warp.pc().expect("unfinished warp has a pc");
        let insn = kernel.insn(pc).clone();
        let mask = warp.mask();
        let src_vals: Vec<LaneVec> = insn.srcs().iter().map(|s| warp.regs[s.index()]).collect();
        let taken_bits = if matches!(insn.op(), Opcode::Bra { .. }) {
            src_vals[0].nonzero_bits()
        } else {
            0
        };
        // Memory + ALU semantics, matching the pipeline's issue path.
        let value = match insn.op() {
            Opcode::LdGlobal => {
                let mut v = LaneVec::zero();
                for l in mask.iter() {
                    v.set_lane(l, load_value(src_vals[0].lane(l)));
                }
                Some(v)
            }
            Opcode::LdShared => {
                let mut v = LaneVec::zero();
                for l in mask.iter() {
                    v.set_lane(l, load_value(src_vals[0].lane(l) ^ 0x5f5f_5f5f));
                }
                Some(v)
            }
            Opcode::StGlobal => {
                for l in mask.iter() {
                    stores.push((src_vals[1].lane(l), src_vals[0].lane(l)));
                }
                None
            }
            _ => insn.evaluate(&src_vals, warp_index),
        };
        if let Some(d) = insn.dst() {
            let v = value.expect("destination implies a value");
            let mut merged = warp.regs[d.index()];
            for l in mask.iter() {
                merged.set_lane(l, v.lane(l));
            }
            warp.regs[d.index()] = merged;
        }
        warp.advance(kernel, taken_bits, |b| dom.immediate_postdominator(b));
        insns += 1;
    }
    Ok(InterpResult {
        regs: warp.regs,
        insns,
        stores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_isa::KernelBuilder;

    #[test]
    fn straight_line_values() {
        let mut b = KernelBuilder::new("s");
        let x = b.movi(6);
        let y = b.movi(7);
        let z = b.imul(x, y);
        b.st_global(z, x);
        b.exit();
        let k = b.finish().unwrap();
        let r = interpret(&k, 0, 100).unwrap();
        assert_eq!(r.insns, 5);
        assert_eq!(r.regs[z.index()], LaneVec::splat(42));
        assert_eq!(r.stores.len(), 32);
        assert!(r.stores.iter().all(|&(a, v)| a == 6 && v == 42));
    }

    #[test]
    fn warp_index_affects_thread_ids() {
        let mut b = KernelBuilder::new("tid");
        let t = b.thread_idx();
        b.st_global(t, t);
        b.exit();
        let k = b.finish().unwrap();
        let w0 = interpret(&k, 0, 100).unwrap();
        let w3 = interpret(&k, 3, 100).unwrap();
        assert_eq!(w0.regs[t.index()].lane(0), 0);
        assert_eq!(w3.regs[t.index()].lane(0), 96);
    }

    #[test]
    fn divergent_stores_use_partial_masks() {
        let mut bld = KernelBuilder::new("div");
        let t = bld.new_block();
        let j = bld.new_block();
        let lane = bld.lane_idx();
        let four = bld.movi(4);
        let c = bld.setlt(lane, four);
        bld.bra(c, t, j);
        bld.select(t);
        bld.st_global(lane, lane);
        bld.jmp(j);
        bld.select(j);
        bld.exit();
        let k = bld.finish().unwrap();
        let r = interpret(&k, 0, 100).unwrap();
        assert_eq!(r.stores.len(), 4, "only 4 lanes took the branch");
    }

    #[test]
    fn runaway_detected() {
        // An infinite loop: the branch condition is always true, so the
        // exit block (required for validity) is never reached.
        let mut b = KernelBuilder::new("inf");
        let body = b.new_block();
        let done = b.new_block();
        b.jmp(body);
        b.select(body);
        let one = b.movi(1);
        b.bra(one, body, done);
        b.select(done);
        b.exit();
        let k = b.finish().unwrap();
        let e = interpret(&k, 0, 1000).unwrap_err();
        assert_eq!(e, InterpError::Runaway { budget: 1000 });
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn budget_boundary_is_exact() {
        // A terminating kernel of exactly 5 dynamic instructions: a budget
        // of 5 must succeed, and a budget of 4 must report Runaway with the
        // budget that was actually exhausted — off-by-one either way would
        // make the serving deadline semantics (and the oracle's runaway
        // classification) inconsistent across budgets.
        let mut b = KernelBuilder::new("edge");
        let x = b.movi(6);
        let y = b.movi(7);
        let z = b.imul(x, y);
        b.st_global(z, x);
        b.exit();
        let k = b.finish().unwrap();

        let exact = interpret(&k, 0, 5).unwrap();
        assert_eq!(exact.insns, 5);
        assert_eq!(exact.regs[z.index()], LaneVec::splat(42));

        let short = interpret(&k, 0, 4).unwrap_err();
        assert_eq!(short, InterpError::Runaway { budget: 4 });
    }
}
