//! The memory hierarchy: per-SM L1s, a shared L2, and DRAM.
//!
//! Timing is compositional: every structure has a port that accepts a
//! bounded number of requests per cycle, tracked with next-free-cycle
//! counters; a request's completion time is the sum of queueing delays and
//! hit latencies along its path. The L1 accepts **one request per cycle per
//! SM** — the scarce resource that shapes the whole RegLess design (§2.2).

use crate::cache::Cache;
use crate::config::{CacheConfig, Cycle, GpuConfig};
use crate::stats::MemStats;

/// Which traffic class an access belongs to (for statistics and the
/// bypass policy).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Traffic {
    /// Ordinary global loads/stores from kernel code.
    Data,
    /// RegLess register preloads/evictions/invalidations.
    Register,
}

/// Outcome of a global-memory request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemAccess {
    /// Cycle at which the data is available (loads) or accepted (stores).
    pub done: Cycle,
    /// Deepest level that serviced the request.
    pub serviced_by: Level,
}

/// Memory level that ultimately serviced a request.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Hit in the SM's L1.
    L1,
    /// Hit in the shared L2.
    L2,
    /// Went to DRAM.
    Dram,
}

/// A multi-port bandwidth regulator: at most `ports` requests may start per
/// cycle; excess requests queue.
#[derive(Clone, Debug)]
struct PortSet {
    ports: Vec<Cycle>,
}

impl PortSet {
    fn new(n: usize) -> Self {
        PortSet { ports: vec![0; n] }
    }

    /// Reserve the earliest slot at or after `now`; returns the start cycle.
    fn reserve(&mut self, now: Cycle) -> Cycle {
        let slot = self
            .ports
            .iter_mut()
            .min_by_key(|c| **c)
            .expect("at least one port");
        let start = now.max(*slot);
        *slot = start + 1;
        start
    }
}

/// Simple MSHR model: at most `n` outstanding misses; a full file delays
/// the next miss until the earliest outstanding one retires.
#[derive(Clone, Debug)]
struct MshrFile {
    completions: Vec<Cycle>,
    capacity: usize,
}

impl MshrFile {
    fn new(capacity: usize) -> Self {
        MshrFile {
            completions: Vec::new(),
            capacity,
        }
    }

    /// Returns the earliest cycle a new miss may start, given `now`.
    fn admit(&mut self, now: Cycle) -> Cycle {
        self.completions.retain(|&c| c > now);
        if self.completions.len() < self.capacity {
            now
        } else {
            let earliest = self.completions.iter().copied().min().unwrap_or(now);
            self.completions.retain(|&c| c > earliest);
            earliest
        }
    }

    fn record(&mut self, completion: Cycle) {
        self.completions.push(completion);
    }

    /// Whether the file is full at `now` (read-only: stale completions are
    /// filtered, not retired, so attribution queries never perturb state).
    fn is_full(&self, now: Cycle) -> bool {
        self.completions.iter().filter(|&&c| c > now).count() >= self.capacity
    }

    /// First cycle at which the file is no longer full, assuming no new
    /// misses are admitted: `is_full(t)` holds exactly for `t <
    /// full_until()`. With fewer outstanding misses than capacity this is 0
    /// (never full); otherwise it is the capacity-th largest completion.
    fn full_until(&self) -> Cycle {
        let mut live: Vec<Cycle> = self.completions.clone();
        if live.len() < self.capacity {
            return 0;
        }
        live.sort_unstable_by(|a, b| b.cmp(a));
        live[self.capacity - 1]
    }
}

/// The shared memory system.
#[derive(Clone, Debug)]
pub struct MemSystem {
    config: GpuConfig,
    l1: Vec<Cache>,
    l1_port: Vec<PortSet>,
    /// Per-SM interconnect injection port: bypassed data accesses and L1
    /// misses travel to the L2 through this, not through the L1 array port.
    inject_port: Vec<PortSet>,
    l1_mshrs: Vec<MshrFile>,
    /// Address-interleaved L2 partitions, each with its own tag array.
    l2: Vec<Cache>,
    l2_port: PortSet,
    dram_port: PortSet,
    /// Aggregate counters.
    pub stats: MemStats,
}

impl MemSystem {
    /// Build the hierarchy for `config`.
    pub fn new(config: &GpuConfig) -> Self {
        config.validate();
        MemSystem {
            config: *config,
            l1: (0..config.num_sms)
                .map(|_| Cache::new(&config.l1))
                .collect(),
            l1_port: (0..config.num_sms).map(|_| PortSet::new(1)).collect(),
            inject_port: (0..config.num_sms).map(|_| PortSet::new(1)).collect(),
            l1_mshrs: (0..config.num_sms)
                .map(|_| MshrFile::new(config.l1_mshrs))
                .collect(),
            l2: {
                let part = CacheConfig {
                    bytes: config.l2.bytes / config.l2_partitions,
                    ..config.l2
                };
                (0..config.l2_partitions)
                    .map(|_| Cache::new(&part))
                    .collect()
            },
            l2_port: PortSet::new(config.l2_ports),
            dram_port: PortSet::new(config.dram_ports),
            stats: MemStats::default(),
        }
    }

    /// The cycle at which SM `sm`'s L1 port could accept a request issued
    /// now (used by the RegLess preload pipeline to prioritize).
    pub fn l1_port_backlog(&self, sm: usize, now: Cycle) -> Cycle {
        self.l1_port[sm]
            .ports
            .iter()
            .copied()
            .min()
            .unwrap_or(0)
            .saturating_sub(now)
    }

    /// Whether SM `sm`'s L1 MSHR file is full at `now` — a new miss would
    /// stall until an outstanding one retires. Used by the issue-slot
    /// attribution to refine staging stalls into
    /// [`regless_telemetry::StallReason::MshrFull`].
    pub fn l1_mshrs_full(&self, sm: usize, now: Cycle) -> bool {
        self.l1_mshrs[sm].is_full(now)
    }

    /// First cycle at which SM `sm`'s MSHR file stops being full, assuming
    /// no further misses: `l1_mshrs_full(sm, t)` ⟺ `t <
    /// l1_mshr_full_until(sm)`. The event-driven fast path uses this to
    /// bulk-charge a skipped span segment-by-segment with exactly the
    /// attribution the per-cycle path would have produced.
    pub fn l1_mshr_full_until(&self, sm: usize) -> Cycle {
        self.l1_mshrs[sm].full_until()
    }

    /// First cycle at which SM `sm`'s L1 port has a free slot, assuming no
    /// further reservations: `l1_port_backlog(sm, t) > 0` ⟺ `t <
    /// l1_port_free_cycle(sm)`.
    pub fn l1_port_free_cycle(&self, sm: usize) -> Cycle {
        self.l1_port[sm].ports.iter().copied().min().unwrap_or(0)
    }

    /// Access one 128-byte line of global memory from SM `sm`.
    ///
    /// `traffic` selects the policy: data accesses bypass the L1 when the
    /// configuration says so (Table 1); register accesses always use the L1
    /// with write-back, no-fetch-on-write semantics.
    pub fn access_line(
        &mut self,
        sm: usize,
        line_addr: u64,
        write: bool,
        traffic: Traffic,
        now: Cycle,
    ) -> MemAccess {
        let use_l1 = match traffic {
            Traffic::Register => true,
            Traffic::Data => !self.config.l1_bypass_data,
        };
        if !use_l1 {
            // Bypassed data skips the L1 array: it competes for the SM's
            // interconnect injection port instead (Table 1's one-request-
            // per-cycle L1 bandwidth constrains the cache, which RegLess
            // register traffic uses).
            let start = self.inject_port[sm].reserve(now);
            self.stats.l1_data_accesses += 1;
            return self.access_l2(sm, line_addr, write, traffic, start);
        }
        let start = self.l1_port[sm].reserve(now);
        match traffic {
            Traffic::Data => self.stats.l1_data_accesses += 1,
            Traffic::Register => self.stats.l1_reg_accesses += 1,
        }
        let l1_done = start + self.config.l1.hit_latency;
        let result = if write && traffic == Traffic::Register {
            // Whole-line register store: allocate without fetching.
            let r = self.l1[sm].access(line_addr, true);
            if let Some(victim) = r.evicted_addr {
                // Write the displaced dirty register line back to L2.
                self.access_l2(sm, victim, true, traffic, l1_done);
            }
            self.stats.l1_hits += 1;
            return MemAccess {
                done: l1_done,
                serviced_by: Level::L1,
            };
        } else {
            self.l1[sm].access(line_addr, write)
        };
        if result.hit {
            self.stats.l1_hits += 1;
            return MemAccess {
                done: l1_done,
                serviced_by: Level::L1,
            };
        }
        self.stats.l1_misses += 1;
        if let Some(victim) = result.evicted_addr {
            self.access_l2(sm, victim, true, traffic, l1_done);
        }
        let admit = self.l1_mshrs[sm].admit(start);
        let inject = self.inject_port[sm].reserve(admit + self.config.l1.hit_latency);
        let deeper = self.access_l2(sm, line_addr, write, traffic, inject);
        self.l1_mshrs[sm].record(deeper.done);
        deeper
    }

    fn access_l2(
        &mut self,
        _sm: usize,
        line_addr: u64,
        write: bool,
        traffic: Traffic,
        now: Cycle,
    ) -> MemAccess {
        self.stats.l2_accesses += 1;
        if traffic == Traffic::Register {
            self.stats.l2_reg_accesses += 1;
        }
        let start = self.l2_port.reserve(now);
        // Partition by line address (interleaved across partitions).
        let part = (line_addr / self.config.l2.line_bytes as u64) as usize % self.l2.len();
        let hit = self.l2[part].access(line_addr, write).hit;
        let l2_done = start + self.config.l2.hit_latency;
        if hit {
            self.stats.l2_hits += 1;
            return MemAccess {
                done: l2_done,
                serviced_by: Level::L2,
            };
        }
        self.stats.dram_accesses += 1;
        let dram_start = self.dram_port.reserve(l2_done);
        MemAccess {
            done: dram_start + self.config.dram_latency,
            serviced_by: Level::Dram,
        }
    }

    /// Invalidate a register line in SM `sm`'s L1 (a cache-invalidate
    /// annotation). Consumes the L1 port for one cycle.
    pub fn invalidate_l1_line(&mut self, sm: usize, line_addr: u64, now: Cycle) -> Cycle {
        let start = self.l1_port[sm].reserve(now);
        self.stats.l1_reg_accesses += 1;
        self.l1[sm].invalidate(line_addr);
        start + 1
    }

    /// Drop a register line from SM `sm`'s L1 without consuming the port:
    /// used by *invalidating reads*, where the preload access itself
    /// carries the invalidation (paper §4.3).
    pub fn l1_drop_line(&mut self, sm: usize, line_addr: u64) {
        self.l1[sm].invalidate(line_addr);
    }

    /// Whether a line is present in SM `sm`'s L1 (no state change).
    pub fn l1_probe(&self, sm: usize, line_addr: u64) -> bool {
        self.l1[sm].probe(line_addr)
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemSystem {
        MemSystem::new(&GpuConfig::test_small())
    }

    #[test]
    fn data_bypasses_l1() {
        let mut m = mem();
        let a = m.access_line(0, 0, false, Traffic::Data, 0);
        assert!(a.serviced_by >= Level::L2, "data must bypass L1");
        assert_eq!(m.stats.l1_hits, 0);
        // Second access hits in L2.
        let b = m.access_line(0, 0, false, Traffic::Data, a.done);
        assert_eq!(b.serviced_by, Level::L2);
    }

    #[test]
    fn register_reads_use_l1() {
        let mut m = mem();
        // Install via a register store (write-allocate).
        let w = m.access_line(0, 4096, true, Traffic::Register, 0);
        assert_eq!(w.serviced_by, Level::L1);
        let r = m.access_line(0, 4096, false, Traffic::Register, w.done);
        assert_eq!(r.serviced_by, Level::L1);
        assert!(m.stats.l1_reg_accesses >= 2);
    }

    #[test]
    fn l1_port_serializes_requests() {
        let mut m = mem();
        let a = m.access_line(0, 0, true, Traffic::Register, 0);
        let b = m.access_line(0, 128, true, Traffic::Register, 0);
        // Both requested at cycle 0 but the port takes one per cycle.
        assert_ne!(a.done, b.done);
        assert_eq!(b.done, a.done + 1);
    }

    #[test]
    fn register_miss_goes_deeper() {
        let mut m = mem();
        let r = m.access_line(0, 1 << 20, false, Traffic::Register, 0);
        assert!(r.serviced_by >= Level::L2);
        assert!(r.done > GpuConfig::test_small().l1.hit_latency);
        assert_eq!(m.stats.l1_misses, 1);
    }

    #[test]
    fn invalidate_consumes_port_and_drops_line() {
        let mut m = mem();
        m.access_line(0, 256, true, Traffic::Register, 0);
        assert!(m.l1_probe(0, 256));
        let done = m.invalidate_l1_line(0, 256, 5);
        assert!(done > 5);
        assert!(!m.l1_probe(0, 256));
    }

    #[test]
    fn mshrs_throttle_misses() {
        // With a 2-MSHR config, a burst of register-line misses must
        // serialize beyond the first two.
        let config = GpuConfig {
            l1_mshrs: 2,
            ..GpuConfig::test_small()
        };
        let mut m = MemSystem::new(&config);
        let mut dones = Vec::new();
        for i in 0..6u64 {
            // distinct lines, all misses
            let a = m.access_line(0, (1 << 30) + i * 128, false, Traffic::Register, 0);
            dones.push(a.done);
        }
        // The completion times must strictly spread out (no 6-wide burst).
        let first_two_max = dones[..2].iter().max().copied().unwrap();
        assert!(
            dones[4] > first_two_max,
            "later misses must wait for MSHRs: {dones:?}"
        );
    }

    #[test]
    fn l2_ports_shared_across_sms() {
        let config = GpuConfig {
            num_sms: 2,
            ..GpuConfig::test_small()
        };
        let mut m = MemSystem::new(&config);
        // Both SMs issue a data access at cycle 0: they contend for the
        // shared L2 ports but not for each other's injection port.
        let a = m.access_line(0, 0, false, Traffic::Data, 0);
        let b = m.access_line(1, 128 << 12, false, Traffic::Data, 0);
        assert!(a.done > 0 && b.done > 0);
        assert_eq!(m.stats.l2_accesses, 2);
    }

    #[test]
    fn dram_latency_applies() {
        let mut m = mem();
        let cfg = *m.config();
        let r = m.access_line(0, 7 << 22, false, Traffic::Data, 0);
        assert_eq!(r.serviced_by, Level::Dram);
        assert!(r.done >= cfg.l2.hit_latency + cfg.dram_latency);
    }
}
