//! Machine configuration (the paper's Table 1).

/// Cycle timestamp type used throughout the simulator.
pub type Cycle = u64;

/// Parameters of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access (hit) latency in cycles.
    pub hit_latency: Cycle,
}

impl CacheConfig {
    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.bytes / (self.assoc * self.line_bytes)
    }
}

/// Warp-scheduler selection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SchedulerKind {
    /// Greedy-then-oldest, the baseline policy (and the one RegLess keeps).
    Gto,
    /// Loose round-robin: rotate through ready warps, one issue each.
    Lrr,
    /// Two-level scheduling: only a small active set of warps may issue;
    /// warps are demoted on long-latency events. Used by the RFH and RFV
    /// comparison points.
    TwoLevel {
        /// Active warps per scheduler.
        active_per_scheduler: usize,
    },
}

/// Per-opcode-class issue-to-writeback latencies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyConfig {
    /// Integer ALU dependent latency.
    pub int_alu: Cycle,
    /// Floating-point pipeline latency.
    pub fp_alu: Cycle,
    /// Special-function-unit latency.
    pub sfu: Cycle,
    /// Shared-memory access latency.
    pub shared_mem: Cycle,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            int_alu: 6,
            fp_alu: 6,
            sfu: 16,
            shared_mem: 24,
        }
    }
}

/// Full GPU configuration.
///
/// [`GpuConfig::gtx980`] reproduces the paper's Table 1; smaller
/// configurations are provided for tests and quick experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Hardware warps per SM.
    pub warps_per_sm: usize,
    /// Warps per thread block: the scope of a barrier (256-thread blocks
    /// on the GTX 980 → 8 warps).
    pub warps_per_block: usize,
    /// Warp schedulers per SM (each RegLess shard serves one).
    pub schedulers_per_sm: usize,
    /// Instructions each scheduler may issue per cycle (the GTX 980's
    /// schedulers dual-issue; the calibrated evaluation uses 1 and treats
    /// the four schedulers as the throughput model).
    pub issue_slots_per_scheduler: usize,
    /// Baseline register file bytes per SM (256 KB on the GTX 980).
    pub rf_bytes_per_sm: usize,
    /// Warp scheduler policy.
    pub scheduler: SchedulerKind,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Whether ordinary global data accesses bypass the L1 (Table 1:
    /// "data accesses bypassed"); register traffic always uses the L1.
    pub l1_bypass_data: bool,
    /// L1 MSHR count per SM.
    pub l1_mshrs: usize,
    /// Shared L2 cache (split into [`GpuConfig::l2_partitions`] address-
    /// interleaved partitions).
    pub l2: CacheConfig,
    /// Number of L2 partitions (Table 1: 4 memory partitions).
    pub l2_partitions: usize,
    /// L2 requests accepted per cycle across the GPU (≈ 224 GB/s at 1 GHz
    /// with 128-byte lines).
    pub l2_ports: usize,
    /// DRAM access latency beyond the L2.
    pub dram_latency: Cycle,
    /// DRAM requests accepted per cycle.
    pub dram_ports: usize,
    /// Functional-unit latencies.
    pub latency: LatencyConfig,
    /// Safety limit: simulation aborts after this many cycles.
    pub max_cycles: Cycle,
}

impl GpuConfig {
    /// The paper's simulated machine (Table 1): 16 SMs of 64 warps with 4
    /// GTO schedulers, 48 KB L1 (one request per cycle, data bypassed),
    /// 2 MB L2 across 4 partitions.
    pub fn gtx980() -> Self {
        GpuConfig {
            num_sms: 16,
            warps_per_sm: 64,
            warps_per_block: 8,
            schedulers_per_sm: 4,
            issue_slots_per_scheduler: 1,
            rf_bytes_per_sm: 256 * 1024,
            scheduler: SchedulerKind::Gto,
            l1: CacheConfig {
                bytes: 48 * 1024,
                assoc: 6,
                line_bytes: 128,
                hit_latency: 28,
            },
            l1_bypass_data: true,
            l1_mshrs: 32,
            l2: CacheConfig {
                bytes: 2 * 1024 * 1024,
                assoc: 16,
                line_bytes: 128,
                hit_latency: 130,
            },
            l2_partitions: 4,
            l2_ports: 2,
            dram_latency: 320,
            dram_ports: 1,
            latency: LatencyConfig::default(),
            max_cycles: 50_000_000,
        }
    }

    /// A single-SM configuration with the paper's per-SM parameters:
    /// experiments in this reproduction run per-SM-homogeneous workloads,
    /// for which one SM gives the same normalized results at a fraction of
    /// the wall-clock cost. The L2/DRAM ports are scaled down with the SM
    /// count so per-SM bandwidth pressure matches the full machine.
    pub fn gtx980_single_sm() -> Self {
        GpuConfig {
            num_sms: 1,
            ..Self::gtx980()
        }
    }

    /// Tiny configuration for unit tests: one SM, 8 warps, 2 schedulers.
    pub fn test_small() -> Self {
        GpuConfig {
            num_sms: 1,
            warps_per_sm: 8,
            warps_per_block: 4,
            schedulers_per_sm: 2,
            max_cycles: 2_000_000,
            ..Self::gtx980()
        }
    }

    /// Warps supervised by each scheduler.
    pub fn warps_per_scheduler(&self) -> usize {
        self.warps_per_sm / self.schedulers_per_sm
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if warps are not divisible among schedulers or cache shapes
    /// are degenerate — configuration bugs, not data errors.
    pub fn validate(&self) {
        assert!(self.num_sms > 0 && self.warps_per_sm > 0 && self.schedulers_per_sm > 0);
        assert!(
            self.warps_per_block > 0 && self.warps_per_sm.is_multiple_of(self.warps_per_block),
            "thread blocks must tile the SM's warps"
        );
        assert_eq!(
            self.warps_per_sm % self.schedulers_per_sm,
            0,
            "warps must divide evenly among schedulers"
        );
        assert!(self.l1.num_sets() > 0, "L1 too small for its associativity");
        assert!(self.l2.num_sets() > 0, "L2 too small for its associativity");
        assert!(self.l2_ports > 0 && self.dram_ports > 0);
        assert!(
            self.l2_partitions > 0 && self.l2.bytes.is_multiple_of(self.l2_partitions),
            "L2 must split evenly into partitions"
        );
        assert!(self.issue_slots_per_scheduler > 0, "schedulers must issue");
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::gtx980()
    }
}

regless_json::impl_json_struct!(CacheConfig {
    bytes,
    assoc,
    line_bytes,
    hit_latency
});
regless_json::impl_json_struct!(LatencyConfig {
    int_alu,
    fp_alu,
    sfu,
    shared_mem
});
regless_json::impl_json_struct!(GpuConfig {
    num_sms,
    warps_per_sm,
    warps_per_block,
    schedulers_per_sm,
    issue_slots_per_scheduler,
    rf_bytes_per_sm,
    scheduler,
    l1,
    l1_bypass_data,
    l1_mshrs,
    l2,
    l2_partitions,
    l2_ports,
    dram_latency,
    dram_ports,
    latency,
    max_cycles,
});

// SchedulerKind mixes unit and struct variants, so its JSON layout is
// written out by hand (mirroring serde's externally-tagged default:
// `"Gto"` / `{"TwoLevel":{"active_per_scheduler":4}}`).
impl regless_json::ToJson for SchedulerKind {
    fn to_json(&self) -> regless_json::Json {
        use regless_json::Json;
        match *self {
            SchedulerKind::Gto => Json::Str("Gto".into()),
            SchedulerKind::Lrr => Json::Str("Lrr".into()),
            SchedulerKind::TwoLevel {
                active_per_scheduler,
            } => Json::Obj(vec![(
                "TwoLevel".into(),
                Json::Obj(vec![(
                    "active_per_scheduler".into(),
                    regless_json::ToJson::to_json(&active_per_scheduler),
                )]),
            )]),
        }
    }
}

impl regless_json::FromJson for SchedulerKind {
    fn from_json(v: &regless_json::Json) -> Result<Self, regless_json::JsonError> {
        use regless_json::{Json, JsonError};
        match v {
            Json::Str(s) if s == "Gto" => Ok(SchedulerKind::Gto),
            Json::Str(s) if s == "Lrr" => Ok(SchedulerKind::Lrr),
            Json::Obj(_) => {
                let inner = v.field("TwoLevel")?;
                Ok(SchedulerKind::TwoLevel {
                    active_per_scheduler: regless_json::FromJson::from_json(
                        inner.field("active_per_scheduler")?,
                    )?,
                })
            }
            other => Err(JsonError::new(format!("unknown SchedulerKind: {other:?}"))),
        }
    }
}

/// Rows of the paper's Table 1, for the `table1_config` harness.
pub fn table1_rows(config: &GpuConfig) -> Vec<(String, String)> {
    vec![
        (
            "SMs".into(),
            format!(
                "{}, {} warps each, {} schedulers",
                config.num_sms, config.warps_per_sm, config.schedulers_per_sm
            ),
        ),
        (
            "Warp scheduler".into(),
            match config.scheduler {
                SchedulerKind::Gto => "GTO".into(),
                SchedulerKind::Lrr => "LRR".into(),
                SchedulerKind::TwoLevel {
                    active_per_scheduler,
                } => {
                    format!("2-level ({active_per_scheduler} active/scheduler)")
                }
            },
        ),
        (
            "L1 cache".into(),
            format!(
                "{}KB, {}MSHRs, data accesses {}",
                config.l1.bytes / 1024,
                config.l1_mshrs,
                if config.l1_bypass_data {
                    "bypassed"
                } else {
                    "cached"
                }
            ),
        ),
        ("L1 bandwidth".into(), "one request per cycle".into()),
        (
            "Memory system".into(),
            format!(
                "{}MB L2 in {} partitions, {} L2 ports/cycle, DRAM latency {} cycles",
                config.l2.bytes / (1024 * 1024),
                config.l2_partitions,
                config.l2_ports,
                config.dram_latency
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx980_matches_table1() {
        let c = GpuConfig::gtx980();
        c.validate();
        assert_eq!(c.num_sms, 16);
        assert_eq!(c.warps_per_sm, 64);
        assert_eq!(c.schedulers_per_sm, 4);
        assert_eq!(c.l1.bytes, 48 * 1024);
        assert_eq!(c.l1_mshrs, 32);
        assert_eq!(c.l2.bytes, 2 * 1024 * 1024);
        assert!(c.l1_bypass_data);
        assert_eq!(c.warps_per_scheduler(), 16);
    }

    #[test]
    fn cache_shapes() {
        let c = GpuConfig::gtx980();
        assert_eq!(c.l1.num_sets(), 48 * 1024 / (6 * 128));
        assert_eq!(c.l2.num_sets(), 2 * 1024 * 1024 / (16 * 128));
    }

    #[test]
    fn table1_rows_nonempty() {
        let rows = table1_rows(&GpuConfig::gtx980());
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|(k, v)| !k.is_empty() && !v.is_empty()));
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn invalid_scheduler_split_panics() {
        let c = GpuConfig {
            warps_per_sm: 10,
            warps_per_block: 5,
            schedulers_per_sm: 4,
            ..GpuConfig::gtx980()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "thread blocks")]
    fn invalid_block_split_panics() {
        let c = GpuConfig {
            warps_per_sm: 10,
            warps_per_block: 4,
            ..GpuConfig::gtx980()
        };
        c.validate();
    }
}
