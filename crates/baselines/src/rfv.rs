//! RFV: register-file virtualization of Jeon et al. (MICRO 2015), the
//! paper's second comparison point.
//!
//! RFV renames architectural registers onto a **half-size** physical file,
//! exploiting the fact that far fewer values are live than are allocated.
//! When a kernel's live set is too large for the physical file, concurrency
//! must be throttled — the register-pressure slowdowns the original paper
//! reports on `dwt2d` and `hotspot`. We model this by admitting warps only
//! while the sum of their peak live-register counts fits the physical pool,
//! and counting a rename-table lookup per operand access.

use regless_compiler::CompiledKernel;
use regless_isa::{InsnRef, Instruction, LaneVec, Reg};
use regless_sim::{BackendCtx, Cycle, GpuConfig, OperandBackend, SchedulerKind};
use std::collections::HashSet;
use std::sync::Arc;

/// The RFV operand backend.
pub struct RfvBackend {
    compiled: Arc<CompiledKernel>,
    /// Physical registers available (half the baseline allocation for this
    /// kernel).
    pool: usize,
    /// Peak concurrently-live registers of one warp (static).
    max_live_per_warp: usize,
    admitted: HashSet<usize>,
    finished: HashSet<usize>,
    warps_per_sm: usize,
    /// Warps throttled as of the last `begin_cycle`, so a fast-path skip
    /// can bulk-charge `rfv_throttled_warp_cycles` for the cycles it jumps.
    throttled_now: u64,
}

impl RfvBackend {
    /// Build the backend. The physical pool is half of the baseline
    /// register file's entries (a hardware property, per the original
    /// paper's half-size design).
    pub fn new(gpu: &GpuConfig, compiled: Arc<CompiledKernel>) -> Self {
        let baseline_entries = gpu.rf_bytes_per_sm / 128;
        let pool = (baseline_entries / 2).max(1);
        let max_live_per_warp = compiled
            .liveness()
            .live_counts(compiled.kernel())
            .into_iter()
            .map(|(_, n)| n)
            .max()
            .unwrap_or(1)
            .max(1);
        RfvBackend {
            compiled,
            pool,
            max_live_per_warp,
            admitted: HashSet::new(),
            finished: HashSet::new(),
            warps_per_sm: gpu.warps_per_sm,
            throttled_now: 0,
        }
    }

    /// The scheduler RFV runs under in the paper's comparison.
    pub fn scheduler() -> SchedulerKind {
        SchedulerKind::TwoLevel {
            active_per_scheduler: 4,
        }
    }

    /// How many warps can hold registers concurrently.
    pub fn concurrent_warps(&self) -> usize {
        (self.pool / self.max_live_per_warp).max(1)
    }
}

impl OperandBackend for RfvBackend {
    fn begin_cycle(&mut self, ctx: &mut BackendCtx<'_>) {
        let cap = self.concurrent_warps();
        // Admit warps in id order while the live sets fit.
        if self.admitted.len() < cap {
            for w in 0..self.warps_per_sm {
                if self.admitted.len() >= cap {
                    break;
                }
                if !self.finished.contains(&w) {
                    self.admitted.insert(w);
                }
            }
        }
        let throttled = self
            .warps_per_sm
            .saturating_sub(self.finished.len() + self.admitted.len());
        self.throttled_now = throttled as u64;
        ctx.stats.rfv_throttled_warp_cycles += throttled as u64;
    }

    fn next_wakeup(&self, _now: Cycle) -> Option<Cycle> {
        // Admission only changes when a warp finishes, which is an issue
        // and therefore already forces a real tick; an idle span never
        // needs `begin_cycle` for state. The unconditional throttle
        // counter is bulk-applied in `on_skip` instead.
        None
    }

    fn on_skip(&mut self, from: Cycle, to: Cycle, stats: &mut regless_sim::SmStats) {
        // The stepped loop would have charged `throttled_now` once per
        // skipped cycle (the admitted/finished sets are frozen while no
        // warp issues).
        stats.rfv_throttled_warp_cycles += self.throttled_now * (to - from);
    }

    fn warp_eligible(&mut self, w: usize, _pc: InsnRef) -> bool {
        self.admitted.contains(&w)
    }

    fn issue_stall(&self, w: usize, _pc: InsnRef) -> Option<regless_sim::StallReason> {
        if self.finished.contains(&w) {
            None
        } else {
            // Throttled: waiting for physical-register pool capacity.
            Some(regless_sim::StallReason::OsuCapacityWait)
        }
    }

    fn on_issue(
        &mut self,
        _w: usize,
        _at: InsnRef,
        insn: &Instruction,
        ctx: &mut BackendCtx<'_>,
    ) -> Cycle {
        let reads = insn.srcs().len() as u64;
        ctx.stats.rf_reads += reads;
        ctx.stats.rename_lookups += reads;
        ctx.stats.backing_series.record(ctx.now, reads);
        0
    }

    fn on_writeback(
        &mut self,
        _w: usize,
        _at: InsnRef,
        _reg: Reg,
        _value: LaneVec,
        ctx: &mut BackendCtx<'_>,
    ) {
        ctx.stats.rf_writes += 1;
        ctx.stats.rename_lookups += 1;
        ctx.stats.backing_series.record(ctx.now, 1);
    }

    fn on_warp_finish(&mut self, w: usize, _ctx: &mut BackendCtx<'_>) {
        self.admitted.remove(&w);
        self.finished.insert(w);
        let _ = &self.compiled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_compiler::{compile, RegionConfig};
    use regless_isa::KernelBuilder;

    fn small_kernel() -> CompiledKernel {
        let mut b = KernelBuilder::new("small");
        let i = b.thread_idx();
        let x = b.iadd(i, i);
        b.st_global(x, i);
        b.exit();
        compile(&b.finish().unwrap(), &RegionConfig::default()).unwrap()
    }

    fn pressured_kernel() -> CompiledKernel {
        // ~24 concurrently live registers out of ~26 allocated.
        let mut b = KernelBuilder::new("pressure");
        let vals: Vec<_> = (0..24).map(|i| b.movi(i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.iadd(acc, v);
        }
        b.st_global(acc, acc);
        b.exit();
        compile(
            &b.finish().unwrap(),
            &RegionConfig {
                max_regs_per_region: 32,
                ..RegionConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn low_pressure_admits_all_warps() {
        let gpu = GpuConfig::test_small();
        let backend = RfvBackend::new(&gpu, Arc::new(small_kernel()));
        assert!(backend.concurrent_warps() >= gpu.warps_per_sm);
    }

    #[test]
    fn high_pressure_throttles() {
        // With 64 warps and ~25 live registers each, the half-size pool
        // (1024 entries) holds only ~40 warps' live sets.
        let gpu = GpuConfig::gtx980();
        let backend = RfvBackend::new(&gpu, Arc::new(pressured_kernel()));
        assert!(backend.concurrent_warps() < gpu.warps_per_sm);
        assert!(backend.concurrent_warps() >= 1);
    }

    #[test]
    fn counts_rename_lookups() {
        let gpu = GpuConfig::test_small();
        let compiled = Arc::new(small_kernel());
        let mut backend = RfvBackend::new(&gpu, Arc::clone(&compiled));
        let mut mem = regless_sim::MemSystem::new(&gpu);
        let mut stats = regless_sim::SmStats::default();
        let insn = regless_isa::Instruction::new(
            regless_isa::Opcode::IAdd,
            Some(Reg(2)),
            vec![Reg(0), Reg(1)],
        );
        let at = InsnRef {
            block: regless_isa::BlockId(0),
            idx: 0,
        };
        let mut ctx = BackendCtx {
            sm: 0,
            now: 0,
            mem: &mut mem,
            stats: &mut stats,
        };
        backend.begin_cycle(&mut ctx);
        assert!(backend.warp_eligible(0, at));
        backend.on_issue(0, at, &insn, &mut ctx);
        backend.on_writeback(0, at, Reg(2), LaneVec::zero(), &mut ctx);
        assert_eq!(stats.rename_lookups, 3);
        assert_eq!(stats.rf_reads, 2);
    }
}
