//! RegDem: compiler-directed register demotion of Sakdhnagool et al.
//! (arXiv 1907.02894), the registry's first related-work entry.
//!
//! RegDem shrinks the register file by statically **demoting cold
//! registers to a shared-memory scratch partition**: the compiler ranks
//! each architectural register by static use count, keeps the hottest
//! ones in a half-size RF, and rewrites accesses to the rest as
//! spill/fill traffic against shared memory. We model the two costs that
//! make the trade interesting: every cold-operand access pays the
//! shared-memory latency on top of the instruction's own, and the scratch
//! partition is a finite per-SM resource, so warps whose spill slabs do
//! not fit are throttled exactly like RFV's pool admission (charged
//! through [`regless_sim::StallReason::OsuCapacityWait`]).

use regless_compiler::CompiledKernel;
use regless_isa::{InsnRef, Instruction, LaneVec, Reg};
use regless_sim::{BackendCtx, Cycle, GpuConfig, OperandBackend};
use std::collections::HashSet;
use std::sync::Arc;

/// Shared-memory scratch partition reserved for demoted registers, per
/// SM. `GpuConfig` does not model a shared-memory capacity, so this is a
/// backend constant: half of a Maxwell SM's 96 KB shared memory, matching
/// RegDem's "borrow shared memory the kernel does not use" framing.
pub const SCRATCH_BYTES_PER_SM: usize = 48 * 1024;

/// The RegDem operand backend.
pub struct RegDemBackend {
    compiled: Arc<CompiledKernel>,
    /// Registers kept in the (half-size) register file.
    hot: HashSet<Reg>,
    /// How many warps' spill slabs fit the scratch partition at once.
    cap: usize,
    /// Shared-memory access latency charged per cold-operand instruction.
    spill_latency: Cycle,
    admitted: HashSet<usize>,
    finished: HashSet<usize>,
    warps_per_sm: usize,
    /// Warps throttled as of the last `begin_cycle`, so a fast-path skip
    /// can bulk-charge `spill_throttled_warp_cycles` for the cycles it
    /// jumps.
    throttled_now: u64,
}

impl RegDemBackend {
    /// Build the backend: rank registers by static use count, keep the
    /// hottest `hot_budget` in a half-size RF, demote the rest.
    pub fn new(gpu: &GpuConfig, compiled: Arc<CompiledKernel>) -> Self {
        let kernel = compiled.kernel();
        let num_regs = kernel.num_regs() as usize;
        let mut uses = vec![0u64; num_regs];
        for (_, insn) in kernel.iter_insns() {
            for &src in insn.srcs() {
                uses[src.0 as usize] += 1;
            }
            if let Some(dst) = insn.dst() {
                uses[dst.0 as usize] += 1;
            }
        }
        // Half-size RF, shared evenly across resident warps; ties break
        // toward the lower register id so the split is deterministic.
        let half_entries = (gpu.rf_bytes_per_sm / 2) / 128;
        let hot_budget = (half_entries / gpu.warps_per_sm).max(1);
        let mut ranked: Vec<(u64, usize)> = uses.iter().enumerate().map(|(r, &n)| (n, r)).collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let hot: HashSet<Reg> = ranked
            .iter()
            .take(hot_budget)
            .map(|&(_, r)| Reg(r as u16))
            .collect();
        let cold_regs = num_regs.saturating_sub(hot.len());
        let cap = if cold_regs == 0 {
            gpu.warps_per_sm
        } else {
            (SCRATCH_BYTES_PER_SM / (cold_regs * 128)).max(1)
        };
        RegDemBackend {
            compiled,
            hot,
            cap,
            spill_latency: gpu.latency.shared_mem,
            admitted: HashSet::new(),
            finished: HashSet::new(),
            warps_per_sm: gpu.warps_per_sm,
            throttled_now: 0,
        }
    }

    /// Whether `reg` stays in the register file (vs the scratch
    /// partition).
    pub fn is_hot(&self, reg: Reg) -> bool {
        self.hot.contains(&reg)
    }

    /// How many warps' spill slabs fit the scratch partition at once.
    pub fn concurrent_warps(&self) -> usize {
        self.cap
    }
}

impl OperandBackend for RegDemBackend {
    fn begin_cycle(&mut self, ctx: &mut BackendCtx<'_>) {
        // Admit warps in id order while their spill slabs fit.
        if self.admitted.len() < self.cap {
            for w in 0..self.warps_per_sm {
                if self.admitted.len() >= self.cap {
                    break;
                }
                if !self.finished.contains(&w) {
                    self.admitted.insert(w);
                }
            }
        }
        let throttled = self
            .warps_per_sm
            .saturating_sub(self.finished.len() + self.admitted.len());
        self.throttled_now = throttled as u64;
        ctx.stats.spill_throttled_warp_cycles += throttled as u64;
    }

    fn next_wakeup(&self, _now: Cycle) -> Option<Cycle> {
        // Admission only changes when a warp finishes, which is an issue
        // and therefore already a real tick; the throttle counter is
        // bulk-applied in `on_skip`.
        None
    }

    fn on_skip(&mut self, from: Cycle, to: Cycle, stats: &mut regless_sim::SmStats) {
        // The stepped loop would have charged `throttled_now` once per
        // skipped cycle (the admitted/finished sets are frozen while no
        // warp issues).
        stats.spill_throttled_warp_cycles += self.throttled_now * (to - from);
    }

    fn warp_eligible(&mut self, w: usize, _pc: InsnRef) -> bool {
        self.admitted.contains(&w)
    }

    fn issue_stall(&self, w: usize, _pc: InsnRef) -> Option<regless_sim::StallReason> {
        if self.finished.contains(&w) {
            None
        } else {
            // Throttled: waiting for scratch-partition capacity.
            Some(regless_sim::StallReason::OsuCapacityWait)
        }
    }

    fn on_issue(
        &mut self,
        _w: usize,
        _at: InsnRef,
        insn: &Instruction,
        ctx: &mut BackendCtx<'_>,
    ) -> Cycle {
        let mut cold_srcs = 0u64;
        let mut hot_srcs = 0u64;
        for &src in insn.srcs() {
            if self.is_hot(src) {
                hot_srcs += 1;
            } else {
                cold_srcs += 1;
            }
        }
        ctx.stats.rf_reads += hot_srcs;
        ctx.stats.spill_fills += cold_srcs;
        ctx.stats
            .backing_series
            .record(ctx.now, hot_srcs + cold_srcs);
        // All fills of one instruction pipeline behind one shared-memory
        // access; hot operands are free.
        if cold_srcs > 0 {
            self.spill_latency
        } else {
            0
        }
    }

    fn on_writeback(
        &mut self,
        _w: usize,
        _at: InsnRef,
        reg: Reg,
        _value: LaneVec,
        ctx: &mut BackendCtx<'_>,
    ) {
        if self.is_hot(reg) {
            ctx.stats.rf_writes += 1;
        } else {
            ctx.stats.spill_stores += 1;
        }
        ctx.stats.backing_series.record(ctx.now, 1);
    }

    fn on_warp_finish(&mut self, w: usize, _ctx: &mut BackendCtx<'_>) {
        self.admitted.remove(&w);
        self.finished.insert(w);
        let _ = &self.compiled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_compiler::{compile, RegionConfig};
    use regless_isa::KernelBuilder;

    fn small_kernel() -> CompiledKernel {
        let mut b = KernelBuilder::new("small");
        let i = b.thread_idx();
        let x = b.iadd(i, i);
        b.st_global(x, i);
        b.exit();
        compile(&b.finish().unwrap(), &RegionConfig::default()).unwrap()
    }

    fn fat_kernel() -> CompiledKernel {
        // Many registers, so most demote to the scratch partition.
        let mut b = KernelBuilder::new("fat");
        let vals: Vec<_> = (0..24).map(|i| b.movi(i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.iadd(acc, v);
        }
        b.st_global(acc, acc);
        b.exit();
        compile(
            &b.finish().unwrap(),
            &RegionConfig {
                max_regs_per_region: 32,
                ..RegionConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn hot_set_prefers_most_used_registers() {
        // 64 warps share the half-size RF: 16 hot registers per warp, so
        // the 26-register kernel must demote some.
        let gpu = GpuConfig::gtx980();
        let backend = RegDemBackend::new(&gpu, Arc::new(fat_kernel()));
        // The accumulator is touched every iadd; it must stay hot.
        let kernel_regs = fat_kernel().kernel().num_regs();
        assert!(kernel_regs > 0);
        let hot_count = (0..kernel_regs).filter(|&r| backend.is_hot(Reg(r))).count();
        assert!(hot_count >= 1);
        assert!(hot_count < kernel_regs as usize, "some registers demote");
    }

    #[test]
    fn small_kernels_fit_without_spilling() {
        let gpu = GpuConfig::test_small();
        let backend = RegDemBackend::new(&gpu, Arc::new(small_kernel()));
        // Few registers: the scratch partition admits every warp.
        assert!(backend.concurrent_warps() >= 1);
    }

    #[test]
    fn cold_operands_pay_spill_latency_and_count() {
        let gpu = GpuConfig::gtx980();
        let compiled = Arc::new(fat_kernel());
        let mut backend = RegDemBackend::new(&gpu, Arc::clone(&compiled));
        let mut mem = regless_sim::MemSystem::new(&gpu);
        let mut stats = regless_sim::SmStats::default();
        // Force a deterministic split for the probe instruction: pick one
        // hot and one cold register from the computed sets.
        let regs = compiled.kernel().num_regs();
        let hot = (0..regs).map(Reg).find(|&r| backend.is_hot(r)).unwrap();
        let cold = (0..regs).map(Reg).find(|&r| !backend.is_hot(r)).unwrap();
        let insn =
            regless_isa::Instruction::new(regless_isa::Opcode::IAdd, Some(hot), vec![hot, cold]);
        let at = InsnRef {
            block: regless_isa::BlockId(0),
            idx: 0,
        };
        let mut ctx = BackendCtx {
            sm: 0,
            now: 0,
            mem: &mut mem,
            stats: &mut stats,
        };
        backend.begin_cycle(&mut ctx);
        let extra = backend.on_issue(0, at, &insn, &mut ctx);
        assert_eq!(extra, gpu.latency.shared_mem, "cold fill pays latency");
        backend.on_writeback(0, at, cold, LaneVec::zero(), &mut ctx);
        assert_eq!(stats.rf_reads, 1);
        assert_eq!(stats.spill_fills, 1);
        assert_eq!(stats.spill_stores, 1);
    }
}
