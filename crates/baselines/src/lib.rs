//! Comparison points for the RegLess evaluation (paper §6.1):
//!
//! * [`RfhBackend`] — the compile-time managed register-file **hierarchy**
//!   of Gebhart et al. (LRF / RFC / MRF levels, two-level scheduler);
//! * [`RfvBackend`] — the register-file **virtualization** of Jeon et al.
//!   (half-size renamed register file, throttling under pressure);
//! * [`RegDemBackend`] — the compiler-directed **register demotion** of
//!   Sakdhnagool et al. (cold registers spilled to a shared-memory
//!   scratch partition);
//! * [`CompressRfBackend`] — the **statically-compressed** register file
//!   of Angerd et al. (affine values stored compressed in a half-size
//!   file).
//!
//! All plug into the same [`regless_sim::Machine`] pipeline as the
//! baseline and RegLess, so run-time and event counts are directly
//! comparable.
//!
//! ```
//! use regless_baselines::{run_rfh, run_rfv};
//! use regless_compiler::{compile, RegionConfig};
//! use regless_isa::KernelBuilder;
//! use regless_sim::GpuConfig;
//!
//! let mut b = KernelBuilder::new("demo");
//! let i = b.thread_idx();
//! let v = b.iadd(i, i);
//! b.st_global(v, i);
//! b.exit();
//! let compiled = compile(&b.finish()?, &RegionConfig::default())?;
//!
//! let rfh = run_rfh(GpuConfig::test_small(), compiled.clone())?;
//! let rfv = run_rfv(GpuConfig::test_small(), compiled)?;
//! assert_eq!(rfh.total().insns, rfv.total().insns);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comprf;
mod regdem;
mod rfh;
mod rfv;

pub use comprf::CompressRfBackend;
pub use regdem::{RegDemBackend, SCRATCH_BYTES_PER_SM};
pub use rfh::{RfhBackend, RfhLevel, RfhPlacement};
pub use rfv::RfvBackend;

use regless_compiler::CompiledKernel;
use regless_sim::{GpuConfig, Machine, RunReport, SimError};
use std::sync::Arc;

/// Run a kernel under the RFH design (two-level scheduler, hierarchical
/// register file).
///
/// # Errors
///
/// Returns [`SimError`] if the cycle limit is exceeded.
pub fn run_rfh(gpu: GpuConfig, compiled: CompiledKernel) -> Result<RunReport, SimError> {
    run_rfh_with(gpu, compiled, false)
}

/// [`run_rfh`] with an explicit run-loop mode: `stepped` forces the
/// cycle-by-cycle reference loop instead of the event-driven fast path
/// (see [`Machine::set_stepped`]).
///
/// # Errors
///
/// Returns [`SimError`] if the cycle limit is exceeded.
pub fn run_rfh_with(
    gpu: GpuConfig,
    compiled: CompiledKernel,
    stepped: bool,
) -> Result<RunReport, SimError> {
    let gpu = GpuConfig {
        scheduler: RfhBackend::scheduler(),
        ..gpu
    };
    let compiled = Arc::new(compiled);
    let mut machine = Machine::new(gpu, Arc::clone(&compiled), |_| RfhBackend::new(&compiled));
    machine.set_stepped(stepped);
    machine.run()
}

/// Run a kernel under the RFV design (two-level scheduler, half-size
/// renamed register file).
///
/// # Errors
///
/// Returns [`SimError`] if the cycle limit is exceeded.
pub fn run_rfv(gpu: GpuConfig, compiled: CompiledKernel) -> Result<RunReport, SimError> {
    run_rfv_with(gpu, compiled, false)
}

/// [`run_rfv`] with an explicit run-loop mode: `stepped` forces the
/// cycle-by-cycle reference loop instead of the event-driven fast path
/// (see [`Machine::set_stepped`]).
///
/// # Errors
///
/// Returns [`SimError`] if the cycle limit is exceeded.
pub fn run_rfv_with(
    gpu: GpuConfig,
    compiled: CompiledKernel,
    stepped: bool,
) -> Result<RunReport, SimError> {
    let gpu = GpuConfig {
        scheduler: RfvBackend::scheduler(),
        ..gpu
    };
    let compiled = Arc::new(compiled);
    let mut machine = Machine::new(gpu, Arc::clone(&compiled), |_| {
        RfvBackend::new(&gpu, Arc::clone(&compiled))
    });
    machine.set_stepped(stepped);
    machine.run()
}

/// Run a kernel under the RegDem design (cold registers demoted to a
/// shared-memory scratch partition; baseline scheduler).
///
/// # Errors
///
/// Returns [`SimError`] if the cycle limit is exceeded.
pub fn run_regdem(gpu: GpuConfig, compiled: CompiledKernel) -> Result<RunReport, SimError> {
    run_regdem_with(gpu, compiled, false)
}

/// [`run_regdem`] with an explicit run-loop mode: `stepped` forces the
/// cycle-by-cycle reference loop instead of the event-driven fast path
/// (see [`Machine::set_stepped`]).
///
/// # Errors
///
/// Returns [`SimError`] if the cycle limit is exceeded.
pub fn run_regdem_with(
    gpu: GpuConfig,
    compiled: CompiledKernel,
    stepped: bool,
) -> Result<RunReport, SimError> {
    let compiled = Arc::new(compiled);
    let mut machine = Machine::new(gpu, Arc::clone(&compiled), |_| {
        RegDemBackend::new(&gpu, Arc::clone(&compiled))
    });
    machine.set_stepped(stepped);
    machine.run()
}

/// Run a kernel under the compressed-RF design (two-level scheduler,
/// half-size statically-compressed register file).
///
/// # Errors
///
/// Returns [`SimError`] if the cycle limit is exceeded.
pub fn run_compress_rf(gpu: GpuConfig, compiled: CompiledKernel) -> Result<RunReport, SimError> {
    run_compress_rf_with(gpu, compiled, false)
}

/// [`run_compress_rf`] with an explicit run-loop mode: `stepped` forces
/// the cycle-by-cycle reference loop instead of the event-driven fast
/// path (see [`Machine::set_stepped`]).
///
/// # Errors
///
/// Returns [`SimError`] if the cycle limit is exceeded.
pub fn run_compress_rf_with(
    gpu: GpuConfig,
    compiled: CompiledKernel,
    stepped: bool,
) -> Result<RunReport, SimError> {
    let gpu = GpuConfig {
        scheduler: CompressRfBackend::scheduler(),
        ..gpu
    };
    let compiled = Arc::new(compiled);
    let mut machine = Machine::new(gpu, Arc::clone(&compiled), |_| {
        CompressRfBackend::new(&gpu, Arc::clone(&compiled))
    });
    machine.set_stepped(stepped);
    machine.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_compiler::{compile, RegionConfig};
    use regless_isa::{KernelBuilder, Opcode};

    fn loop_kernel() -> CompiledKernel {
        let mut b = KernelBuilder::new("loop");
        let body = b.new_block();
        let done = b.new_block();
        let i0 = b.movi(0);
        let n = b.movi(32);
        let tid = b.thread_idx();
        b.jmp(body);
        b.select(body);
        let v = b.ld_global(tid);
        let x = b.iadd(v, tid);
        b.st_global(x, tid);
        let one = b.movi(1);
        b.emit_to(i0, Opcode::IAdd, vec![i0, one]);
        let c = b.setlt(i0, n);
        b.bra(c, body, done);
        b.select(done);
        b.exit();
        compile(&b.finish().unwrap(), &RegionConfig::default()).unwrap()
    }

    #[test]
    fn rfh_runs_and_filters_accesses() {
        let report = run_rfh(GpuConfig::test_small(), loop_kernel()).unwrap();
        let t = report.total();
        assert!(t.insns > 0);
        // Some accesses hit the small levels, some the MRF.
        assert!(t.lrf_reads + t.rfc_reads > 0, "hierarchy must filter reads");
        assert!(t.rf_reads > 0, "cross-block values still hit the MRF");
    }

    #[test]
    fn rfv_runs_and_renames() {
        let report = run_rfv(GpuConfig::test_small(), loop_kernel()).unwrap();
        let t = report.total();
        assert!(t.insns > 0);
        assert!(t.rename_lookups > 0);
        assert_eq!(t.rename_lookups, t.rf_reads + t.rf_writes);
    }

    #[test]
    fn regdem_runs_and_counts_spills() {
        // Shrink the RF so the loop kernel's registers overflow the
        // per-warp hot budget and some traffic demotes.
        let gpu = GpuConfig {
            rf_bytes_per_sm: 8 * 1024,
            ..GpuConfig::test_small()
        };
        let report = run_regdem(gpu, loop_kernel()).unwrap();
        let t = report.total();
        assert!(t.insns > 0);
        assert!(
            t.spill_fills + t.spill_stores > 0,
            "demoted registers must produce scratch traffic"
        );
        assert!(t.rf_reads > 0, "hot registers still hit the RF");
    }

    #[test]
    fn compress_rf_runs_and_matches_patterns() {
        let report = run_compress_rf(GpuConfig::test_small(), loop_kernel()).unwrap();
        let t = report.total();
        assert!(t.insns > 0);
        assert!(
            t.compressor_matches > 0,
            "affine operands must pattern-match"
        );
        assert!(t.rf_reads + t.rf_writes >= t.compressor_matches);
    }

    #[test]
    fn all_designs_execute_same_instruction_count() {
        let compiled = loop_kernel();
        let base =
            regless_sim::run_baseline(GpuConfig::test_small(), Arc::new(compiled.clone())).unwrap();
        let rfh = run_rfh(GpuConfig::test_small(), compiled.clone()).unwrap();
        let rfv = run_rfv(GpuConfig::test_small(), compiled.clone()).unwrap();
        let regdem = run_regdem(GpuConfig::test_small(), compiled.clone()).unwrap();
        let comprf = run_compress_rf(GpuConfig::test_small(), compiled).unwrap();
        assert_eq!(base.total().insns, rfh.total().insns);
        assert_eq!(base.total().insns, rfv.total().insns);
        assert_eq!(base.total().insns, regdem.total().insns);
        assert_eq!(base.total().insns, comprf.total().insns);
    }
}
