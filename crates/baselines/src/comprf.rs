//! Compress-RF: the statically-compressed register file of Angerd et al.
//! (arXiv 2006.05693), the registry's second related-work entry.
//!
//! Angerd et al. observe that many register values are **affine across
//! lanes** (`base + lane * stride`) and build a register file that stores
//! such values compressed — a quarter of a full entry — so the same SRAM
//! holds more warps' registers. We model the static variant: a dataflow
//! analysis over the kernel classifies each architectural register as
//! compressible (every definition is an affine-closed op over
//! compressible inputs) or not, the physical file is **half** the
//! baseline's, and a warp's footprint charges one quarter-entry per
//! compressible register and four per incompressible one. Warps whose
//! footprints do not fit are throttled like RFV's pool admission, and
//! every compressible access pays a compressor pattern match (counted
//! into the existing `compressor_matches`, which the energy model prices).

use regless_compiler::CompiledKernel;
use regless_isa::{InsnRef, Instruction, LaneVec, Opcode, Reg};
use regless_sim::{BackendCtx, Cycle, GpuConfig, OperandBackend, SchedulerKind};
use std::collections::HashSet;
use std::sync::Arc;

/// Quarter-entry units a compressible register occupies.
const COMPRESSED_Q: usize = 1;
/// Quarter-entry units an uncompressed register occupies.
const FULL_Q: usize = 4;

/// Whether `op` preserves lane-affinity when its inputs are affine.
fn affine_closed(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::MovImm(_)
            | Opcode::ReadSpecial(_)
            | Opcode::Mov
            | Opcode::IAdd
            | Opcode::ISub
            | Opcode::IMul
            | Opcode::Shl
    )
}

/// Classify each register: compressible iff **every** definition is an
/// affine-closed op whose sources are all compressible (an optimistic
/// fixpoint, so loop-carried affine registers like induction variables
/// stay compressible). Registers with no definition are incompressible.
fn compressible_regs(compiled: &CompiledKernel) -> Vec<bool> {
    let kernel = compiled.kernel();
    let n = kernel.num_regs() as usize;
    let mut defined = vec![false; n];
    for (_, insn) in kernel.iter_insns() {
        if let Some(d) = insn.dst() {
            defined[d.0 as usize] = true;
        }
    }
    let mut comp: Vec<bool> = defined.clone();
    loop {
        let mut changed = false;
        for (_, insn) in kernel.iter_insns() {
            let Some(d) = insn.dst() else { continue };
            let d = d.0 as usize;
            if !comp[d] {
                continue;
            }
            let ok = affine_closed(insn.op()) && insn.srcs().iter().all(|s| comp[s.0 as usize]);
            if !ok {
                comp[d] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    comp
}

/// The compressed-register-file operand backend.
pub struct CompressRfBackend {
    compiled: Arc<CompiledKernel>,
    /// Per-register compressibility, indexed by register id.
    compressible: Vec<bool>,
    /// How many warps' footprints fit the physical file at once.
    cap: usize,
    admitted: HashSet<usize>,
    finished: HashSet<usize>,
    warps_per_sm: usize,
    /// Warps throttled as of the last `begin_cycle`, so a fast-path skip
    /// can bulk-charge `comprf_throttled_warp_cycles` for the cycles it
    /// jumps.
    throttled_now: u64,
}

impl CompressRfBackend {
    /// Build the backend: classify registers, then size admission so the
    /// admitted warps' (compressed) footprints fit a half-size physical
    /// file.
    pub fn new(gpu: &GpuConfig, compiled: Arc<CompiledKernel>) -> Self {
        let compressible = compressible_regs(&compiled);
        let footprint_q: usize = compressible
            .iter()
            .map(|&c| if c { COMPRESSED_Q } else { FULL_Q })
            .sum();
        let pool_q = ((gpu.rf_bytes_per_sm / 128) / 2) * FULL_Q;
        let cap = match pool_q.checked_div(footprint_q) {
            None => gpu.warps_per_sm,
            Some(n) => n.max(1),
        };
        CompressRfBackend {
            compiled,
            compressible,
            cap,
            admitted: HashSet::new(),
            finished: HashSet::new(),
            warps_per_sm: gpu.warps_per_sm,
            throttled_now: 0,
        }
    }

    /// The scheduler the compressed-RF design runs under (same two-level
    /// policy as the other capacity-throttled comparison points).
    pub fn scheduler() -> SchedulerKind {
        SchedulerKind::TwoLevel {
            active_per_scheduler: 4,
        }
    }

    /// Whether `reg` stores compressed.
    pub fn is_compressible(&self, reg: Reg) -> bool {
        self.compressible
            .get(reg.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// How many warps' footprints fit the physical file at once.
    pub fn concurrent_warps(&self) -> usize {
        self.cap
    }
}

impl OperandBackend for CompressRfBackend {
    fn begin_cycle(&mut self, ctx: &mut BackendCtx<'_>) {
        // Admit warps in id order while their footprints fit.
        if self.admitted.len() < self.cap {
            for w in 0..self.warps_per_sm {
                if self.admitted.len() >= self.cap {
                    break;
                }
                if !self.finished.contains(&w) {
                    self.admitted.insert(w);
                }
            }
        }
        let throttled = self
            .warps_per_sm
            .saturating_sub(self.finished.len() + self.admitted.len());
        self.throttled_now = throttled as u64;
        ctx.stats.comprf_throttled_warp_cycles += throttled as u64;
    }

    fn next_wakeup(&self, _now: Cycle) -> Option<Cycle> {
        // Admission only changes when a warp finishes — a real tick; the
        // throttle counter is bulk-applied in `on_skip`.
        None
    }

    fn on_skip(&mut self, from: Cycle, to: Cycle, stats: &mut regless_sim::SmStats) {
        // The stepped loop would have charged `throttled_now` once per
        // skipped cycle.
        stats.comprf_throttled_warp_cycles += self.throttled_now * (to - from);
    }

    fn warp_eligible(&mut self, w: usize, _pc: InsnRef) -> bool {
        self.admitted.contains(&w)
    }

    fn issue_stall(&self, w: usize, _pc: InsnRef) -> Option<regless_sim::StallReason> {
        if self.finished.contains(&w) {
            None
        } else {
            // Throttled: waiting for physical-entry capacity.
            Some(regless_sim::StallReason::OsuCapacityWait)
        }
    }

    fn on_issue(
        &mut self,
        _w: usize,
        _at: InsnRef,
        insn: &Instruction,
        ctx: &mut BackendCtx<'_>,
    ) -> Cycle {
        let reads = insn.srcs().len() as u64;
        ctx.stats.rf_reads += reads;
        for &src in insn.srcs() {
            if self.is_compressible(src) {
                ctx.stats.compressor_matches += 1;
            }
        }
        ctx.stats.backing_series.record(ctx.now, reads);
        0
    }

    fn on_writeback(
        &mut self,
        _w: usize,
        _at: InsnRef,
        reg: Reg,
        _value: LaneVec,
        ctx: &mut BackendCtx<'_>,
    ) {
        ctx.stats.rf_writes += 1;
        if self.is_compressible(reg) {
            ctx.stats.compressor_matches += 1;
        }
        ctx.stats.backing_series.record(ctx.now, 1);
    }

    fn on_warp_finish(&mut self, w: usize, _ctx: &mut BackendCtx<'_>) {
        self.admitted.remove(&w);
        self.finished.insert(w);
        let _ = &self.compiled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_compiler::{compile, RegionConfig};
    use regless_isa::KernelBuilder;

    fn affine_kernel() -> CompiledKernel {
        // tid and constants flow through iadd: everything stays affine.
        let mut b = KernelBuilder::new("affine");
        let i = b.thread_idx();
        let c = b.movi(7);
        let x = b.iadd(i, c);
        b.st_global(x, i);
        b.exit();
        compile(&b.finish().unwrap(), &RegionConfig::default()).unwrap()
    }

    fn loaded_kernel() -> CompiledKernel {
        // Values loaded from memory are incompressible, and so is
        // arithmetic over them.
        let mut b = KernelBuilder::new("loaded");
        let i = b.thread_idx();
        let v = b.ld_global(i);
        let w = b.iadd(v, i);
        b.st_global(w, i);
        b.exit();
        compile(&b.finish().unwrap(), &RegionConfig::default()).unwrap()
    }

    fn incompressible_pressure_kernel() -> CompiledKernel {
        // Many loaded (incompressible) registers live at once.
        let mut b = KernelBuilder::new("ld_pressure");
        let i = b.thread_idx();
        let vals: Vec<_> = (0..24).map(|_| b.ld_global(i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.iadd(acc, v);
        }
        b.st_global(acc, i);
        b.exit();
        compile(
            &b.finish().unwrap(),
            &RegionConfig {
                max_regs_per_region: 32,
                ..RegionConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn affine_dataflow_is_compressible() {
        let gpu = GpuConfig::test_small();
        let compiled = Arc::new(affine_kernel());
        let backend = CompressRfBackend::new(&gpu, Arc::clone(&compiled));
        let n = compiled.kernel().num_regs();
        assert!(
            (0..n).all(|r| backend.is_compressible(Reg(r))),
            "pure affine kernel compresses every register"
        );
    }

    #[test]
    fn loads_poison_compressibility() {
        let gpu = GpuConfig::test_small();
        let compiled = Arc::new(loaded_kernel());
        let backend = CompressRfBackend::new(&gpu, Arc::clone(&compiled));
        let n = compiled.kernel().num_regs();
        let comp = (0..n).filter(|&r| backend.is_compressible(Reg(r))).count();
        assert!(comp >= 1, "tid stays compressible");
        assert!(
            comp < n as usize,
            "loaded values and their derivatives do not"
        );
    }

    #[test]
    fn incompressible_pressure_throttles() {
        // 24+ incompressible registers cost 4 quarter-entries each: the
        // half-size file cannot hold all 64 warps' footprints.
        let gpu = GpuConfig::gtx980();
        let backend = CompressRfBackend::new(&gpu, Arc::new(incompressible_pressure_kernel()));
        assert!(backend.concurrent_warps() < gpu.warps_per_sm);
        assert!(backend.concurrent_warps() >= 1);
    }

    #[test]
    fn counts_accesses_and_matches() {
        let gpu = GpuConfig::test_small();
        let compiled = Arc::new(affine_kernel());
        let mut backend = CompressRfBackend::new(&gpu, Arc::clone(&compiled));
        let mut mem = regless_sim::MemSystem::new(&gpu);
        let mut stats = regless_sim::SmStats::default();
        let insn = regless_isa::Instruction::new(
            regless_isa::Opcode::IAdd,
            Some(Reg(2)),
            vec![Reg(0), Reg(1)],
        );
        let at = InsnRef {
            block: regless_isa::BlockId(0),
            idx: 0,
        };
        let mut ctx = BackendCtx {
            sm: 0,
            now: 0,
            mem: &mut mem,
            stats: &mut stats,
        };
        backend.begin_cycle(&mut ctx);
        assert!(backend.warp_eligible(0, at));
        backend.on_issue(0, at, &insn, &mut ctx);
        backend.on_writeback(0, at, Reg(2), LaneVec::zero(), &mut ctx);
        assert_eq!(stats.rf_reads, 2);
        assert_eq!(stats.rf_writes, 1);
        // Every operand of the all-affine kernel pattern-matches.
        assert_eq!(stats.compressor_matches, 3);
    }
}
