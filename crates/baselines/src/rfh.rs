//! RFH: the compile-time managed register-file hierarchy of Gebhart et al.
//! (MICRO 2011), one of the paper's two comparison points.
//!
//! The compiler places each *value* (a definition and its uses) in one of
//! three levels: a tiny per-warp **last result file** (LRF) for values
//! consumed immediately, a small **register file cache** (RFC) for values
//! whose uses all fall within a short window, and the big **main register
//! file** (MRF) for everything else. Reads and writes are counted against
//! the level that holds the value; the MRF remains the backing store, so
//! capacity is unchanged — only access energy shrinks. A two-level warp
//! scheduler is integral to the technique (active warps own the LRF/RFC).

use regless_compiler::CompiledKernel;
use regless_isa::{InsnRef, Instruction, Kernel, LaneVec, Reg};
use regless_sim::{BackendCtx, Cycle, OperandBackend, SchedulerKind};
use std::collections::HashMap;

/// The storage level a value is allocated to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RfhLevel {
    /// Last result file: the value's single use immediately follows its
    /// definition.
    Lrf,
    /// Register file cache: all uses fall within a short window of the
    /// definition, in the same block.
    Rfc,
    /// Main register file.
    Mrf,
}

/// Definition-to-use distance (in instructions) up to which a single-use
/// value lives in the LRF.
const LRF_DISTANCE: usize = 2;
/// Window (in instructions) within which all uses must fall for RFC
/// placement, mirroring the 6-entry RFC of the original design.
const RFC_WINDOW: usize = 12;

/// Static placement of every read and write.
#[derive(Clone, Debug)]
pub struct RfhPlacement {
    /// Level of each defining instruction's result.
    def_level: HashMap<InsnRef, RfhLevel>,
    /// Level each (instruction, source register) read comes from.
    read_level: HashMap<(InsnRef, Reg), RfhLevel>,
}

impl RfhPlacement {
    /// Run the placement analysis using the kernel's liveness facts.
    pub fn analyze(kernel: &Kernel, liveness: &regless_compiler::Liveness) -> Self {
        let mut def_level = HashMap::new();
        let mut read_level = HashMap::new();
        for block in kernel.blocks() {
            let insns = block.insns();
            for (i, insn) in insns.iter().enumerate() {
                let Some(d) = insn.dst() else { continue };
                let at = InsnRef {
                    block: block.id(),
                    idx: i,
                };
                // Find the uses of this definition within the block (up to
                // a redefinition); any use beyond the block forces MRF.
                let mut uses: Vec<usize> = Vec::new();
                let mut redefined = false;
                for (j, later) in insns.iter().enumerate().skip(i + 1) {
                    if later.srcs().contains(&d) {
                        uses.push(j);
                    }
                    if later.dst() == Some(d) {
                        redefined = true;
                        break;
                    }
                }
                // A value live past the block's end escapes to the MRF.
                let escapes = !redefined && liveness.live_out(block.id()).contains(d);
                let level = if escapes {
                    RfhLevel::Mrf
                } else if uses.len() == 1 && uses[0] - i <= LRF_DISTANCE {
                    RfhLevel::Lrf
                } else if !uses.is_empty() && uses.iter().all(|&j| j - i <= RFC_WINDOW) {
                    RfhLevel::Rfc
                } else {
                    RfhLevel::Mrf
                };
                def_level.insert(at, level);
                for &j in &uses {
                    read_level.insert(
                        (
                            InsnRef {
                                block: block.id(),
                                idx: j,
                            },
                            d,
                        ),
                        level,
                    );
                }
            }
        }
        RfhPlacement {
            def_level,
            read_level,
        }
    }

    /// Level a definition writes to.
    pub fn def_level(&self, at: InsnRef) -> RfhLevel {
        self.def_level.get(&at).copied().unwrap_or(RfhLevel::Mrf)
    }

    /// Level a read comes from.
    pub fn read_level(&self, at: InsnRef, reg: Reg) -> RfhLevel {
        self.read_level
            .get(&(at, reg))
            .copied()
            .unwrap_or(RfhLevel::Mrf)
    }

    /// Fraction of reads that avoid the MRF (for sanity checks).
    pub fn non_mrf_read_fraction(&self) -> f64 {
        if self.read_level.is_empty() {
            return 0.0;
        }
        let hits = self
            .read_level
            .values()
            .filter(|&&l| l != RfhLevel::Mrf)
            .count();
        hits as f64 / self.read_level.len() as f64
    }
}

/// The RFH operand backend: counts accesses per level; the MRF doubles as
/// the Figure 3 backing store.
pub struct RfhBackend {
    placement: RfhPlacement,
}

impl RfhBackend {
    /// Build the backend from a compiled kernel.
    pub fn new(compiled: &CompiledKernel) -> Self {
        RfhBackend {
            placement: RfhPlacement::analyze(compiled.kernel(), compiled.liveness()),
        }
    }

    /// The scheduler RFH requires.
    pub fn scheduler() -> SchedulerKind {
        SchedulerKind::TwoLevel {
            active_per_scheduler: 4,
        }
    }
}

impl OperandBackend for RfhBackend {
    fn on_issue(
        &mut self,
        _w: usize,
        at: InsnRef,
        insn: &Instruction,
        ctx: &mut BackendCtx<'_>,
    ) -> Cycle {
        for &s in insn.srcs() {
            match self.placement.read_level(at, s) {
                RfhLevel::Lrf => ctx.stats.lrf_reads += 1,
                RfhLevel::Rfc => ctx.stats.rfc_reads += 1,
                RfhLevel::Mrf => {
                    ctx.stats.rf_reads += 1;
                    ctx.stats.backing_series.record(ctx.now, 1);
                }
            }
        }
        0
    }

    fn on_writeback(
        &mut self,
        _w: usize,
        at: InsnRef,
        _reg: Reg,
        _value: LaneVec,
        ctx: &mut BackendCtx<'_>,
    ) {
        match self.placement.def_level(at) {
            RfhLevel::Lrf => ctx.stats.lrf_writes += 1,
            RfhLevel::Rfc => ctx.stats.rfc_writes += 1,
            RfhLevel::Mrf => {
                ctx.stats.rf_writes += 1;
                ctx.stats.backing_series.record(ctx.now, 1);
            }
        }
    }

    fn next_wakeup(&self, _now: Cycle) -> Option<Cycle> {
        // Pure access counting against a static placement: nothing ever
        // becomes pending on the backend side.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_compiler::{compile, RegionConfig};
    use regless_isa::KernelBuilder;

    fn placement(k: &Kernel) -> RfhPlacement {
        let c = compile(k, &RegionConfig::default()).unwrap();
        RfhPlacement::analyze(c.kernel(), c.liveness())
    }

    #[test]
    fn immediate_consumption_goes_to_lrf() {
        let mut b = KernelBuilder::new("lrf");
        let x = b.movi(1); // used immediately, once
        let y = b.iadd(x, x); // hmm: two source slots, one use insn
        b.st_global(y, y);
        b.exit();
        let k = b.finish().unwrap();
        let p = placement(&k);
        let def_x = InsnRef {
            block: regless_isa::BlockId(0),
            idx: 0,
        };
        // x is read by one instruction at distance 1 and dead after.
        assert_eq!(p.def_level(def_x), RfhLevel::Lrf);
    }

    #[test]
    fn value_crossing_blocks_goes_to_mrf() {
        let mut b = KernelBuilder::new("mrf");
        let next = b.new_block();
        let x = b.movi(1);
        b.jmp(next);
        b.select(next);
        let y = b.iadd(x, x);
        b.st_global(y, y);
        b.exit();
        let k = b.finish().unwrap();
        let p = placement(&k);
        let def_x = InsnRef {
            block: regless_isa::BlockId(0),
            idx: 0,
        };
        assert_eq!(p.def_level(def_x), RfhLevel::Mrf);
        let use_x = InsnRef {
            block: next,
            idx: 0,
        };
        assert_eq!(p.read_level(use_x, x), RfhLevel::Mrf);
    }

    #[test]
    fn nearby_multi_use_goes_to_rfc() {
        let mut b = KernelBuilder::new("rfc");
        let x = b.movi(1);
        let a = b.iadd(x, x);
        let c = b.imul(x, a);
        b.st_global(c, c);
        b.exit();
        let k = b.finish().unwrap();
        let p = placement(&k);
        let def_x = InsnRef {
            block: regless_isa::BlockId(0),
            idx: 0,
        };
        assert_eq!(p.def_level(def_x), RfhLevel::Rfc);
    }

    #[test]
    fn most_reads_filtered_in_compute_kernel() {
        let mut b = KernelBuilder::new("filter");
        let mut v = b.movi(3);
        for _ in 0..20 {
            v = b.iadd(v, v);
        }
        b.st_global(v, v);
        b.exit();
        let k = b.finish().unwrap();
        let p = placement(&k);
        assert!(p.non_mrf_read_fraction() > 0.7);
    }
}
