//! Consistent-hash assignment of work units to workers.
//!
//! The coordinator prefers to hand each work unit to the worker its
//! fingerprint hashes to on a consistent-hash ring. The point is cache
//! affinity, not correctness: a worker that repeatedly claims the same
//! partition of the sweep space keeps its own disk cache hot and disjoint
//! from its peers, so a re-run (or a retry after a crash) replays instead
//! of re-simulating. When a worker's own partition is drained it *steals*
//! from whatever is left — assignment is a preference the claim loop
//! consults, never a constraint.
//!
//! Each worker contributes [`VNODES`] virtual points so the partition
//! stays balanced with a handful of workers, and membership changes move
//! only the units that hashed to the departed worker's arcs.

use std::collections::BTreeMap;

/// Virtual points per worker on the ring. 64 keeps the largest partition
/// within a few percent of the mean for small clusters while the ring
/// stays tiny (a 16-worker ring is 1024 points).
pub const VNODES: usize = 64;

/// FNV-1a 64-bit — the same dependency-free hash the sweep cache uses for
/// fingerprints, applied here to ring points.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer. FNV-1a alone clusters on the short, similar
/// strings vnode labels are made of ("w0#1", "w0#2", …), which skews ring
/// partitions badly; one round of avalanche mixing restores uniformity.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over worker names.
#[derive(Clone, Debug, Default)]
pub struct HashRing {
    /// Ring position → worker name. `BTreeMap` gives the clockwise
    /// successor lookup directly.
    points: BTreeMap<u64, String>,
    workers: usize,
}

impl HashRing {
    /// An empty ring.
    pub fn new() -> HashRing {
        HashRing::default()
    }

    /// Add `worker`'s virtual points. Adding a present worker is a no-op.
    pub fn add(&mut self, worker: &str) {
        if self.contains(worker) {
            return;
        }
        for v in 0..VNODES {
            let point = mix64(fnv1a64(format!("{worker}#{v}").as_bytes()));
            // A point collision between two workers is astronomically
            // unlikely but would silently drop a vnode; first writer wins
            // and balance barely notices.
            self.points
                .entry(point)
                .or_insert_with(|| worker.to_string());
        }
        self.workers += 1;
    }

    /// Remove `worker`'s virtual points (a reaped worker leaves the ring).
    pub fn remove(&mut self, worker: &str) {
        let before = self.points.len();
        self.points.retain(|_, w| w != worker);
        if self.points.len() != before {
            self.workers -= 1;
        }
    }

    /// Whether `worker` is on the ring.
    pub fn contains(&self, worker: &str) -> bool {
        self.points.values().any(|w| w == worker)
    }

    /// Workers currently on the ring.
    pub fn len(&self) -> usize {
        self.workers
    }

    /// Whether the ring has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers == 0
    }

    /// The worker `key` hashes to: the first ring point clockwise from
    /// `key`, wrapping. `None` on an empty ring.
    pub fn assign(&self, key: u64) -> Option<&str> {
        let key = mix64(key);
        self.points
            .range(key..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, w)| w.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic_and_total() {
        let mut ring = HashRing::new();
        for w in ["w0", "w1", "w2", "w3"] {
            ring.add(w);
        }
        assert_eq!(ring.len(), 4);
        for key in 0..1000u64 {
            let k = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            assert_eq!(ring.assign(k).unwrap(), ring.assign(k).unwrap());
        }
        assert!(HashRing::new().assign(42).is_none());
    }

    #[test]
    fn vnodes_keep_partitions_roughly_balanced() {
        let mut ring = HashRing::new();
        let workers = ["w0", "w1", "w2", "w3"];
        for w in workers {
            ring.add(w);
        }
        let mut counts = std::collections::HashMap::new();
        let n = 4000u64;
        for i in 0..n {
            let key = fnv1a64(format!("unit-{i}").as_bytes());
            *counts
                .entry(ring.assign(key).unwrap().to_string())
                .or_insert(0u64) += 1;
        }
        let mean = n / workers.len() as u64;
        for w in workers {
            let c = counts.get(w).copied().unwrap_or(0);
            // Within 2x of the mean is ample for a cache-affinity hint.
            assert!(c > mean / 2 && c < mean * 2, "{w} got {c} of {n}");
        }
    }

    #[test]
    fn removing_a_worker_moves_only_its_partition() {
        let mut ring = HashRing::new();
        for w in ["w0", "w1", "w2", "w3"] {
            ring.add(w);
        }
        let keys: Vec<u64> = (0..2000u64)
            .map(|i| fnv1a64(format!("unit-{i}").as_bytes()))
            .collect();
        let before: Vec<String> = keys
            .iter()
            .map(|&k| ring.assign(k).unwrap().to_string())
            .collect();
        ring.remove("w2");
        assert_eq!(ring.len(), 3);
        assert!(!ring.contains("w2"));
        for (key, owner) in keys.iter().zip(&before) {
            let now = ring.assign(*key).unwrap();
            if owner != "w2" {
                assert_eq!(now, owner, "survivor partitions must not move");
            } else {
                assert_ne!(now, "w2");
            }
        }
    }

    #[test]
    fn add_is_idempotent() {
        let mut ring = HashRing::new();
        ring.add("w0");
        ring.add("w0");
        assert_eq!(ring.len(), 1);
        ring.remove("w0");
        assert!(ring.is_empty());
        // Removing an absent worker is a no-op, not an underflow.
        ring.remove("w0");
        assert!(ring.is_empty());
    }
}
