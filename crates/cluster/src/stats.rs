//! Cluster run summaries — the rows `BENCH_cluster.json` and the CLI
//! footer are built from.

use regless_json::{Json, ToJson};

/// Everything a finished (or drained) cluster run reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterSummary {
    /// Distinct workers that ever claimed work.
    pub workers_seen: u64,
    /// Workers declared dead by the liveness sweep.
    pub workers_reaped: u64,
    /// Work units in the sweep space.
    pub units_total: u64,
    /// Units with a merged result.
    pub units_done: u64,
    /// `claim` requests answered with a unit.
    pub claims: u64,
    /// `claim` requests answered with a wait hint (nothing pending, sweep
    /// not yet complete).
    pub waits: u64,
    /// `result` requests accepted and merged.
    pub results: u64,
    /// `result` requests for already-done units (a reassigned unit's
    /// original owner finishing late) — acknowledged and discarded.
    pub duplicate_results: u64,
    /// In-flight units moved back to pending after their worker died.
    pub reassignments: u64,
    /// `heartbeat` requests handled.
    pub heartbeats: u64,
    /// Cluster requests refused for a protocol-version mismatch.
    pub version_rejects: u64,
    /// Simulated cycles across merged results (the cluster-wide
    /// simulated-cycles/sec numerator).
    pub cycles_done: u64,
    /// Coordinator wall-clock for the sweep, filled in by the front door.
    pub wall_seconds: f64,
}

impl ClusterSummary {
    /// Whether every unit has a merged result.
    pub fn complete(&self) -> bool {
        self.units_done == self.units_total
    }

    /// JSON for `BENCH_cluster.json` and `regless cluster --json`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workers_seen".into(), ToJson::to_json(&self.workers_seen)),
            (
                "workers_reaped".into(),
                ToJson::to_json(&self.workers_reaped),
            ),
            ("units_total".into(), ToJson::to_json(&self.units_total)),
            ("units_done".into(), ToJson::to_json(&self.units_done)),
            ("claims".into(), ToJson::to_json(&self.claims)),
            ("waits".into(), ToJson::to_json(&self.waits)),
            ("results".into(), ToJson::to_json(&self.results)),
            (
                "duplicate_results".into(),
                ToJson::to_json(&self.duplicate_results),
            ),
            ("reassignments".into(), ToJson::to_json(&self.reassignments)),
            ("heartbeats".into(), ToJson::to_json(&self.heartbeats)),
            (
                "version_rejects".into(),
                ToJson::to_json(&self.version_rejects),
            ),
            ("cycles_done".into(), ToJson::to_json(&self.cycles_done)),
            ("wall_seconds".into(), ToJson::to_json(&self.wall_seconds)),
            ("complete".into(), Json::Bool(self.complete())),
        ])
    }

    /// Human-readable footer for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cluster sweep: {}/{} units in {:.2} s ({} workers",
            self.units_done, self.units_total, self.wall_seconds, self.workers_seen
        ));
        if self.workers_reaped > 0 {
            out.push_str(&format!(", {} reaped", self.workers_reaped));
        }
        out.push_str(")\n");
        out.push_str(&format!(
            "  claims {} (+{} waits), results {} (+{} duplicates), reassignments {}, heartbeats {}\n",
            self.claims,
            self.waits,
            self.results,
            self.duplicate_results,
            self.reassignments,
            self.heartbeats
        ));
        if self.version_rejects > 0 {
            out.push_str(&format!(
                "  WARNING: {} requests refused for protocol version mismatch\n",
                self.version_rejects
            ));
        }
        if !self.complete() {
            out.push_str("  WARNING: sweep incomplete (drained early?)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_json_round_trips_and_flags_completion() {
        let s = ClusterSummary {
            workers_seen: 3,
            workers_reaped: 1,
            units_total: 16,
            units_done: 16,
            claims: 17,
            waits: 2,
            results: 16,
            duplicate_results: 1,
            reassignments: 2,
            heartbeats: 40,
            version_rejects: 0,
            cycles_done: 123_456,
            wall_seconds: 1.5,
        };
        assert!(s.complete());
        let parsed = Json::parse(&s.to_json().to_string_compact()).unwrap();
        let done: u64 =
            regless_json::FromJson::from_json(parsed.field("units_done").unwrap()).unwrap();
        assert_eq!(done, 16);
        assert_eq!(parsed.field("complete").unwrap(), &Json::Bool(true));

        let text = s.render();
        assert!(text.contains("16/16 units"), "{text}");
        assert!(text.contains("1 reaped"), "{text}");
        assert!(!text.contains("WARNING"), "{text}");

        let incomplete = ClusterSummary { units_done: 3, ..s };
        assert!(!incomplete.complete());
        assert!(incomplete.render().contains("WARNING"), "incomplete warns");
    }
}
