//! The cluster coordinator: hands out work units, merges results, and
//! survives worker deaths.
//!
//! One thread accepts connections and spawns a thread per client (the
//! same shape as the serve layer). All scheduling state lives in one
//! mutex-guarded scheduling board; every request handler reaps dead workers
//! before acting, so liveness needs no dedicated timer thread — the
//! surviving workers' claim/heartbeat traffic drives the sweep forward.
//!
//! Fault-tolerance invariants:
//!
//! - A unit is in exactly one of `pending`, `in_flight`, or `done`.
//! - A reaped worker's in-flight units return to the *front* of pending
//!   (they have been waiting longest) and survivors steal them on their
//!   next claim.
//! - A `result` for a unit that is already done is acknowledged
//!   (`accepted: false`) and discarded — reassignment plus a slow
//!   original owner produces duplicates by design, and the sweep cache's
//!   atomic, fingerprint-keyed writes make the merge idempotent.

use crate::assignment::HashRing;
use crate::liveness::Liveness;
use crate::stats::ClusterSummary;
use crate::WorkUnit;
use regless_bench::sweep::SweepEngine;
use regless_json::{FromJson, Json, ToJson};
use regless_serve::proto::{
    check_protocol_version, read_json_line, write_json_line, ErrorBody, ErrorCode, Request,
    RequestKind, Response, PROTOCOL_VERSION,
};
use regless_sim::RunReport;
use regless_telemetry::obs::{
    epoch_us, format_bytes, format_trace_id, gen_trace_id, parse_trace_id, EventLog, LogLevel,
    MetricsSnapshot, ProgressSnapshot, Span, SpanLog, DEFAULT_LOG_CAPACITY,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Coordinator tunables.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Silence after which a worker is declared dead and its in-flight
    /// units are reassigned.
    pub liveness_timeout: Duration,
    /// Stream a per-wake progress line (done/total, units/s, cycles/s,
    /// ETA) to stderr while [`CoordinatorHandle::wait`] blocks.
    pub progress: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            addr: crate::DEFAULT_CLUSTER_ADDR.to_string(),
            liveness_timeout: Duration::from_secs(60),
            progress: false,
        }
    }
}

impl CoordinatorConfig {
    /// The heartbeat cadence workers are told in claim responses: a third
    /// of the liveness timeout, so two missed beats still keep a worker
    /// alive.
    pub fn heartbeat_ms(&self) -> u64 {
        (self.liveness_timeout.as_millis() as u64 / 3).max(1)
    }

    /// The wait hint for claims that found nothing pending. This is a
    /// poll interval, not a liveness quantity: a claim is one cheap JSONL
    /// exchange, and each one doubles as the traffic that reaps a dead
    /// peer — so idle workers poll at most twice a second and pick up a
    /// reassigned unit (or the final `done`) promptly.
    fn wait_ms(&self) -> u64 {
        (self.liveness_timeout.as_millis() as u64 / 2).clamp(1, 500)
    }
}

/// Component label on the coordinator's log events and metrics.
const OBS_PROCESS: &str = "coordinator";

/// Monotone counters the summary reports. (Reaped workers are counted by
/// [`Liveness::reaped_total`], the table that actually does the reaping.)
#[derive(Default)]
struct Counters {
    claims: u64,
    waits: u64,
    results: u64,
    duplicate_results: u64,
    reassignments: u64,
    heartbeats: u64,
    version_rejects: u64,
    /// Simulated cycles across merged results — the numerator of the
    /// cluster-wide simulated-cycles/sec progress rate.
    cycles_done: u64,
}

/// Book-keeping for one unit currently assigned to a worker: who holds
/// it, when the claim was handed out (epoch µs, for the claim→result
/// span), and the trace id stamped on the claim response so the worker's
/// result — and any spans it produces — join the same timeline.
struct InFlightEntry {
    worker: String,
    claimed_us: u64,
    trace_id: u64,
}

/// All scheduling state, guarded by one mutex.
struct Board {
    /// Every unit of the sweep space, by stable id.
    units: HashMap<u64, WorkUnit>,
    /// Unit ids not yet claimed (front = next handed out).
    pending: VecDeque<u64>,
    /// Unit id → claim book-keeping for the worker simulating it.
    in_flight: HashMap<u64, InFlightEntry>,
    /// Unit ids with a merged result.
    done: HashSet<u64>,
    ring: HashRing,
    live: Liveness,
    workers_seen: HashSet<String>,
    counters: Counters,
    /// Structured events (worker join/reap, drain) for `obs --tail`.
    log: EventLog,
    /// Claim→result spans, one per merged unit, for `--trace-out`.
    spans: SpanLog,
    /// Set by `shutdown`: stop handing out units; claims answer `done`.
    draining: bool,
}

impl Board {
    /// Reap workers whose deadline passed and move their in-flight units
    /// back to pending. Called at the top of every request handler.
    fn reap_dead(&mut self, now: Instant) {
        for worker in self.live.reap(now) {
            self.ring.remove(&worker);
            let orphaned: Vec<u64> = self
                .in_flight
                .iter()
                .filter(|(_, e)| e.worker == worker)
                .map(|(&id, _)| id)
                .collect();
            self.log.log(
                LogLevel::Warn,
                OBS_PROCESS,
                "worker reaped",
                None,
                &[
                    ("worker", worker.clone()),
                    ("orphaned_units", orphaned.len().to_string()),
                ],
            );
            for id in orphaned {
                self.in_flight.remove(&id);
                // Front of the queue: these have been waiting longest.
                self.pending.push_front(id);
                self.counters.reassignments += 1;
            }
        }
    }

    /// Record traffic from `worker` (joins it on first contact).
    fn touch(&mut self, worker: &str, now: Instant) {
        self.live.touch(worker, now);
        self.ring.add(worker);
        if self.workers_seen.insert(worker.to_string()) {
            self.log.log(
                LogLevel::Info,
                OBS_PROCESS,
                "worker joined",
                None,
                &[("worker", worker.to_string())],
            );
        }
    }

    /// Pick the next unit for `worker`: its own consistent-hash partition
    /// first, then steal the oldest pending unit. Each hand-out gets a
    /// fresh trace id, returned so the claim response carries it.
    fn pick(&mut self, worker: &str) -> Option<(WorkUnit, u64)> {
        let own = self
            .pending
            .iter()
            .position(|id| self.ring.assign(*id) == Some(worker));
        let idx = own.unwrap_or(0);
        let id = self.pending.remove(idx)?;
        let trace_id = gen_trace_id();
        self.in_flight.insert(
            id,
            InFlightEntry {
                worker: worker.to_string(),
                claimed_us: epoch_us(),
                trace_id,
            },
        );
        Some((self.units[&id].clone(), trace_id))
    }

    fn complete(&self) -> bool {
        self.done.len() == self.units.len()
    }

    fn summary(&self) -> ClusterSummary {
        ClusterSummary {
            workers_seen: self.workers_seen.len() as u64,
            workers_reaped: self.live.reaped_total(),
            units_total: self.units.len() as u64,
            units_done: self.done.len() as u64,
            claims: self.counters.claims,
            waits: self.counters.waits,
            results: self.counters.results,
            duplicate_results: self.counters.duplicate_results,
            reassignments: self.counters.reassignments,
            heartbeats: self.counters.heartbeats,
            version_rejects: self.counters.version_rejects,
            cycles_done: self.counters.cycles_done,
            wall_seconds: 0.0,
        }
    }

    /// The live progress view over this board, for the `--progress`
    /// stream and the metrics surface.
    fn progress(&self, elapsed_secs: f64) -> ProgressSnapshot {
        ProgressSnapshot {
            done: self.done.len() as u64,
            total: self.units.len() as u64,
            cycles: self.counters.cycles_done,
            elapsed_secs,
        }
    }
}

/// State shared by the accept thread and the connection threads.
struct Shared {
    config: CoordinatorConfig,
    engine: Arc<SweepEngine>,
    board: Mutex<Board>,
    /// Signaled when the sweep completes or a drain begins.
    done_cv: Condvar,
    accept_closed: AtomicBool,
    started: Instant,
}

/// Namespace for [`Coordinator::start`].
pub struct Coordinator;

/// A running coordinator: its bound address plus the handles needed to
/// wait for and stop it.
pub struct CoordinatorHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Coordinator {
    /// Bind, start the accept thread, and return a handle. Results are
    /// merged into `engine` (memo table + its `results/cache/...` disk
    /// layout), so everything that reads the sweep cache consumes cluster
    /// output unchanged.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(
        config: CoordinatorConfig,
        engine: Arc<SweepEngine>,
        units: Vec<WorkUnit>,
    ) -> std::io::Result<CoordinatorHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let mut board = Board {
            units: HashMap::new(),
            pending: VecDeque::new(),
            in_flight: HashMap::new(),
            done: HashSet::new(),
            ring: HashRing::new(),
            live: Liveness::new(config.liveness_timeout),
            workers_seen: HashSet::new(),
            counters: Counters::default(),
            log: EventLog::new(DEFAULT_LOG_CAPACITY),
            spans: SpanLog::new(DEFAULT_LOG_CAPACITY),
            draining: false,
        };
        for unit in units {
            // Deduplicate (canonically equal variants share an id) and
            // skip units already merged — a warm cache means instant done.
            if board.units.contains_key(&unit.id) {
                continue;
            }
            if engine.lookup(&unit.bench, unit.variant()).is_some() {
                board.done.insert(unit.id);
            } else {
                board.pending.push_back(unit.id);
            }
            board.units.insert(unit.id, unit);
        }
        let shared = Arc::new(Shared {
            config,
            engine,
            board: Mutex::new(board),
            done_cv: Condvar::new(),
            accept_closed: AtomicBool::new(false),
            started: Instant::now(),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("regless-coord-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn coordinator accept thread")
        };
        Ok(CoordinatorHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }
}

impl CoordinatorHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until every unit is merged, a drain begins, or `timeout`
    /// passes. Returns whether the sweep is complete.
    pub fn wait(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut board = self.shared.board.lock().expect("board poisoned");
        loop {
            if board.complete() || board.draining {
                return board.complete();
            }
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now) else {
                return board.complete();
            };
            // Wake periodically: a fully-dead cluster sends no request to
            // trigger the reap-on-traffic path, and `wait` is where the
            // front door would otherwise hang forever. With `--progress`
            // the wake doubles as the stream cadence, so cap it at 1 s.
            let mut tick = remaining
                .min(self.shared.config.liveness_timeout / 2)
                .max(Duration::from_millis(10));
            if self.shared.config.progress {
                tick = tick.min(Duration::from_secs(1));
            }
            let (guard, _) = self
                .shared
                .done_cv
                .wait_timeout(board, tick)
                .expect("done cv poisoned");
            board = guard;
            board.reap_dead(Instant::now());
            if self.shared.config.progress {
                let snap = board.progress(self.shared.started.elapsed().as_secs_f64());
                eprintln!("[cluster] {}", snap.render());
            }
        }
    }

    /// Snapshot the run summary (wall clock not filled in — the front
    /// door owns the stopwatch).
    pub fn summary(&self) -> ClusterSummary {
        self.shared.board.lock().expect("board poisoned").summary()
    }

    /// Snapshot the claim→result spans recorded so far, one per merged
    /// unit, attributed to the worker that delivered it. The front door's
    /// `--trace-out` writes these through [`regless_telemetry::chrome_spans`].
    pub fn spans(&self) -> Vec<Span> {
        self.shared
            .board
            .lock()
            .expect("board poisoned")
            .spans
            .snapshot()
    }

    /// Begin draining, exactly as a `shutdown` request would: stop
    /// handing out units and tell claiming workers the sweep is over.
    pub fn drain(&self) {
        let mut board = self.shared.board.lock().expect("board poisoned");
        board.draining = true;
        self.shared.done_cv.notify_all();
    }

    /// Stop the accept thread and release the port. Connection threads
    /// die with their clients.
    pub fn stop(mut self) {
        self.shared.accept_closed.store(true, Ordering::Release);
        // The accept thread is parked in `accept`; a throwaway connection
        // wakes it so it can observe the closed flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.accept_closed.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Request-response protocol; result requests span TCP segments
        // and would otherwise stall ~40 ms on Nagle + delayed ACK.
        let _ = stream.set_nodelay(true);
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("regless-coord-conn".to_string())
            .spawn(move || connection_loop(stream, &shared));
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        let json = match read_json_line(&mut reader) {
            Ok(Some(v)) => v,
            Ok(None) | Err(_) => return,
        };
        let id = json
            .field_opt("id")
            .ok()
            .flatten()
            .and_then(|v| u64::from_json(v).ok())
            .unwrap_or(0);
        let response = match Request::from_json(&json) {
            Ok(req) => handle_request(&req, shared),
            Err(e) => Response::failure(id, ErrorBody::new(ErrorCode::BadRequest, e.message)),
        };
        if write_json_line(&mut writer, &response.to_json()).is_err() {
            return;
        }
    }
}

fn handle_request(req: &Request, shared: &Arc<Shared>) -> Response {
    match req.kind {
        RequestKind::Claim => handle_claim(req, shared),
        RequestKind::Result => handle_result(req, shared),
        RequestKind::Heartbeat => handle_heartbeat(req, shared),
        RequestKind::Stats => handle_stats(req, shared),
        RequestKind::Metrics => handle_metrics(req, shared),
        RequestKind::Shutdown => handle_shutdown(req, shared),
        RequestKind::Run | RequestKind::Profile | RequestKind::Report => Response::failure(
            req.id,
            ErrorBody::new(
                ErrorCode::BadRequest,
                "this is a cluster coordinator; run/profile/report belong to `regless serve`",
            ),
        ),
    }
}

/// Version-check a cluster request and resolve its worker name.
fn admit_worker<'a>(req: &'a Request, shared: &Arc<Shared>) -> Result<&'a str, Response> {
    if let Err(e) = check_protocol_version(req) {
        shared
            .board
            .lock()
            .expect("board poisoned")
            .counters
            .version_rejects += 1;
        return Err(Response::failure(req.id, e));
    }
    match req.worker.as_deref() {
        Some(w) if !w.is_empty() => Ok(w),
        _ => Err(Response::failure(
            req.id,
            ErrorBody::new(ErrorCode::BadRequest, "cluster request names no worker"),
        )),
    }
}

fn handle_claim(req: &Request, shared: &Arc<Shared>) -> Response {
    let worker = match admit_worker(req, shared) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let now = Instant::now();
    let mut board = shared.board.lock().expect("board poisoned");
    board.touch(worker, now);
    board.reap_dead(now);
    if board.complete() || board.draining {
        return Response::success(
            req.id,
            Json::Obj(vec![
                ("kind".into(), Json::Str("claim".into())),
                ("done".into(), Json::Bool(true)),
            ]),
        );
    }
    if let Some((unit, trace_id)) = board.pick(worker) {
        board.counters.claims += 1;
        let (design, capacity, compressor) = unit.wire();
        return Response::success(
            req.id,
            Json::Obj(vec![
                ("kind".into(), Json::Str("claim".into())),
                ("unit".into(), ToJson::to_json(&unit.id)),
                ("kernel".into(), Json::Str(unit.bench.clone())),
                ("design".into(), Json::Str(design.to_string())),
                ("capacity".into(), ToJson::to_json(&capacity)),
                ("compressor".into(), Json::Bool(compressor)),
                (
                    "heartbeat_ms".into(),
                    ToJson::to_json(&shared.config.heartbeat_ms()),
                ),
                // The worker echoes this on its result request so the
                // unit's whole life shares one timeline.
                ("trace_id".into(), Json::Str(format_trace_id(trace_id))),
            ]),
        );
    }
    // Nothing pending but the sweep is not complete: everything is in
    // flight on other workers. Tell the claimer to come back — its next
    // claim doubles as the traffic that reaps a dead peer.
    board.counters.waits += 1;
    Response::success(
        req.id,
        Json::Obj(vec![
            ("kind".into(), Json::Str("claim".into())),
            ("wait_ms".into(), ToJson::to_json(&shared.config.wait_ms())),
        ]),
    )
}

fn handle_result(req: &Request, shared: &Arc<Shared>) -> Response {
    let worker = match admit_worker(req, shared) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let Some(unit_id) = req.unit else {
        return Response::failure(
            req.id,
            ErrorBody::new(ErrorCode::BadRequest, "result names no unit"),
        );
    };
    let Some(report_json) = req.report.as_ref() else {
        return Response::failure(
            req.id,
            ErrorBody::new(ErrorCode::BadRequest, "result carries no report"),
        );
    };
    let report = match RunReport::from_json(report_json) {
        Ok(r) => Arc::new(r),
        Err(e) => {
            return Response::failure(
                req.id,
                ErrorBody::new(
                    ErrorCode::BadRequest,
                    format!("unparseable report for unit {unit_id:x}: {}", e.message),
                ),
            )
        }
    };
    let now = Instant::now();
    let unit = {
        let mut board = shared.board.lock().expect("board poisoned");
        board.touch(worker, now);
        board.reap_dead(now);
        let Some(unit) = board.units.get(&unit_id).cloned() else {
            return Response::failure(
                req.id,
                ErrorBody::new(
                    ErrorCode::BadRequest,
                    format!("unit {unit_id:x} is not part of this sweep"),
                ),
            );
        };
        if board.done.contains(&unit_id) {
            // A reassigned unit's original owner finished late. The merge
            // is idempotent (fingerprint-keyed, atomic), so acknowledge.
            board.counters.duplicate_results += 1;
            return accepted(req.id, false);
        }
        unit
    };
    // Merge outside the board lock: `insert` writes the cache file to
    // disk, and holding the lock across it would serialize every result
    // delivery (and block claims) cluster-wide. The write is idempotent
    // and atomic, so a concurrent duplicate delivery is harmless.
    let cycles = report.cycles;
    shared.engine.insert(&unit.bench, unit.variant(), report);
    let mut board = shared.board.lock().expect("board poisoned");
    if board.done.contains(&unit_id) {
        // A duplicate raced us between the two lock scopes.
        board.counters.duplicate_results += 1;
        return accepted(req.id, false);
    }
    // The unit may be in flight (normal), or back in pending after a
    // reassignment the slow owner outlived — accept either way.
    let entry = board.in_flight.remove(&unit_id);
    board.pending.retain(|&id| id != unit_id);
    board.done.insert(unit_id);
    board.counters.results += 1;
    board.counters.cycles_done += cycles;
    if let Some(entry) = entry {
        // The claim→result interval as one span, attributed to the
        // delivering worker. A result echoing the claim's trace_id keeps
        // it; otherwise the id generated at hand-out time is used.
        let end = epoch_us();
        let trace_id = req
            .trace_id
            .as_deref()
            .and_then(parse_trace_id)
            .unwrap_or(entry.trace_id);
        board.spans.push(
            Span::new(
                trace_id,
                "unit",
                format!("worker:{worker}"),
                entry.claimed_us,
                end.saturating_sub(entry.claimed_us),
            )
            .arg("unit", format!("{unit_id:x}"))
            .arg("kernel", unit.bench.clone()),
        );
    }
    if board.complete() {
        shared.done_cv.notify_all();
    }
    accepted(req.id, true)
}

fn accepted(id: u64, accepted: bool) -> Response {
    Response::success(
        id,
        Json::Obj(vec![
            ("kind".into(), Json::Str("result".into())),
            ("accepted".into(), Json::Bool(accepted)),
        ]),
    )
}

fn handle_heartbeat(req: &Request, shared: &Arc<Shared>) -> Response {
    let worker = match admit_worker(req, shared) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let now = Instant::now();
    let mut board = shared.board.lock().expect("board poisoned");
    board.touch(worker, now);
    board.reap_dead(now);
    board.counters.heartbeats += 1;
    Response::success(
        req.id,
        Json::Obj(vec![
            ("kind".into(), Json::Str("heartbeat".into())),
            ("known".into(), Json::Bool(true)),
        ]),
    )
}

fn handle_stats(req: &Request, shared: &Arc<Shared>) -> Response {
    let mut board = shared.board.lock().expect("board poisoned");
    board.reap_dead(Instant::now());
    let uptime_ms = shared.started.elapsed().as_millis() as u64;
    let mut fields = vec![
        ("kind".into(), Json::Str("stats".into())),
        ("role".into(), Json::Str("coordinator".into())),
        ("uptime_ms".into(), ToJson::to_json(&uptime_ms)),
        (
            "protocol_version".into(),
            Json::Int(i64::from(PROTOCOL_VERSION)),
        ),
        (
            "units_total".into(),
            ToJson::to_json(&(board.units.len() as u64)),
        ),
        (
            "units_done".into(),
            ToJson::to_json(&(board.done.len() as u64)),
        ),
        (
            "units_pending".into(),
            ToJson::to_json(&(board.pending.len() as u64)),
        ),
        (
            "units_in_flight".into(),
            ToJson::to_json(&(board.in_flight.len() as u64)),
        ),
        (
            "workers_alive".into(),
            ToJson::to_json(&(board.live.alive() as u64)),
        ),
        (
            "workers_seen".into(),
            ToJson::to_json(&(board.workers_seen.len() as u64)),
        ),
        (
            "workers_reaped".into(),
            ToJson::to_json(&board.live.reaped_total()),
        ),
        ("claims".into(), ToJson::to_json(&board.counters.claims)),
        ("waits".into(), ToJson::to_json(&board.counters.waits)),
        ("results".into(), ToJson::to_json(&board.counters.results)),
        (
            "cycles_done".into(),
            ToJson::to_json(&board.counters.cycles_done),
        ),
        (
            "duplicate_results".into(),
            ToJson::to_json(&board.counters.duplicate_results),
        ),
        (
            "reassignments".into(),
            ToJson::to_json(&board.counters.reassignments),
        ),
        (
            "heartbeats".into(),
            ToJson::to_json(&board.counters.heartbeats),
        ),
        (
            "version_rejects".into(),
            ToJson::to_json(&board.counters.version_rejects),
        ),
        ("draining".into(), Json::Bool(board.draining)),
    ];
    if let Some((entries, bytes)) = shared.engine.cache_dir_totals() {
        fields.push(("cache_entries".into(), ToJson::to_json(&entries)));
        fields.push(("cache_bytes".into(), ToJson::to_json(&bytes)));
        fields.push(("cache_size".into(), Json::Str(format_bytes(bytes))));
    }
    Response::success(req.id, Json::Obj(fields))
}

fn handle_metrics(req: &Request, shared: &Arc<Shared>) -> Response {
    let mut board = shared.board.lock().expect("board poisoned");
    board.reap_dead(Instant::now());
    let c = &board.counters;
    let mut snap = MetricsSnapshot::new(OBS_PROCESS);
    snap.counter(
        "regless_coord_claims_total",
        "Units handed out to workers",
        c.claims,
    );
    snap.counter(
        "regless_coord_waits_total",
        "Claims answered with a wait hint",
        c.waits,
    );
    snap.counter(
        "regless_coord_results_total",
        "Results merged into the sweep cache",
        c.results,
    );
    snap.counter(
        "regless_coord_duplicate_results_total",
        "Late duplicate results acknowledged and discarded",
        c.duplicate_results,
    );
    snap.counter(
        "regless_coord_reassignments_total",
        "Units returned to pending after their worker was reaped",
        c.reassignments,
    );
    snap.counter(
        "regless_coord_heartbeats_total",
        "Standalone heartbeat requests received",
        c.heartbeats,
    );
    snap.counter(
        "regless_coord_version_rejects_total",
        "Requests rejected for a protocol version mismatch",
        c.version_rejects,
    );
    snap.counter(
        "regless_coord_workers_reaped_total",
        "Workers declared dead after heartbeat silence",
        board.live.reaped_total(),
    );
    snap.counter(
        "regless_coord_cycles_done_total",
        "Simulated cycles across merged results",
        c.cycles_done,
    );
    snap.counter(
        "regless_coord_log_dropped_total",
        "Log events evicted from the bounded ring before export",
        board.log.dropped(),
    );
    snap.gauge(
        "regless_coord_workers_alive",
        "Workers inside their liveness window",
        board.live.alive() as f64,
    );
    snap.gauge(
        "regless_coord_workers_seen",
        "Distinct workers that ever joined",
        board.workers_seen.len() as f64,
    );
    snap.gauge(
        "regless_coord_units_pending",
        "Units waiting to be claimed",
        board.pending.len() as f64,
    );
    snap.gauge(
        "regless_coord_units_in_flight",
        "Units currently claimed by a worker",
        board.in_flight.len() as f64,
    );
    snap.gauge(
        "regless_coord_units_done",
        "Units with a merged result",
        board.done.len() as f64,
    );
    snap.gauge(
        "regless_coord_units_total",
        "Units in the sweep space",
        board.units.len() as f64,
    );
    snap.gauge(
        "regless_coord_uptime_seconds",
        "Seconds since the coordinator started",
        shared.started.elapsed().as_secs_f64(),
    );
    if let Some((_, bytes)) = shared.engine.cache_dir_totals() {
        snap.gauge(
            "regless_coord_cache_bytes",
            "Bytes in the sweep's disk cache",
            bytes as f64,
        );
    }
    // Host-side self-profile of the merge engine's pipeline (empty, and
    // free, unless REGLESS_SELFPROF is set).
    shared.engine.self_profiler().fold_into(&mut snap, "sweep");
    let events: Vec<Json> = board
        .log
        .snapshot_since(None)
        .iter()
        .map(|e| e.to_json())
        .collect();
    let spans: Vec<Json> = board.spans.snapshot().iter().map(|s| s.to_json()).collect();
    let payload = Json::Obj(vec![
        ("kind".into(), Json::Str("metrics".into())),
        ("metrics".into(), snap.to_json()),
        ("log".into(), Json::Arr(events)),
        ("log_total".into(), ToJson::to_json(&board.log.total())),
        ("spans".into(), Json::Arr(spans)),
    ]);
    Response::success(req.id, payload)
}

fn handle_shutdown(req: &Request, shared: &Arc<Shared>) -> Response {
    let mut board = shared.board.lock().expect("board poisoned");
    if !board.draining {
        board
            .log
            .log(LogLevel::Info, OBS_PROCESS, "drain requested", None, &[]);
    }
    board.draining = true;
    shared.done_cv.notify_all();
    Response::success(
        req.id,
        Json::Obj(vec![
            ("kind".into(), Json::Str("shutdown".into())),
            ("draining".into(), Json::Bool(true)),
            (
                "units_done".into(),
                ToJson::to_json(&(board.done.len() as u64)),
            ),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_bench::sweep::SweepMode;
    use regless_bench::DesignKind;
    use regless_serve::Client;

    fn test_units() -> Vec<WorkUnit> {
        crate::units_for(
            &["rodinia/nn".to_string(), "rodinia/gaussian".to_string()],
            &[DesignKind::Baseline],
        )
    }

    fn start(timeout: Duration) -> (CoordinatorHandle, Arc<SweepEngine>) {
        let engine = Arc::new(SweepEngine::with_config(None, SweepMode::Normal));
        let handle = Coordinator::start(
            CoordinatorConfig {
                addr: "127.0.0.1:0".to_string(),
                liveness_timeout: timeout,
                progress: false,
            },
            Arc::clone(&engine),
            test_units(),
        )
        .expect("start coordinator");
        (handle, engine)
    }

    #[test]
    fn claims_hand_out_each_unit_once_then_wait_then_done() {
        let (handle, engine) = start(Duration::from_secs(60));
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();

        // Two units: two claims hand them out.
        let mut claimed = Vec::new();
        for i in 0..2 {
            let resp = client.request(&Request::claim(i, "w0")).unwrap();
            assert!(resp.ok);
            let unit: u64 = u64::from_json(resp.payload_field("unit").unwrap()).unwrap();
            let kernel: String = String::from_json(resp.payload_field("kernel").unwrap()).unwrap();
            assert!(resp.payload_field("heartbeat_ms").is_some());
            // Every hand-out is stamped with a parseable trace id.
            let Some(Json::Str(tid)) = resp.payload_field("trace_id") else {
                panic!("claim carries a trace_id");
            };
            assert!(regless_telemetry::parse_trace_id(tid).is_some());
            claimed.push((unit, kernel));
        }
        assert_ne!(claimed[0].0, claimed[1].0);

        // Third claim: everything is in flight → wait hint.
        let resp = client.request(&Request::claim(2, "w0")).unwrap();
        assert!(resp.ok);
        assert!(resp.payload_field("wait_ms").is_some());

        // Deliver both results; the second completes the sweep. Reports
        // come from a throwaway engine (no disk dir) so tests never write
        // into a real cache directory.
        let sim = SweepEngine::with_config(None, SweepMode::Normal);
        for (i, (unit, kernel)) in claimed.iter().enumerate() {
            let report = sim.run(
                kernel,
                regless_bench::sweep::RunVariant::Design(DesignKind::Baseline),
            );
            let mut req = Request::result(10 + i as u64, "w0", *unit, ToJson::to_json(&*report));
            req.kernel = Some(kernel.clone());
            req.design = "baseline".to_string();
            let resp = client.request(&req).unwrap();
            assert!(resp.ok, "{resp:?}");
            assert_eq!(resp.payload_field("accepted"), Some(&Json::Bool(true)));
        }
        assert!(handle.wait(Duration::from_secs(5)), "sweep completes");
        for (_, kernel) in &claimed {
            assert!(
                engine
                    .lookup(
                        kernel,
                        regless_bench::sweep::RunVariant::Design(DesignKind::Baseline)
                    )
                    .is_some(),
                "{kernel} merged into the coordinator's engine"
            );
        }

        // A claim after completion answers done.
        let resp = client.request(&Request::claim(20, "w0")).unwrap();
        assert_eq!(resp.payload_field("done"), Some(&Json::Bool(true)));

        // Duplicate delivery is acknowledged but not accepted.
        let report = sim.run(
            &claimed[0].1,
            regless_bench::sweep::RunVariant::Design(DesignKind::Baseline),
        );
        let mut dup = Request::result(30, "w1", claimed[0].0, ToJson::to_json(&*report));
        dup.kernel = Some(claimed[0].1.clone());
        dup.design = "baseline".to_string();
        let resp = client.request(&dup).unwrap();
        assert!(resp.ok);
        assert_eq!(resp.payload_field("accepted"), Some(&Json::Bool(false)));

        let summary = handle.summary();
        assert_eq!(summary.units_done, 2);
        assert_eq!(summary.duplicate_results, 1);
        assert!(summary.complete());

        // One claim→result span per merged unit, attributed to w0.
        let spans = handle.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.process == "worker:w0"));

        // The metrics request exposes the counters, the structured log,
        // and the spans; the Prometheus rendering is well formed.
        let resp = client
            .request(&Request::control(40, RequestKind::Metrics))
            .unwrap();
        assert!(resp.ok);
        let snap =
            regless_telemetry::MetricsSnapshot::from_json(resp.payload_field("metrics").unwrap())
                .expect("metrics parse");
        assert_eq!(snap.process, "coordinator");
        let results = snap
            .metrics
            .iter()
            .find(|m| m.name == "regless_coord_results_total")
            .expect("results counter");
        assert_eq!(
            results.value,
            regless_telemetry::MetricValue::Counter(2),
            "{snap:?}"
        );
        assert!(regless_telemetry::check_prom_format(&snap.render_prom()).is_ok());
        let Some(Json::Arr(wire_spans)) = resp.payload_field("spans") else {
            panic!("metrics payload carries spans");
        };
        assert_eq!(wire_spans.len(), 2);
        let Some(Json::Arr(log)) = resp.payload_field("log") else {
            panic!("metrics payload carries the log");
        };
        assert!(
            log.iter().any(|e| {
                matches!(e.field("message"), Ok(Json::Str(m)) if m == "worker joined")
            }),
            "join event logged"
        );
        handle.stop();
    }

    #[test]
    fn dead_workers_are_reaped_and_their_units_reassigned() {
        let (handle, _engine) = start(Duration::from_millis(120));
        let addr = handle.addr().to_string();

        // w0 claims a unit and goes silent (connection kept open — only
        // heartbeats count).
        let mut flaky = Client::connect(&addr).unwrap();
        let resp = flaky.request(&Request::claim(1, "w0")).unwrap();
        let stolen: u64 = u64::from_json(resp.payload_field("unit").unwrap()).unwrap();

        // w1 claims the other unit, then keeps claiming: first it is told
        // to wait, and once w0's deadline passes it steals w0's unit.
        let mut steady = Client::connect(&addr).unwrap();
        let resp = steady.request(&Request::claim(2, "w1")).unwrap();
        let own: u64 = u64::from_json(resp.payload_field("unit").unwrap()).unwrap();
        assert_ne!(own, stolen);

        let deadline = Instant::now() + Duration::from_secs(10);
        let reassigned = loop {
            assert!(Instant::now() < deadline, "reassignment never happened");
            let resp = steady.request(&Request::claim(3, "w1")).unwrap();
            if let Some(u) = resp.payload_field("unit") {
                break u64::from_json(u).unwrap();
            }
            assert!(resp.payload_field("wait_ms").is_some(), "{resp:?}");
            std::thread::sleep(Duration::from_millis(40));
        };
        assert_eq!(reassigned, stolen, "w1 inherits w0's in-flight unit");
        let summary = handle.summary();
        assert_eq!(summary.workers_reaped, 1);
        assert_eq!(summary.reassignments, 1);
        handle.stop();
    }

    #[test]
    fn version_mismatch_and_foreign_requests_are_structured_errors() {
        let (handle, _engine) = start(Duration::from_secs(60));
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();

        let mut old = Request::claim(1, "w0");
        old.protocol_version = Some(PROTOCOL_VERSION + 7);
        let resp = client.request(&old).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.error_code(), Some("version_mismatch"));

        let resp = client.request(&Request::run(2, "rodinia/nn")).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.error_code(), Some("bad_request"));

        // Stats works without a version (it is not a cluster RPC).
        let resp = client
            .request(&Request::control(3, RequestKind::Stats))
            .unwrap();
        assert!(resp.ok);
        assert_eq!(
            resp.payload_field("role"),
            Some(&Json::Str("coordinator".into()))
        );
        assert_eq!(
            resp.payload_field("protocol_version"),
            Some(&Json::Int(i64::from(PROTOCOL_VERSION)))
        );
        assert_eq!(handle.summary().version_rejects, 1);
        handle.stop();
    }

    #[test]
    fn shutdown_drains_claims() {
        let (handle, _engine) = start(Duration::from_secs(60));
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();
        let resp = client
            .request(&Request::control(1, RequestKind::Shutdown))
            .unwrap();
        assert!(resp.ok);
        assert_eq!(resp.payload_field("draining"), Some(&Json::Bool(true)));
        let resp = client.request(&Request::claim(2, "w0")).unwrap();
        assert_eq!(resp.payload_field("done"), Some(&Json::Bool(true)));
        assert!(
            !handle.wait(Duration::from_secs(1)),
            "drained, not complete"
        );
        handle.stop();
    }
}
