//! Merged-result digests — the byte-identity comparator.
//!
//! A cluster sweep is correct when its merged cache replays exactly the
//! reports a single-process [`SweepEngine`] run produces. Raw cache files
//! cannot be `cmp`-ed directly (they embed `wall_seconds`, which is
//! machine- and run-dependent), so the comparator hashes each unit's
//! [`RunReport::stable_json`] — the deterministic projection the serve
//! layer already uses for byte-identity — and emits one sorted
//! `"<slug> <hash>"` line per unit. Two digests from byte-identical
//! result sets are byte-identical files, whatever order or process
//! produced them.
//!
//! [`RunReport::stable_json`]: regless_sim::RunReport::stable_json

use crate::assignment::fnv1a64;
use crate::WorkUnit;
use regless_bench::sweep::SweepEngine;

/// One digest line per unit, sorted: `"<cache slug> <16-hex hash of
/// stable_json>"`. Units are resolved through `engine` *without
/// simulating* ([`SweepEngine::lookup`]).
///
/// # Errors
///
/// Returns the slugs of units the engine has no result for — a digest of
/// an incomplete sweep would silently compare unequal for the wrong
/// reason.
pub fn digest_lines(engine: &SweepEngine, units: &[WorkUnit]) -> Result<Vec<String>, Vec<String>> {
    let mut lines = Vec::with_capacity(units.len());
    let mut missing = Vec::new();
    for unit in units {
        match engine.lookup(&unit.bench, unit.variant()) {
            Some(report) => {
                let stable = report.stable_json().to_string_compact();
                lines.push(format!(
                    "{} {:016x}",
                    unit.slug(),
                    fnv1a64(stable.as_bytes())
                ));
            }
            None => missing.push(unit.slug()),
        }
    }
    if !missing.is_empty() {
        missing.sort();
        return Err(missing);
    }
    lines.sort();
    lines.dedup();
    Ok(lines)
}

/// Render digest lines as the file CI `cmp`s (one line per unit, trailing
/// newline).
pub fn render_digest(lines: &[String]) -> String {
    let mut out = String::new();
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_bench::sweep::{RunVariant, SweepMode};
    use regless_bench::DesignKind;
    use std::sync::Arc;

    #[test]
    fn digests_are_order_independent_and_detect_gaps() {
        let engine = SweepEngine::with_config(None, SweepMode::Normal);
        let a = WorkUnit::new("rodinia/nn", DesignKind::Baseline).unwrap();
        let b = WorkUnit::new("rodinia/nn", DesignKind::regless_512()).unwrap();

        // Nothing merged yet: both units are reported missing, sorted.
        let err = digest_lines(&engine, &[a.clone(), b.clone()]).unwrap_err();
        assert_eq!(err.len(), 2);
        assert!(err.windows(2).all(|w| w[0] <= w[1]));

        let ra = engine.run(&a.bench, RunVariant::Design(a.design));
        engine.insert(&a.bench, a.variant(), Arc::clone(&ra));
        let rb = engine.run(&b.bench, RunVariant::Design(b.design));
        engine.insert(&b.bench, b.variant(), Arc::clone(&rb));

        let fwd = digest_lines(&engine, &[a.clone(), b.clone()]).unwrap();
        let rev = digest_lines(&engine, &[b.clone(), a.clone()]).unwrap();
        assert_eq!(fwd, rev, "digest is order independent");
        assert_eq!(fwd.len(), 2);
        for line in &fwd {
            let (slug, hash) = line.split_once(' ').unwrap();
            assert!(slug.ends_with(".json"), "{line}");
            assert_eq!(hash.len(), 16, "{line}");
        }
        let text = render_digest(&fwd);
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));

        // A different report for the same unit changes the digest — the
        // comparator actually looks at report bytes, not just presence.
        let other = SweepEngine::with_config(None, SweepMode::Normal);
        other.insert(&a.bench, a.variant(), rb);
        other.insert(&b.bench, b.variant(), ra);
        let swapped = digest_lines(&other, &[a, b]).unwrap();
        assert_ne!(fwd, swapped);
    }
}
