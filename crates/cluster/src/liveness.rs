//! Heartbeat-based worker liveness.
//!
//! Every cluster request (`claim`, `result`, `heartbeat`) refreshes the
//! sender's deadline; a worker not heard from within the timeout is
//! *reaped* — removed from the table so the coordinator can reassign its
//! in-flight units. Time is injected (`Instant` parameters) so the tests
//! drive the clock instead of sleeping.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The liveness table: worker name → last time it was heard from.
#[derive(Debug)]
pub struct Liveness {
    timeout: Duration,
    last_seen: HashMap<String, Instant>,
    reaped_total: u64,
}

impl Liveness {
    /// A table that declares a worker dead `timeout` after its last
    /// request.
    pub fn new(timeout: Duration) -> Liveness {
        Liveness {
            timeout,
            last_seen: HashMap::new(),
            reaped_total: 0,
        }
    }

    /// The configured timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Record that `worker` was heard from at `now`. Registers unknown
    /// workers — the first claim is the join.
    pub fn touch(&mut self, worker: &str, now: Instant) {
        self.last_seen.insert(worker.to_string(), now);
    }

    /// Drop `worker` without declaring it dead (graceful departure).
    pub fn forget(&mut self, worker: &str) {
        self.last_seen.remove(worker);
    }

    /// Remove and return every worker whose deadline has passed at `now`,
    /// sorted by name so reassignment order is deterministic.
    pub fn reap(&mut self, now: Instant) -> Vec<String> {
        let timeout = self.timeout;
        let mut dead: Vec<String> = self
            .last_seen
            .iter()
            .filter(|(_, &seen)| now.duration_since(seen) > timeout)
            .map(|(w, _)| w.clone())
            .collect();
        dead.sort();
        for w in &dead {
            self.last_seen.remove(w);
        }
        self.reaped_total += dead.len() as u64;
        dead
    }

    /// Total workers ever reaped by this table — the counter the
    /// coordinator's `stats`/`metrics` responses expose so silent deaths
    /// are visible without scraping logs. Rejoining does not decrement.
    pub fn reaped_total(&self) -> u64 {
        self.reaped_total
    }

    /// Workers currently considered alive.
    pub fn alive(&self) -> usize {
        self.last_seen.len()
    }

    /// Whether `worker` is currently in the table.
    pub fn knows(&self, worker: &str) -> bool {
        self.last_seen.contains_key(worker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_survive_within_the_timeout_and_reap_past_it() {
        let base = Instant::now();
        let mut live = Liveness::new(Duration::from_millis(100));
        live.touch("w0", base);
        live.touch("w1", base);
        assert_eq!(live.alive(), 2);

        // Inside the window: nobody dies.
        assert!(live.reap(base + Duration::from_millis(100)).is_empty());
        assert_eq!(live.alive(), 2);

        // w1 heartbeats; w0 goes quiet and is reaped alone.
        live.touch("w1", base + Duration::from_millis(90));
        let dead = live.reap(base + Duration::from_millis(150));
        assert_eq!(dead, vec!["w0".to_string()]);
        assert_eq!(live.alive(), 1);
        assert!(live.knows("w1"));
        assert!(!live.knows("w0"));

        // Reaping is not sticky: a reaped worker can rejoin — but the
        // reap counter remembers the death.
        live.touch("w0", base + Duration::from_millis(160));
        assert!(live.knows("w0"));
        assert_eq!(live.reaped_total(), 1);
    }

    #[test]
    fn reap_returns_dead_workers_sorted() {
        let base = Instant::now();
        let mut live = Liveness::new(Duration::from_millis(10));
        for w in ["w2", "w0", "w1"] {
            live.touch(w, base);
        }
        let dead = live.reap(base + Duration::from_millis(50));
        assert_eq!(dead, vec!["w0", "w1", "w2"]);
        assert_eq!(live.alive(), 0);
    }

    #[test]
    fn forget_is_quiet() {
        let base = Instant::now();
        let mut live = Liveness::new(Duration::from_millis(10));
        live.touch("w0", base);
        live.forget("w0");
        assert_eq!(live.alive(), 0);
        assert!(live.reap(base + Duration::from_secs(1)).is_empty());
    }
}
