//! The cluster worker: claim → simulate → deliver, with heartbeats.
//!
//! A worker is a plain blocking loop on one connection. While a
//! simulation runs, a scoped side-thread heartbeats on its *own*
//! connection at the cadence the claim response dictated, so a long
//! simulation never looks like a death to the coordinator. Transient
//! connect errors back off exponentially (reusing the serve client's
//! retry policy) up to a bound; a coordinator that stays unreachable is a
//! hard error, not a hang.

use crate::WorkUnit;
use regless_bench::sweep::SweepEngine;
use regless_json::{FromJson, ToJson};
use regless_serve::client::{backoff_delay, RetryPolicy};
use regless_serve::proto::{Request, Response};
use regless_serve::Client;
use regless_telemetry::obs::{epoch_us, LogEvent, LogLevel};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Worker tunables.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// This worker's name on the ring (must be unique in the cluster).
    pub name: String,
    /// Backoff policy for reconnecting after transient connect errors.
    pub retry: RetryPolicy,
    /// Test hook: after completing this many units, claim one more and
    /// exit without delivering it — simulating a worker killed mid-sweep
    /// (the claimed unit is left in flight for the liveness sweep to
    /// reassign). `None` in production.
    pub fail_after: Option<usize>,
}

impl WorkerConfig {
    /// A production config for `name` against `coordinator`.
    pub fn new(coordinator: &str, name: &str) -> WorkerConfig {
        WorkerConfig {
            coordinator: coordinator.to_string(),
            name: name.to_string(),
            retry: RetryPolicy::default(),
            fail_after: None,
        }
    }
}

/// What a worker did before exiting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerSummary {
    /// The worker's name.
    pub name: String,
    /// Units simulated and delivered.
    pub completed: usize,
    /// Failed connect attempts over the worker's life (initial connect
    /// and mid-sweep reconnects) — the retries that used to be silent.
    pub reconnects: u64,
    /// Whether the `fail_after` test hook fired (the worker "died" with a
    /// unit in flight).
    pub injected_failure: bool,
}

/// Emit one structured JSONL log line on stderr. Workers have no server
/// to hold an [`regless_telemetry::EventLog`], so their events go
/// straight to the stream the front door already collects.
fn log_worker(level: LogLevel, name: &str, message: &str, fields: &[(&str, String)]) {
    let event = LogEvent {
        seq: 0,
        ts_ms: epoch_us() / 1000,
        level,
        component: format!("worker:{name}"),
        message: message.to_string(),
        trace_id: None,
        fields: fields
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
    };
    eprintln!("{}", event.to_json().to_string_compact());
}

/// Connect with bounded exponential backoff, counting failed attempts
/// into `attempts` and logging each backoff instead of retrying silently.
fn connect_with_backoff(
    addr: &str,
    name: &str,
    policy: &RetryPolicy,
    attempts: &mut u64,
) -> std::io::Result<Client> {
    let seed = crate::assignment::fnv1a64(name.as_bytes());
    let mut attempt = 0u32;
    loop {
        match Client::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) if attempt >= policy.max_retries => {
                log_worker(
                    LogLevel::Error,
                    name,
                    "coordinator unreachable; giving up",
                    &[("coordinator", addr.to_string()), ("error", e.to_string())],
                );
                return Err(e);
            }
            Err(e) => {
                *attempts += 1;
                let delay = backoff_delay(attempt, None, policy, seed);
                log_worker(
                    LogLevel::Warn,
                    name,
                    "connect failed; backing off",
                    &[
                        ("coordinator", addr.to_string()),
                        ("attempt", (attempt + 1).to_string()),
                        ("backoff_ms", delay.as_millis().to_string()),
                        ("error", e.to_string()),
                    ],
                );
                std::thread::sleep(delay);
                attempt += 1;
            }
        }
    }
}

/// Run the worker loop until the coordinator reports the sweep done (or
/// drained). Simulations run through `engine`, so a worker pointed at its
/// own `REGLESS_SWEEP_DIR` keeps a private disk cache that consistent-hash
/// assignment keeps hot across runs.
///
/// # Errors
///
/// Returns an I/O error when the coordinator is unreachable past the
/// retry bound, hangs up mid-request, or refuses this worker (protocol
/// version mismatch surfaces as `InvalidData`).
pub fn run_worker(config: &WorkerConfig, engine: &SweepEngine) -> std::io::Result<WorkerSummary> {
    let mut reconnects = 0u64;
    let mut client = connect_with_backoff(
        &config.coordinator,
        &config.name,
        &config.retry,
        &mut reconnects,
    )?;
    let mut completed = 0usize;
    let mut next_id = 1u64;
    loop {
        let claim = Request::claim(next_id, &config.name);
        next_id += 1;
        let resp = match client.request(&claim) {
            Ok(r) => r,
            Err(_) => {
                // Transient: reconnect with backoff and re-claim. The
                // coordinator either still has our unit in flight (we had
                // none) or will reassign it — both are safe.
                log_worker(
                    LogLevel::Warn,
                    &config.name,
                    "claim connection lost; reconnecting",
                    &[("coordinator", config.coordinator.clone())],
                );
                reconnects += 1;
                client = connect_with_backoff(
                    &config.coordinator,
                    &config.name,
                    &config.retry,
                    &mut reconnects,
                )?;
                continue;
            }
        };
        if !resp.ok {
            return Err(refusal(&resp));
        }
        if resp.payload_field("done") == Some(&regless_json::Json::Bool(true)) {
            break;
        }
        if let Some(ms) = resp.payload_field("wait_ms") {
            let ms: u64 = FromJson::from_json(ms).map_err(invalid)?;
            std::thread::sleep(Duration::from_millis(ms.min(10_000)));
            continue;
        }
        let unit = parse_claimed_unit(&resp)?;
        if config.fail_after.is_some_and(|n| completed >= n) {
            // Injected death: the unit stays in flight, our socket drops
            // on return, and the heartbeats that would keep us alive stop.
            return Ok(WorkerSummary {
                name: config.name.clone(),
                completed,
                reconnects,
                injected_failure: true,
            });
        }
        let heartbeat_ms: u64 = match resp.payload_field("heartbeat_ms") {
            Some(v) => FromJson::from_json(v).map_err(invalid)?,
            None => 1_000,
        };
        // The claim's trace id (if any) is echoed on the result so the
        // coordinator's claim→result span lands on the same timeline.
        let trace_id = match resp.payload_field("trace_id") {
            Some(regless_json::Json::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let report = simulate_with_heartbeats(config, engine, &unit, heartbeat_ms);

        let (design, capacity, compressor) = unit.wire();
        let mut result = Request::result(next_id, &config.name, unit.id, ToJson::to_json(&*report));
        next_id += 1;
        result.kernel = Some(unit.bench.clone());
        result.design = design.to_string();
        result.capacity = capacity;
        result.compressor = compressor;
        result.trace_id = trace_id;
        let resp = match client.request(&result) {
            Ok(r) => r,
            Err(_) => {
                // The connection died with the result in hand. Reconnect
                // and resend: delivery is idempotent on the coordinator.
                log_worker(
                    LogLevel::Warn,
                    &config.name,
                    "result connection lost; reconnecting to resend",
                    &[
                        ("coordinator", config.coordinator.clone()),
                        ("unit", format!("{:x}", unit.id)),
                    ],
                );
                reconnects += 1;
                client = connect_with_backoff(
                    &config.coordinator,
                    &config.name,
                    &config.retry,
                    &mut reconnects,
                )?;
                client.request(&result)?
            }
        };
        if !resp.ok {
            return Err(refusal(&resp));
        }
        completed += 1;
    }
    Ok(WorkerSummary {
        name: config.name.clone(),
        completed,
        reconnects,
        injected_failure: false,
    })
}

/// Simulate one unit while a side connection heartbeats at the cadence
/// the coordinator asked for.
fn simulate_with_heartbeats(
    config: &WorkerConfig,
    engine: &SweepEngine,
    unit: &WorkUnit,
    heartbeat_ms: u64,
) -> std::sync::Arc<regless_sim::RunReport> {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Best effort: a failed heartbeat connection only means the
            // liveness window has to cover the whole simulation.
            let Ok(mut hb) = Client::connect(&config.coordinator) else {
                log_worker(
                    LogLevel::Warn,
                    &config.name,
                    "heartbeat connection failed; relying on the liveness window",
                    &[("unit", format!("{:x}", unit.id))],
                );
                return;
            };
            let mut id = 1u64 << 32;
            loop {
                // Sleep in fixed 2 ms slices so a finished simulation
                // stops the thread (and the scope join on the worker's
                // critical path) within ~2 ms instead of after a full
                // heartbeat period.
                let slices = heartbeat_ms.clamp(1, 600_000) / 2 + 1;
                for _ in 0..slices {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                if stop.load(Ordering::Acquire) {
                    return;
                }
                if hb.request(&Request::heartbeat(id, &config.name)).is_err() {
                    return;
                }
                id += 1;
            }
        });
        let report = engine.run(&unit.bench, unit.variant());
        stop.store(true, Ordering::Release);
        report
    })
}

/// Decode the unit fields of a claim response.
fn parse_claimed_unit(resp: &Response) -> std::io::Result<WorkUnit> {
    let field = |name: &str| {
        resp.payload_field(name)
            .ok_or_else(|| invalid(format!("claim response missing {name:?}")))
    };
    let id: u64 = FromJson::from_json(field("unit")?).map_err(invalid)?;
    let kernel: String = FromJson::from_json(field("kernel")?).map_err(invalid)?;
    let design: String = FromJson::from_json(field("design")?).map_err(invalid)?;
    let capacity: usize = FromJson::from_json(field("capacity")?).map_err(invalid)?;
    let compressor: bool = FromJson::from_json(field("compressor")?).map_err(invalid)?;
    let unit = WorkUnit::from_wire(&kernel, &design, capacity, compressor)
        .ok_or_else(|| invalid(format!("claim names unknown design {design:?}")))?;
    if unit.id != id {
        return Err(invalid(format!(
            "claim unit id {id:x} does not match coordinates (expected {:x})",
            unit.id
        )));
    }
    Ok(unit)
}

/// Convert a refused response into an I/O error with its code.
fn refusal(resp: &Response) -> std::io::Error {
    let detail = resp
        .error
        .as_ref()
        .map(|e| format!("{}: {}", e.code.as_str(), e.message))
        .unwrap_or_else(|| "coordinator refused the request".to_string());
    std::io::Error::new(std::io::ErrorKind::InvalidData, detail)
}

/// An `InvalidData` error from any displayable detail.
fn invalid(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_json::Json;

    #[test]
    fn parse_claimed_unit_checks_ids_and_designs() {
        let unit = WorkUnit::new("rodinia/nn", regless_bench::DesignKind::Baseline).unwrap();
        let (design, capacity, compressor) = unit.wire();
        let payload = |id: u64, design: &str| {
            Response::success(
                1,
                Json::Obj(vec![
                    ("unit".into(), ToJson::to_json(&id)),
                    ("kernel".into(), Json::Str(unit.bench.clone())),
                    ("design".into(), Json::Str(design.to_string())),
                    ("capacity".into(), ToJson::to_json(&capacity)),
                    ("compressor".into(), Json::Bool(compressor)),
                ]),
            )
        };
        let parsed = parse_claimed_unit(&payload(unit.id, design)).unwrap();
        assert_eq!(parsed, unit);
        // A mismatched id is a wire corruption, not something to run.
        assert!(parse_claimed_unit(&payload(unit.id ^ 1, design)).is_err());
        assert!(parse_claimed_unit(&payload(unit.id, "frobnicate")).is_err());
    }

    #[test]
    fn connect_backoff_gives_up_with_the_connect_error() {
        // Port 1 on localhost refuses immediately; a tiny retry budget
        // must surface the error quickly rather than hang.
        let policy = RetryPolicy {
            max_retries: 1,
            default_backoff_ms: 1,
            max_backoff_ms: 2,
        };
        let mut attempts = 0u64;
        let err = connect_with_backoff("127.0.0.1:1", "w0", &policy, &mut attempts);
        assert!(err.is_err());
        assert_eq!(attempts, 1, "each backed-off attempt is counted");
    }
}
