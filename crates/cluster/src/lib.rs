//! `regless-cluster` — a fault-tolerant coordinator/worker sweep cluster.
//!
//! The paper's evaluation is a (kernel × design × capacity) cross-product
//! — 21 Rodinia benchmarks × 4 designs plus capacity and ablation sweeps
//! — and every extra backend multiplies the design axis again. This crate
//! shards exactly that space across N worker processes, composing the two
//! building blocks earlier layers provide: the `crates/serve` JSONL
//! protocol (extended with `claim`/`result`/`heartbeat` request kinds)
//! and the `crates/bench` sweep engine (memoized, fingerprinted, atomic
//! disk cache).
//!
//! The moving pieces (see DESIGN.md §14 for the full contract):
//!
//! - **Coordinator** ([`coordinator`]): enumerates the sweep space as
//!   [`WorkUnit`]s, hands them out on `claim`, collects `RunReport`s on
//!   `result`, and merges them into the *same*
//!   `results/cache/<fingerprint>/` layout every other consumer reads —
//!   `regless sweep`, `regless report --trend`, and the `figs/*` binaries
//!   consume cluster output unchanged.
//! - **Assignment** ([`assignment`]): a consistent-hash ring over worker
//!   names. Each unit prefers the worker its hash lands on, so worker
//!   disk caches stay hot and disjoint; a worker whose partition is
//!   drained steals from whatever remains, so stragglers never idle the
//!   cluster.
//! - **Liveness** ([`liveness`]): every request refreshes the sender's
//!   deadline; a silent worker is reaped and its in-flight units are
//!   reassigned to survivors. Reassignment is idempotent because results
//!   are keyed by the unit's stable hash and cache writes are atomic
//!   (temp file + rename) — a zombie's late duplicate is acknowledged and
//!   discarded.
//! - **Worker** ([`worker`]): claim → simulate (heartbeating on a side
//!   connection) → deliver, with bounded exponential-backoff reconnects
//!   on transient connect errors.
//! - **Merge / digests** ([`merge`]): order-independent digests of
//!   `RunReport::stable_json()` per unit, the byte-identity comparator CI
//!   uses to check cluster output against a single-process sweep.
//! - **Stats** ([`stats`]): the run summary (`BENCH_cluster.json` rows):
//!   units, reassignments, duplicates, per-worker counts, wall clock.
//!
//! Protocol versioning: every cluster request carries
//! [`regless_serve::PROTOCOL_VERSION`]; the coordinator refuses a
//! mismatched worker with a structured `version_mismatch` error, so a
//! rolling restart that mixes binaries fails loudly instead of corrupting
//! a sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod coordinator;
pub mod liveness;
pub mod merge;
pub mod stats;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorConfig, CoordinatorHandle};
pub use stats::ClusterSummary;
pub use worker::{run_worker, WorkerConfig, WorkerSummary};

use regless_bench::sweep::{unit_hash, unit_slug, RunVariant};
use regless_bench::DesignKind;

/// Default coordinator listen address (`regless cluster` / `regless
/// worker` agree on it; one above serve's `7117`).
pub const DEFAULT_CLUSTER_ADDR: &str = "127.0.0.1:7118";

/// One shard of the sweep space: a benchmark × design point, identified
/// by the stable hash the coordinator assigns and reassigns by.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkUnit {
    /// Stable id: [`unit_hash`] of the canonical `(bench, variant)` key.
    /// Identical across processes, so a reassigned unit and its original
    /// claim name the same result.
    pub id: u64,
    /// Benchmark id (`rodinia/<name>`, `micro/<name>`, …).
    pub bench: String,
    /// The storage design to run.
    pub design: DesignKind,
}

impl WorkUnit {
    /// A unit for `(bench, design)`, or `None` for designs the wire
    /// cannot carry (`rfh`/`rfv` — same restriction as the serve layer,
    /// whose runners have no cancellation hook).
    pub fn new(bench: &str, design: DesignKind) -> Option<WorkUnit> {
        wire_design(design)?;
        Some(WorkUnit {
            id: unit_hash(bench, RunVariant::Design(design)),
            bench: bench.to_string(),
            design,
        })
    }

    /// The sweep-engine variant this unit caches under.
    pub fn variant(&self) -> RunVariant {
        RunVariant::Design(self.design).canonical()
    }

    /// The disk-cache entry filename for this unit's result (used by the
    /// merge digests).
    pub fn slug(&self) -> String {
        unit_slug(&self.bench, RunVariant::Design(self.design))
    }

    /// The `(design, capacity, compressor)` triple the JSONL protocol
    /// carries for this unit.
    pub fn wire(&self) -> (&'static str, usize, bool) {
        wire_design(self.design).expect("WorkUnit::new rejected non-servable designs")
    }

    /// Rebuild a unit from claim-response wire fields. `None` for an
    /// unknown design string.
    pub fn from_wire(
        bench: &str,
        design: &str,
        capacity: usize,
        compressor: bool,
    ) -> Option<WorkUnit> {
        let design = match (design, compressor) {
            ("baseline", _) => DesignKind::Baseline,
            ("regless", true) => DesignKind::RegLess { entries: capacity },
            ("regless", false) => DesignKind::RegLessNoCompressor { entries: capacity },
            ("regdem", _) => DesignKind::RegDem,
            ("compress-rf", _) => DesignKind::CompressRf,
            _ => return None,
        };
        WorkUnit::new(bench, design)
    }
}

/// The wire triple for a design, or `None` for non-servable designs.
fn wire_design(design: DesignKind) -> Option<(&'static str, usize, bool)> {
    match design {
        DesignKind::Baseline => Some(("baseline", 0, true)),
        DesignKind::RegLess { entries } => Some(("regless", entries, true)),
        DesignKind::RegLessNoCompressor { entries } => Some(("regless", entries, false)),
        DesignKind::RegDem => Some(("regdem", 0, true)),
        DesignKind::CompressRf => Some(("compress-rf", 0, true)),
        DesignKind::Rfh | DesignKind::Rfv => None,
    }
}

/// Enumerate the (benchmark × design) cross-product as work units,
/// skipping designs the wire cannot carry. Deterministic order.
pub fn units_for(benches: &[String], designs: &[DesignKind]) -> Vec<WorkUnit> {
    let mut units = Vec::with_capacity(benches.len() * designs.len());
    for bench in benches {
        for &design in designs {
            if let Some(u) = WorkUnit::new(bench, design) {
                units.push(u);
            }
        }
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_units_round_trip_the_wire() {
        for design in [
            DesignKind::Baseline,
            DesignKind::regless_512(),
            DesignKind::RegLessNoCompressor { entries: 256 },
            DesignKind::RegDem,
            DesignKind::CompressRf,
        ] {
            let unit = WorkUnit::new("rodinia/nn", design).unwrap();
            let (d, cap, comp) = unit.wire();
            let back = WorkUnit::from_wire(&unit.bench, d, cap, comp).unwrap();
            assert_eq!(back, unit, "{design:?}");
        }
        assert!(WorkUnit::new("rodinia/nn", DesignKind::Rfh).is_none());
        assert!(WorkUnit::new("rodinia/nn", DesignKind::Rfv).is_none());
        assert!(WorkUnit::from_wire("rodinia/nn", "frobnicate", 0, true).is_none());
    }

    #[test]
    fn unit_ids_are_stable_and_distinct() {
        let a = WorkUnit::new("rodinia/nn", DesignKind::Baseline).unwrap();
        let b = WorkUnit::new("rodinia/nn", DesignKind::Baseline).unwrap();
        assert_eq!(a.id, b.id, "ids must be stable across constructions");
        let c = WorkUnit::new("rodinia/bfs", DesignKind::Baseline).unwrap();
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn units_for_skips_non_servable_designs() {
        let benches = vec!["rodinia/nn".to_string(), "rodinia/bfs".to_string()];
        let designs = vec![
            DesignKind::Baseline,
            DesignKind::Rfh,
            DesignKind::regless_512(),
        ];
        let units = units_for(&benches, &designs);
        assert_eq!(units.len(), 4, "rfh is skipped per bench");
        let ids: std::collections::HashSet<u64> = units.iter().map(|u| u.id).collect();
        assert_eq!(ids.len(), 4, "all ids distinct");
    }
}
