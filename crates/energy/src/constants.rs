//! Energy and area constants.
//!
//! The paper derives power from a placed-and-routed 28 nm netlist plus
//! GPUWattch; this reproduction uses an analytical event-based model whose
//! constants follow standard SRAM scaling (access energy grows with the
//! square root of bank capacity — wordline/bitline length) and are
//! calibrated so the baseline register file's share of GPU energy matches
//! the paper's upper bound of ~16.7 % (§6.3, the "No RF" bar). Absolute
//! joules are not meaningful; ratios are.

/// Fixed per-access energy (decode, sensing) in pJ for a 128-byte access.
pub const SRAM_ACCESS_FIXED_PJ: f64 = 2.0;
/// Capacity-dependent per-access energy: `this * sqrt(bank_bytes)` pJ.
pub const SRAM_ACCESS_SQRT_PJ: f64 = 0.25;

/// Per-128-byte-access energy of a banked SRAM with `bank_bytes` banks.
pub fn sram_access_pj(bank_bytes: usize) -> f64 {
    SRAM_ACCESS_FIXED_PJ + SRAM_ACCESS_SQRT_PJ * (bank_bytes as f64).sqrt()
}

/// Operand-collector / crossbar energy added to every baseline RF access.
pub const RF_CROSSBAR_PJ: f64 = 22.0;
/// Small-crossbar energy added to every OSU access.
pub const OSU_CROSSBAR_PJ: f64 = 2.0;
/// One OSU tag probe.
pub const OSU_TAG_PJ: f64 = 1.5;
/// One compressor pattern match (store or load side).
pub const COMPRESSOR_MATCH_PJ: f64 = 4.0;
/// One RFV rename-table lookup.
pub const RENAME_LOOKUP_PJ: f64 = 2.5;
/// RFV per-access energy relative to the baseline RF: Jeon et al. halve
/// the register file (half the banks, power-gated) and confine traffic via
/// renaming; their reported ~45 % register-file energy reduction implies
/// roughly linear capacity scaling, which this factor encodes.
pub const RFV_ACCESS_SCALE: f64 = 0.52;
/// One RFH last-result-file access (tiny per-warp latch array).
pub const LRF_ACCESS_PJ: f64 = 3.0;
/// One RFH register-file-cache access.
pub const RFC_ACCESS_PJ: f64 = 8.0;
/// One RegDem spill or fill against the shared-memory scratch partition
/// (a shared-memory bank access plus its addressing logic — roughly half
/// an RF access, the saving that motivates demotion).
pub const SMEM_SPILL_PJ: f64 = 13.0;

/// Leakage of register-storage structures, pJ per cycle per KB per SM.
pub const LEAK_PJ_PER_CYCLE_PER_KB: f64 = 0.15;

/// Energy of one L1 access (128-byte line).
pub const L1_ACCESS_PJ: f64 = 30.0;
/// Energy of one L2 access.
pub const L2_ACCESS_PJ: f64 = 100.0;
/// Energy of one DRAM access.
pub const DRAM_ACCESS_PJ: f64 = 700.0;

/// Fetch/decode/issue energy of one metadata instruction.
pub const METADATA_INSN_PJ: f64 = 20.0;

/// Non-register core energy per executed instruction (fetch, decode,
/// scheduling, execution units).
pub const CORE_INSN_PJ: f64 = 560.0;
/// Non-register static power per SM, pJ per cycle.
pub const CORE_STATIC_PJ_PER_CYCLE: f64 = 220.0;

/// Baseline register file bank size in bytes (256 KB across 16 banks).
pub const RF_BANK_BYTES: usize = 16 * 1024;
/// Baseline register file bytes per SM.
pub const RF_BYTES_PER_SM: usize = 256 * 1024;
/// Compressor internal storage per SM (Table 1: 48 lines of 128 B).
pub const COMPRESSOR_BYTES_PER_SM: usize = 48 * 128;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_energy_scales_with_capacity() {
        let small = sram_access_pj(2 * 1024);
        let large = sram_access_pj(16 * 1024);
        assert!(large > small);
        // sqrt scaling: 8x capacity ≈ 2.8x the variable part.
        let ratio = (large - SRAM_ACCESS_FIXED_PJ) / (small - SRAM_ACCESS_FIXED_PJ);
        assert!((ratio - 8.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn rf_access_much_costlier_than_osu() {
        let rf = sram_access_pj(RF_BANK_BYTES) + RF_CROSSBAR_PJ;
        let osu = sram_access_pj(2 * 1024) + OSU_CROSSBAR_PJ;
        assert!(rf / osu > 2.5, "rf {rf} osu {osu}");
    }
}
