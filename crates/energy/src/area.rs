//! Area and nominal-power models for the Figure 11/12 capacity sweeps.

use crate::constants::*;
use regless_sim::GpuConfig;

/// Area of one RegLess configuration, in arbitrary units comparable to
/// [`baseline_rf_area`]. Components follow the paper's Figure 11 split.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AreaBreakdown {
    /// Tag stores, allocation lists, capacity managers.
    pub logic: f64,
    /// OSU data arrays.
    pub storage: f64,
    /// Compressor (fixed).
    pub compressor: f64,
}

impl AreaBreakdown {
    /// Total area.
    pub fn total(&self) -> f64 {
        self.logic + self.storage + self.compressor
    }
}

/// Area units per byte of SRAM storage.
const AREA_PER_BYTE: f64 = 1.0;
/// Logic overhead as a fraction of the storage it manages (tags, lists,
/// per-bank decoders).
const LOGIC_FRACTION: f64 = 0.12;
/// Fixed capacity-manager logic per SM.
const CM_FIXED: f64 = 4.0 * 1024.0;
/// Fixed compressor area per SM (pattern matchers + 48-line cache).
const COMPRESSOR_FIXED: f64 = COMPRESSOR_BYTES_PER_SM as f64 * AREA_PER_BYTE + 2.0 * 1024.0;

/// Area of the baseline register file (data arrays + operand collectors).
pub fn baseline_rf_area() -> f64 {
    let storage = RF_BYTES_PER_SM as f64 * AREA_PER_BYTE;
    storage * (1.0 + 0.15) // collectors/arbitration ≈ 15 %
}

/// Area of a RegLess configuration with `osu_entries_per_sm` registers.
pub fn regless_area(osu_entries_per_sm: usize) -> AreaBreakdown {
    let storage = (osu_entries_per_sm * 128) as f64 * AREA_PER_BYTE;
    AreaBreakdown {
        logic: storage * LOGIC_FRACTION + CM_FIXED,
        storage,
        compressor: COMPRESSOR_FIXED,
    }
}

/// Nominal average power (static + dynamic at a fixed activity factor) of
/// a RegLess configuration, in pJ/cycle per SM — the Figure 12 sweep.
///
/// `accesses_per_cycle` is the assumed operand traffic (the paper's SMs
/// sustain roughly 3 operand accesses per issued instruction across 4
/// schedulers).
pub fn regless_nominal_power(
    osu_entries_per_sm: usize,
    gpu: &GpuConfig,
    accesses_per_cycle: f64,
) -> f64 {
    let per_shard = osu_entries_per_sm / gpu.schedulers_per_sm;
    let bank_bytes = (per_shard / regless_compiler::NUM_BANKS).max(1) * 128;
    let dynamic = accesses_per_cycle * (sram_access_pj(bank_bytes) + OSU_CROSSBAR_PJ + OSU_TAG_PJ)
        + 0.2 * COMPRESSOR_MATCH_PJ;
    let leak = LEAK_PJ_PER_CYCLE_PER_KB
        * ((osu_entries_per_sm * 128 + COMPRESSOR_BYTES_PER_SM) as f64 / 1024.0);
    dynamic + leak
}

/// Nominal average power of the baseline register file under the same
/// activity.
pub fn baseline_nominal_power(accesses_per_cycle: f64) -> f64 {
    let dynamic = accesses_per_cycle * (sram_access_pj(RF_BANK_BYTES) + RF_CROSSBAR_PJ);
    let leak = LEAK_PJ_PER_CYCLE_PER_KB * (RF_BYTES_PER_SM as f64 / 1024.0);
    dynamic + leak
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_monotone_in_capacity() {
        let mut last = 0.0;
        for entries in [128, 192, 256, 384, 512, 1024, 2048] {
            let a = regless_area(entries).total();
            assert!(a > last);
            last = a;
        }
    }

    #[test]
    fn paper_design_point_is_much_smaller() {
        // 512 entries ≈ 25 % of the 2048-entry RF; with logic and the
        // compressor the paper's Figure 11 shows ~0.3x.
        let ratio = regless_area(512).total() / baseline_rf_area();
        assert!((0.2..0.4).contains(&ratio), "area ratio {ratio:.3}");
    }

    #[test]
    fn full_capacity_regless_near_baseline() {
        let ratio = regless_area(2048).total() / baseline_rf_area();
        assert!((0.85..1.15).contains(&ratio), "ratio {ratio:.3}");
    }

    #[test]
    fn power_monotone_and_below_baseline() {
        let gpu = GpuConfig::gtx980();
        let base = baseline_nominal_power(12.0);
        let mut last = 0.0;
        for entries in [128, 256, 512, 1024, 2048] {
            let p = regless_nominal_power(entries, &gpu, 12.0);
            assert!(p > last);
            last = p;
        }
        let p512 = regless_nominal_power(512, &gpu, 12.0);
        assert!(
            p512 < 0.6 * base,
            "512-entry power {p512:.1} vs baseline {base:.1}"
        );
    }
}
