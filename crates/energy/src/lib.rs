//! Energy, power, and area models for the RegLess evaluation (paper §6.2–6.3).
//!
//! The paper measured power on a placed-and-routed 28 nm netlist driven by
//! simulation traces, plus GPUWattch for the memory system. This crate
//! substitutes an analytical event-based model: every simulator counter
//! (register reads/writes, tag probes, compressor matches, cache and DRAM
//! accesses, metadata instructions) is multiplied by a per-event energy
//! whose scaling follows SRAM physics, calibrated so the baseline register
//! file's share of total GPU energy matches the paper's bound (~16.7 %).
//! All reported results are ratios, which the calibration preserves.
//!
//! ```
//! use regless_energy::{energy, Design};
//! use regless_compiler::{compile, RegionConfig};
//! use regless_isa::KernelBuilder;
//! use regless_sim::{run_baseline, GpuConfig};
//! use std::sync::Arc;
//!
//! let mut b = KernelBuilder::new("e");
//! let i = b.thread_idx();
//! let v = b.iadd(i, i);
//! b.st_global(v, i);
//! b.exit();
//! let compiled = Arc::new(compile(&b.finish()?, &RegionConfig::default())?);
//! let report = run_baseline(GpuConfig::test_small(), compiled).expect("runs");
//!
//! let gpu = GpuConfig::test_small();
//! let base = energy(&report, Design::Baseline, &gpu);
//! let bound = energy(&report, Design::NoRf, &gpu);
//! assert!(bound.total_pj() < base.total_pj());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;

mod area;
mod model;

pub use area::{
    baseline_nominal_power, baseline_rf_area, regless_area, regless_nominal_power, AreaBreakdown,
};
pub use model::{baseline_rf_share, energy, Design, EnergyBreakdown};
