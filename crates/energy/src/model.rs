//! Event-based energy accounting over a [`RunReport`].

use crate::constants::*;
use regless_sim::{GpuConfig, RunReport};

/// The register-storage design a run used.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Design {
    /// Full 256 KB register file.
    Baseline,
    /// RegLess with the given OSU entries per SM.
    RegLess {
        /// Total OSU registers per SM.
        osu_entries_per_sm: usize,
    },
    /// Register-file hierarchy (Gebhart et al.).
    Rfh,
    /// Register-file virtualization (Jeon et al.), half-size RF.
    Rfv,
    /// RegDem (Sakdhnagool et al.): half-size RF plus shared-memory
    /// spill/fill traffic for demoted registers.
    RegDem,
    /// Statically-compressed register file (Angerd et al.): half-size RF
    /// plus a pattern compressor on every compressible access.
    CompressRf,
    /// Upper bound: the baseline's performance with a register file that
    /// consumes no energy (§6.3's "No RF" bar).
    NoRf,
}

/// Energy totals in pJ, split by component.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct EnergyBreakdown {
    /// Register storage structures (RF / OSU / LRF+RFC / renamed RF),
    /// including their leakage, tags, compressors, rename tables.
    pub register_structures_pj: f64,
    /// Non-register core energy (fetch/decode/schedule/execute + static).
    pub core_pj: f64,
    /// L1 accesses (data + register traffic).
    pub l1_pj: f64,
    /// L2 accesses.
    pub l2_pj: f64,
    /// DRAM accesses.
    pub dram_pj: f64,
    /// Metadata-instruction delivery (RegLess only).
    pub metadata_pj: f64,
}

impl EnergyBreakdown {
    /// Whole-GPU energy.
    pub fn total_pj(&self) -> f64 {
        self.register_structures_pj
            + self.core_pj
            + self.l1_pj
            + self.l2_pj
            + self.dram_pj
            + self.metadata_pj
    }
}

/// OSU bank size in bytes for a per-SM capacity (4 shards × 8 banks).
fn osu_bank_bytes(osu_entries_per_sm: usize, gpu: &GpuConfig) -> usize {
    let per_shard = osu_entries_per_sm / gpu.schedulers_per_sm;
    (per_shard / regless_compiler::NUM_BANKS).max(1) * 128
}

/// Compute the energy of one run under `design`.
pub fn energy(report: &RunReport, design: Design, gpu: &GpuConfig) -> EnergyBreakdown {
    let t = report.total();
    let cycles = report.cycles as f64;
    let sms = gpu.num_sms as f64;
    let leak = |bytes_per_sm: usize| {
        cycles * sms * LEAK_PJ_PER_CYCLE_PER_KB * (bytes_per_sm as f64 / 1024.0)
    };

    let register_structures_pj = match design {
        Design::Baseline => {
            let e_access = sram_access_pj(RF_BANK_BYTES) + RF_CROSSBAR_PJ;
            (t.rf_reads + t.rf_writes) as f64 * e_access + leak(RF_BYTES_PER_SM)
        }
        Design::RegLess { osu_entries_per_sm } => {
            let e_access =
                sram_access_pj(osu_bank_bytes(osu_entries_per_sm, gpu)) + OSU_CROSSBAR_PJ;
            (t.osu_reads + t.osu_writes) as f64 * e_access
                + t.osu_tag_probes as f64 * OSU_TAG_PJ
                + t.compressor_matches as f64 * COMPRESSOR_MATCH_PJ
                + leak(osu_entries_per_sm * 128 + COMPRESSOR_BYTES_PER_SM)
        }
        Design::Rfh => {
            let e_mrf = sram_access_pj(RF_BANK_BYTES) + RF_CROSSBAR_PJ;
            (t.rf_reads + t.rf_writes) as f64 * e_mrf
                + (t.lrf_reads + t.lrf_writes) as f64 * LRF_ACCESS_PJ
                + (t.rfc_reads + t.rfc_writes) as f64 * RFC_ACCESS_PJ
                // MRF keeps full capacity; LRF/RFC add a little storage.
                + leak(RF_BYTES_PER_SM + 8 * 1024)
        }
        Design::Rfv => {
            let e_half = (sram_access_pj(RF_BANK_BYTES) + RF_CROSSBAR_PJ) * RFV_ACCESS_SCALE;
            (t.rf_reads + t.rf_writes) as f64 * e_half
                + t.rename_lookups as f64 * RENAME_LOOKUP_PJ
                + leak(RF_BYTES_PER_SM / 2)
        }
        Design::RegDem => {
            // Hot registers live in a half-size RF (half-size banks);
            // demoted traffic pays shared-memory accesses instead.
            let e_half = sram_access_pj(RF_BANK_BYTES / 2) + RF_CROSSBAR_PJ;
            (t.rf_reads + t.rf_writes) as f64 * e_half
                + (t.spill_stores + t.spill_fills) as f64 * SMEM_SPILL_PJ
                + leak(RF_BYTES_PER_SM / 2)
        }
        Design::CompressRf => {
            // Half the SRAM, plus a compressor match per compressible
            // access (the same pattern-matcher RegLess prices).
            let e_half = sram_access_pj(RF_BANK_BYTES / 2) + RF_CROSSBAR_PJ;
            (t.rf_reads + t.rf_writes) as f64 * e_half
                + t.compressor_matches as f64 * COMPRESSOR_MATCH_PJ
                + leak(RF_BYTES_PER_SM / 2 + COMPRESSOR_BYTES_PER_SM)
        }
        Design::NoRf => 0.0,
    };

    let core_pj = t.insns as f64 * CORE_INSN_PJ + cycles * sms * CORE_STATIC_PJ_PER_CYCLE;
    let m = report.mem;
    EnergyBreakdown {
        register_structures_pj,
        core_pj,
        l1_pj: (m.l1_data_accesses + m.l1_reg_accesses) as f64 * L1_ACCESS_PJ,
        l2_pj: m.l2_accesses as f64 * L2_ACCESS_PJ,
        dram_pj: m.dram_accesses as f64 * DRAM_ACCESS_PJ,
        metadata_pj: t.meta_insns as f64 * METADATA_INSN_PJ,
    }
}

/// The register-structure share of GPU energy for a baseline run — should
/// sit near the paper's ~13–17 %.
pub fn baseline_rf_share(report: &RunReport, gpu: &GpuConfig) -> f64 {
    let e = energy(report, Design::Baseline, gpu);
    e.register_structures_pj / e.total_pj()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_compiler::{compile, RegionConfig};
    use regless_isa::{KernelBuilder, Opcode};
    use regless_sim::{run_baseline, GpuConfig};
    use std::sync::Arc;

    fn report() -> RunReport {
        let mut b = KernelBuilder::new("cal");
        let body = b.new_block();
        let done = b.new_block();
        let i0 = b.movi(0);
        let n = b.movi(64);
        let tid = b.thread_idx();
        b.jmp(body);
        b.select(body);
        let v = b.ld_global(tid);
        let x = b.ffma(v, tid, i0);
        b.st_global(x, tid);
        let one = b.movi(1);
        b.emit_to(i0, Opcode::IAdd, vec![i0, one]);
        let c = b.setlt(i0, n);
        b.bra(c, body, done);
        b.select(done);
        b.exit();
        let compiled = Arc::new(compile(&b.finish().unwrap(), &RegionConfig::default()).unwrap());
        run_baseline(GpuConfig::test_small(), compiled).unwrap()
    }

    #[test]
    fn baseline_rf_share_calibrated() {
        let r = report();
        let share = baseline_rf_share(&r, &GpuConfig::test_small());
        assert!(
            (0.10..=0.22).contains(&share),
            "baseline RF share {share:.3} out of calibration band"
        );
    }

    #[test]
    fn no_rf_is_lower_bound() {
        let r = report();
        let gpu = GpuConfig::test_small();
        let base = energy(&r, Design::Baseline, &gpu).total_pj();
        let norf = energy(&r, Design::NoRf, &gpu).total_pj();
        assert!(norf < base);
        assert!(norf > 0.0);
    }

    #[test]
    fn breakdown_components_nonnegative() {
        let r = report();
        let gpu = GpuConfig::test_small();
        for d in [
            Design::Baseline,
            Design::RegLess {
                osu_entries_per_sm: 512,
            },
            Design::Rfh,
            Design::Rfv,
            Design::RegDem,
            Design::CompressRf,
            Design::NoRf,
        ] {
            let e = energy(&r, d, &gpu);
            assert!(e.register_structures_pj >= 0.0);
            assert!(e.core_pj > 0.0);
            assert!(e.total_pj() >= e.core_pj);
        }
    }

    #[test]
    fn smaller_osu_means_cheaper_accesses() {
        let r = report();
        let gpu = GpuConfig::test_small();
        let small = energy(
            &r,
            Design::RegLess {
                osu_entries_per_sm: 128,
            },
            &gpu,
        );
        let large = energy(
            &r,
            Design::RegLess {
                osu_entries_per_sm: 2048,
            },
            &gpu,
        );
        assert!(small.register_structures_pj < large.register_structures_pj);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use regless_sim::{MemStats, RunReport, SmStats};

    fn synthetic_report(
        cycles: u64,
        rf_reads: u64,
        rf_writes: u64,
        l2: u64,
        dram: u64,
    ) -> RunReport {
        let stats = SmStats {
            cycles,
            rf_reads,
            rf_writes,
            ..SmStats::default()
        };
        RunReport {
            cycles,
            sm_stats: vec![stats],
            mem: MemStats {
                l2_accesses: l2,
                dram_accesses: dram,
                ..MemStats::default()
            },
            final_regs: Vec::new(),
            warp_insns: Vec::new(),
            wall_seconds: 0.0,
            telemetry: None,
        }
    }

    proptest! {
        /// Energy is monotone in every event count.
        #[test]
        fn monotone_in_events(
            cycles in 1u64..1_000_000,
            reads in 0u64..1_000_000,
            writes in 0u64..1_000_000,
            l2 in 0u64..100_000,
            dram in 0u64..100_000,
        ) {
            let gpu = regless_sim::GpuConfig::test_small();
            let base = energy(
                &synthetic_report(cycles, reads, writes, l2, dram),
                Design::Baseline,
                &gpu,
            );
            let more_reads = energy(
                &synthetic_report(cycles, reads + 1, writes, l2, dram),
                Design::Baseline,
                &gpu,
            );
            let more_dram = energy(
                &synthetic_report(cycles, reads, writes, l2, dram + 1),
                Design::Baseline,
                &gpu,
            );
            prop_assert!(more_reads.total_pj() > base.total_pj());
            prop_assert!(more_dram.total_pj() > base.total_pj());
            prop_assert!(base.total_pj().is_finite());
        }

        /// Longer runs leak more.
        #[test]
        fn leakage_scales_with_cycles(cycles in 1u64..1_000_000) {
            let gpu = regless_sim::GpuConfig::test_small();
            let short = energy(&synthetic_report(cycles, 0, 0, 0, 0), Design::Baseline, &gpu);
            let long =
                energy(&synthetic_report(cycles * 2, 0, 0, 0, 0), Design::Baseline, &gpu);
            prop_assert!(long.register_structures_pj > short.register_structures_pj);
        }
    }
}
