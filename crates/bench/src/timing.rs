//! Tiny wall-clock measurement helpers.
//!
//! The build environment cannot fetch criterion, so the `benches/` targets
//! and the sweep engine's progress reporting use this module instead: a
//! warm-up pass followed by doubling batches until enough wall time has
//! been observed, reporting the mean iteration time.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum measured wall time before a result is reported.
const MIN_MEASURE: Duration = Duration::from_millis(200);

/// Iteration cap so very slow bodies still finish promptly.
const MAX_ITERS: u64 = 4096;

/// Measure `f`'s mean wall-clock time and print a one-line summary.
/// Returns the mean duration.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Duration {
    black_box(f()); // warm-up (page in code, fill caches)
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= MIN_MEASURE || iters >= MAX_ITERS {
            let mean = elapsed / u32::try_from(iters).expect("iteration count fits u32");
            println!(
                "{name:<40} {:>12} /iter  ({iters} iters)",
                format_duration(mean)
            );
            return mean;
        }
        iters *= 2;
    }
}

/// Render a duration with a unit suited to its magnitude.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_covers_magnitudes() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
