//! Experiment harness shared by the per-figure binaries.
//!
//! Each `fig*`/`table*` binary in this crate regenerates one table or
//! figure of the paper (see DESIGN.md §3 for the index); this library
//! holds the common machinery: the evaluation machine configuration,
//! design runners, and plain-text table formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use regless_baselines::{run_compress_rf_with, run_regdem_with, run_rfh_with, run_rfv_with};
use regless_compiler::{compile, CompiledKernel, RegionConfig};
use regless_core::{RegLessConfig, RegLessSim};
use regless_energy::{energy, Design, EnergyBreakdown};
use regless_isa::Kernel;
use regless_sim::{run_baseline, run_baseline_with, GpuConfig, RunReport};
use regless_workloads::rodinia;
use std::sync::Arc;

pub mod figs;
pub mod profile;
pub mod registry;
pub mod report;
pub mod sim_speed;
pub mod sweep;
pub mod timing;

/// The machine every experiment runs on: one GTX 980-class SM (the
/// workloads are SM-homogeneous, so one SM yields the same normalized
/// results as sixteen at a sixteenth of the wall-clock cost).
pub fn eval_gpu() -> GpuConfig {
    GpuConfig::gtx980_single_sm()
}

/// A storage design under evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DesignKind {
    /// Full register file, GTO scheduler.
    Baseline,
    /// RegLess at a given per-SM OSU capacity.
    RegLess {
        /// OSU entries per SM.
        entries: usize,
    },
    /// RegLess without the compressor (Figure 16 ablation).
    RegLessNoCompressor {
        /// OSU entries per SM.
        entries: usize,
    },
    /// Register-file hierarchy baseline.
    Rfh,
    /// Register-file virtualization baseline.
    Rfv,
    /// RegDem: cold registers demoted to a shared-memory scratch
    /// partition.
    RegDem,
    /// Statically-compressed register file (Angerd et al.).
    CompressRf,
}

impl DesignKind {
    /// The paper's main RegLess design point.
    pub fn regless_512() -> Self {
        DesignKind::RegLess { entries: 512 }
    }

    /// The matching energy-model design.
    pub fn energy_design(&self) -> Design {
        match *self {
            DesignKind::Baseline => Design::Baseline,
            DesignKind::RegLess { entries } | DesignKind::RegLessNoCompressor { entries } => {
                Design::RegLess {
                    osu_entries_per_sm: entries,
                }
            }
            DesignKind::Rfh => Design::Rfh,
            DesignKind::Rfv => Design::Rfv,
            DesignKind::RegDem => Design::RegDem,
            DesignKind::CompressRf => Design::CompressRf,
        }
    }
}

/// Run one kernel under one design on the evaluation machine.
///
/// # Panics
///
/// Panics on compile errors or simulation timeouts — the harness treats
/// these as fatal experiment failures.
pub fn run_design(kernel: &Kernel, design: DesignKind) -> RunReport {
    run_design_with(kernel, design, false)
}

/// [`run_design`] with an explicit run-loop mode: `stepped` forces the
/// cycle-by-cycle reference loop instead of the event-driven fast path.
/// Both modes must produce byte-identical reports; the sim-speed bench
/// asserts exactly that while measuring their relative throughput.
///
/// # Panics
///
/// Panics on compile errors or simulation timeouts.
pub fn run_design_with(kernel: &Kernel, design: DesignKind, stepped: bool) -> RunReport {
    let gpu = eval_gpu();
    match design {
        DesignKind::Baseline => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_baseline_with(gpu, Arc::new(compiled), stepped).expect("baseline run")
        }
        DesignKind::RegLess { entries } => {
            let cfg = RegLessConfig::with_capacity(entries);
            let compiled = compile(kernel, &cfg.region_config(&gpu)).expect("compile");
            let mut sim = RegLessSim::new(gpu, cfg, compiled);
            sim.set_stepped(stepped);
            sim.run().expect("regless run")
        }
        DesignKind::RegLessNoCompressor { entries } => {
            let cfg = RegLessConfig {
                compressor_enabled: false,
                ..RegLessConfig::with_capacity(entries)
            };
            let compiled = compile(kernel, &cfg.region_config(&gpu)).expect("compile");
            let mut sim = RegLessSim::new(gpu, cfg, compiled);
            sim.set_stepped(stepped);
            sim.run().expect("regless run")
        }
        DesignKind::Rfh => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_rfh_with(gpu, compiled, stepped).expect("rfh run")
        }
        DesignKind::Rfv => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_rfv_with(gpu, compiled, stepped).expect("rfv run")
        }
        DesignKind::RegDem => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_regdem_with(gpu, compiled, stepped).expect("regdem run")
        }
        DesignKind::CompressRf => {
            let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
            run_compress_rf_with(gpu, compiled, stepped).expect("compress-rf run")
        }
    }
}

/// Energy of a report under the matching model.
pub fn energy_of(report: &RunReport, design: DesignKind) -> EnergyBreakdown {
    energy(report, design.energy_design(), &eval_gpu())
}

/// Run the baseline design under an explicit warp scheduler (Figure 2's
/// GTO vs two-level comparison).
///
/// # Panics
///
/// Panics on compile errors or simulation timeouts.
pub fn run_baseline_with_scheduler(
    kernel: &Kernel,
    scheduler: regless_sim::SchedulerKind,
) -> RunReport {
    let gpu = GpuConfig {
        scheduler,
        ..eval_gpu()
    };
    let compiled = compile(kernel, &RegionConfig::default()).expect("compile");
    run_baseline(gpu, Arc::new(compiled)).expect("baseline run")
}

/// Fine-grained RegLess run options for the ablation benches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ReglessRunOpts {
    /// OSU entries per SM.
    pub entries: usize,
    /// Compressor present.
    pub compressor: bool,
    /// Warp re-activation order.
    pub order: regless_core::ActivationOrder,
    /// Override the derived region configuration (ablations on region
    /// creation); `None` uses [`RegLessConfig::region_config`].
    pub region_override: Option<RegionConfig>,
    /// Compressor pattern subset.
    pub patterns: regless_core::PatternSet,
    /// Apply the bank-aware register renumbering pass before compiling
    /// (paper §5.2).
    pub renumber: bool,
}

impl Default for ReglessRunOpts {
    fn default() -> Self {
        ReglessRunOpts {
            entries: 512,
            compressor: true,
            order: regless_core::ActivationOrder::Lifo,
            region_override: None,
            patterns: regless_core::PatternSet::Full,
            renumber: false,
        }
    }
}

/// Run RegLess with explicit options.
///
/// # Panics
///
/// Panics on compile errors or simulation timeouts.
pub fn run_regless_opts(kernel: &Kernel, opts: ReglessRunOpts) -> RunReport {
    let gpu = eval_gpu();
    let cfg = RegLessConfig {
        compressor_enabled: opts.compressor,
        activation_order: opts.order,
        compressor_patterns: opts.patterns,
        ..RegLessConfig::with_capacity(opts.entries)
    };
    let rc = opts
        .region_override
        .unwrap_or_else(|| cfg.region_config(&gpu));
    let renumbered;
    let kernel = if opts.renumber {
        renumbered = regless_compiler::renumber_for_banks(kernel).0;
        &renumbered
    } else {
        kernel
    };
    let compiled = compile(kernel, &rc).expect("compile");
    RegLessSim::new(gpu, cfg, compiled)
        .run()
        .expect("regless run")
}

/// Compile a benchmark with the default (baseline-study) region config.
pub fn compile_default(kernel: &Kernel) -> CompiledKernel {
    compile(kernel, &RegionConfig::default()).expect("compile")
}

/// All benchmark names.
pub fn benchmarks() -> Vec<&'static str> {
    rodinia::NAMES.to_vec()
}

/// Geometric mean.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Render a horizontal ASCII bar chart (one row per label); bars scale to
/// the maximum value. Used to make the per-benchmark figures visually
/// comparable to the paper's charts.
pub fn bar_chart(rows: &[(String, f64)], width: usize) -> String {
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let bar = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} {value:>7.3} {}
",
            "#".repeat(bar.max(usize::from(*value > 0.0)))
        ));
    }
    out
}

/// Render an aligned plain-text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_uniform_is_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["bench", "value"],
            &[
                vec!["bfs".into(), "1.0".into()],
                vec!["streamcluster".into(), "0.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("bench"));
        assert!(lines[3].starts_with("streamcluster"));
    }

    /// One end-to-end smoke test across every design on the cheapest
    /// benchmark (full runs live in the figure binaries).
    #[test]
    fn all_designs_run_one_benchmark() {
        let kernel = rodinia::kernel("nn");
        let base = run_design(&kernel, DesignKind::Baseline);
        for d in [
            DesignKind::regless_512(),
            DesignKind::RegLessNoCompressor { entries: 512 },
            DesignKind::Rfh,
            DesignKind::Rfv,
            DesignKind::RegDem,
            DesignKind::CompressRf,
        ] {
            let r = run_design(&kernel, d);
            assert_eq!(r.total().insns, base.total().insns, "{d:?}");
            let e = energy_of(&r, d);
            assert!(e.total_pj() > 0.0);
        }
    }
}
