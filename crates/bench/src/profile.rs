//! CPI-stack profiles and the performance-regression gate.
//!
//! `regless profile` runs one kernel under one design and renders the
//! per-cycle issue-slot attribution (see DESIGN.md §10) as a table, CSV,
//! or JSON; `regless diff` compares two saved JSON profiles and exits
//! non-zero when a gated metric regresses past a threshold. CI keeps a
//! committed baseline profile and runs the diff on every push, so a
//! timing-model change that silently costs cycles fails the build with a
//! per-reason breakdown of where the slots went.

use crate::format_table;
use regless_sim::{IssueStack, RunReport, StallReason};

/// Regions reported in a profile's hotspot list.
pub const HOTSPOT_REGIONS: usize = 8;

/// One region's merged issue stack inside a [`ProfileReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionProfile {
    /// The compiler-assigned region id.
    pub region: u32,
    /// Issue slots charged to warps executing (or stalled in) the region,
    /// merged across SMs.
    pub stack: IssueStack,
}

regless_json::impl_json_struct!(RegionProfile { region, stack });

/// A run's CPI-stack profile: headline metrics, the whole-GPU issue
/// stack, and the top region hotspots. Serialized to JSON by
/// `regless profile --format json` and consumed by `regless diff`.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileReport {
    /// Kernel name (benchmark name or file stem).
    pub kernel: String,
    /// Design label (`baseline`, `regless`, `rfh`, `rfv`, ...).
    pub design: String,
    /// OSU entries per SM (0 for designs without an OSU).
    pub capacity: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions executed.
    pub insns: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Total issue slots accounted (= cycles × schedulers × slots × SMs;
    /// equals `stack.total()` by the conservation invariant).
    pub issue_slots: u64,
    /// The whole-GPU issue stack.
    pub stack: IssueStack,
    /// The [`HOTSPOT_REGIONS`] regions with the most stalled slots.
    pub regions: Vec<RegionProfile>,
}

regless_json::impl_json_struct!(ProfileReport {
    kernel,
    design,
    capacity,
    cycles,
    insns,
    ipc,
    issue_slots,
    stack,
    regions,
});

impl ProfileReport {
    /// Build a profile from a finished run.
    pub fn collect(report: &RunReport, kernel: &str, design: &str, capacity: usize) -> Self {
        let stack = report.issue_stack();
        let regions = report
            .region_hotspots(HOTSPOT_REGIONS)
            .into_iter()
            .map(|(region, stack)| RegionProfile { region, stack })
            .collect();
        ProfileReport {
            kernel: kernel.to_string(),
            design: design.to_string(),
            capacity,
            cycles: report.cycles,
            insns: report.total().insns,
            ipc: report.ipc(),
            issue_slots: stack.total(),
            stack,
            regions,
        }
    }

    /// Render as an aligned plain-text table (the `--format table`
    /// default). The output is deterministic for a deterministic run and
    /// is golden-tested byte-for-byte.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "profile: kernel `{}` under {} (capacity {})\n\
             cycles {}  insns {}  IPC {:.3}\n\n",
            self.kernel, self.design, self.capacity, self.cycles, self.insns, self.ipc
        );
        out.push_str(&format!(
            "issue-slot breakdown ({} slots):\n",
            self.issue_slots
        ));
        let rows: Vec<Vec<String>> = self
            .stack
            .entries()
            .map(|(reason, slots)| {
                vec![
                    reason.name().to_string(),
                    slots.to_string(),
                    format!("{:.2}%", 100.0 * self.stack.fraction(reason)),
                ]
            })
            .collect();
        out.push_str(&format_table(&["reason", "slots", "share"], &rows));
        if !self.regions.is_empty() {
            out.push_str("\ntop region hotspots (by stalled slots):\n");
            let rows: Vec<Vec<String>> = self
                .regions
                .iter()
                .map(|r| {
                    vec![
                        format!("r{}", r.region),
                        r.stack.get(StallReason::Issued).to_string(),
                        r.stack.stalled().to_string(),
                        dominant_stall(&r.stack)
                            .map_or_else(|| "-".to_string(), |d| d.name().to_string()),
                    ]
                })
                .collect();
            out.push_str(&format_table(
                &["region", "issued", "stalled", "top stall"],
                &rows,
            ));
        }
        out
    }

    /// Render as flat CSV (`kind,name,value` rows): headline metrics,
    /// then per-reason slots, then per-region per-reason slots.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("kind,name,value\n");
        out.push_str(&format!("meta,kernel,{}\n", self.kernel));
        out.push_str(&format!("meta,design,{}\n", self.design));
        out.push_str(&format!("meta,capacity,{}\n", self.capacity));
        out.push_str(&format!("metric,cycles,{}\n", self.cycles));
        out.push_str(&format!("metric,insns,{}\n", self.insns));
        out.push_str(&format!("metric,ipc,{:.6}\n", self.ipc));
        out.push_str(&format!("metric,issue_slots,{}\n", self.issue_slots));
        for (reason, slots) in self.stack.entries() {
            out.push_str(&format!("stall,{},{slots}\n", reason.name()));
        }
        for r in &self.regions {
            for (reason, slots) in r.stack.entries() {
                out.push_str(&format!("region,r{}.{},{slots}\n", r.region, reason.name()));
            }
        }
        out
    }

    /// Serialize to pretty JSON (the `--format json` / saved-baseline
    /// layout `regless diff` reads back).
    pub fn to_json_string(&self) -> String {
        let mut s = regless_json::to_string_pretty(self);
        s.push('\n');
        s
    }

    /// Parse a profile saved by [`ProfileReport::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns an error when the text is not valid profile JSON.
    pub fn from_json_str(text: &str) -> Result<Self, regless_json::JsonError> {
        regless_json::from_str(text)
    }
}

/// The stall reason with the most slots in a stack (`None` if no slot
/// stalled). Ties break toward the reason with the lowest
/// [`StallReason::index`], making the choice deterministic.
fn dominant_stall(stack: &IssueStack) -> Option<StallReason> {
    StallReason::ALL
        .iter()
        .copied()
        .filter(|&r| r != StallReason::Issued)
        .max_by_key(|&r| (stack.get(r), std::cmp::Reverse(r.index())))
        .filter(|&r| stack.get(r) > 0)
}

/// One compared quantity in a [`ProfileDiff`].
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// Metric name (`cycles`, `ipc`, `stall.<reason>`).
    pub name: String,
    /// Value in the old profile.
    pub a: f64,
    /// Value in the new profile.
    pub b: f64,
    /// Signed relative change in percent (`(b - a) / a × 100`); 0 when
    /// both sides are 0, +∞-clamped to `b × 100` when only `a` is 0.
    pub delta_pct: f64,
    /// How much of the change counts as a *regression* in percent
    /// (0 for improvements and for ungated informational rows).
    pub regression_pct: f64,
}

/// The result of comparing two profiles.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileDiff {
    /// All compared rows, gated metrics first.
    pub rows: Vec<DiffRow>,
    /// The largest `regression_pct` across gated metrics.
    pub worst_regression_pct: f64,
}

/// Signed relative change in percent, defined as 0 when `a == b == 0`.
fn pct_delta(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        if b == 0.0 {
            0.0
        } else {
            100.0 * b
        }
    } else {
        100.0 * (b - a) / a
    }
}

/// Compare two profiles. Exactly two metrics are *gated* (feed
/// `worst_regression_pct`): `cycles`, where an increase is a regression,
/// and `ipc`, where a decrease is one. Per-reason stall slots are
/// informational — they explain *where* the slots went, but their counts
/// move legitimately whenever timing shifts, so they never fail the gate.
pub fn diff(a: &ProfileReport, b: &ProfileReport) -> ProfileDiff {
    let mut rows = Vec::new();
    let cycles_delta = pct_delta(a.cycles as f64, b.cycles as f64);
    rows.push(DiffRow {
        name: "cycles".into(),
        a: a.cycles as f64,
        b: b.cycles as f64,
        delta_pct: cycles_delta,
        regression_pct: cycles_delta.max(0.0),
    });
    let ipc_delta = pct_delta(a.ipc, b.ipc);
    rows.push(DiffRow {
        name: "ipc".into(),
        a: a.ipc,
        b: b.ipc,
        delta_pct: ipc_delta,
        regression_pct: (-ipc_delta).max(0.0),
    });
    for (reason, slots_a) in a.stack.entries() {
        let slots_b = b.stack.get(reason);
        rows.push(DiffRow {
            name: format!("stall.{}", reason.name()),
            a: slots_a as f64,
            b: slots_b as f64,
            delta_pct: pct_delta(slots_a as f64, slots_b as f64),
            regression_pct: 0.0,
        });
    }
    let worst = rows.iter().map(|r| r.regression_pct).fold(0.0f64, f64::max);
    ProfileDiff {
        rows,
        worst_regression_pct: worst,
    }
}

impl ProfileDiff {
    /// Render the comparison as an aligned table plus a summary line;
    /// with a `fail_above` threshold (percent) the line carries the
    /// gate's verdict.
    pub fn render(&self, a_label: &str, b_label: &str, fail_above: Option<f64>) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    trim_float(r.a),
                    trim_float(r.b),
                    format!("{:+.2}%", r.delta_pct),
                    if r.regression_pct > 0.0 {
                        format!("{:.2}%", r.regression_pct)
                    } else {
                        "-".to_string()
                    },
                ]
            })
            .collect();
        let mut out = format_table(&["metric", a_label, b_label, "delta", "regression"], &rows);
        match fail_above {
            // The verdict names both inputs: in CI logs the FAIL line is
            // often all anyone reads, and "which two files?" should never
            // require scrolling up.
            Some(t) => out.push_str(&format!(
                "\nworst gated regression: {:.2}% (threshold {:.2}%) — {}\n",
                self.worst_regression_pct,
                t,
                if self.exceeds(t) {
                    format!("FAIL ({b_label} regressed vs {a_label})")
                } else {
                    format!("ok ({b_label} vs {a_label})")
                }
            )),
            None => out.push_str(&format!(
                "\nworst gated regression: {:.2}%\n",
                self.worst_regression_pct
            )),
        }
        out
    }

    /// Whether the worst gated regression exceeds `fail_above` percent.
    pub fn exceeds(&self, fail_above: f64) -> bool {
        self.worst_regression_pct > fail_above
    }
}

/// One benchmark's baseline-vs-RegLess profile pair inside
/// `results/BENCH_profile.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchProfile {
    /// Benchmark name.
    pub name: String,
    /// Profile under the full-register-file baseline.
    pub baseline: ProfileReport,
    /// Profile under RegLess at the paper's 512-entry design point.
    pub regless: ProfileReport,
}

regless_json::impl_json_struct!(BenchProfile {
    name,
    baseline,
    regless,
});

/// Per-benchmark CPI stacks and IPC at the paper's design point, written
/// as `results/BENCH_profile.json` by `all_experiments` and uploaded as a
/// CI artifact. Runs come from the sweep engine's memoized cache, so the
/// report is nearly free when the figure experiments already ran.
pub fn bench_profiles_report() -> String {
    use crate::sweep::{self, RunVariant};
    use crate::DesignKind;
    let jobs: Vec<(String, RunVariant)> = regless_workloads::rodinia::NAMES
        .iter()
        .flat_map(|name| {
            let bench = sweep::rodinia_id(name);
            [
                (bench.clone(), RunVariant::Design(DesignKind::Baseline)),
                (bench, RunVariant::Design(DesignKind::regless_512())),
            ]
        })
        .collect();
    sweep::engine().prefetch(&jobs);
    let mut profiles = Vec::new();
    for name in regless_workloads::rodinia::NAMES {
        let bench = sweep::rodinia_id(name);
        let base = sweep::design(&bench, DesignKind::Baseline);
        let rl = sweep::design(&bench, DesignKind::regless_512());
        profiles.push(BenchProfile {
            name: (*name).to_string(),
            baseline: ProfileReport::collect(&base, name, "baseline", 0),
            regless: ProfileReport::collect(&rl, name, "regless", 512),
        });
    }
    regless_json::to_string_pretty(&profiles) + "\n"
}

/// Integral values print without a fraction; everything else with three
/// decimals (IPC precision).
fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regless_sim::StallReason;

    fn profile(cycles: u64, insns: u64, stalled: u64) -> ProfileReport {
        let mut stack = IssueStack::new();
        stack.charge_n(StallReason::Issued, insns);
        stack.charge_n(StallReason::DataHazard, stalled);
        ProfileReport {
            kernel: "k".into(),
            design: "regless".into(),
            capacity: 512,
            cycles,
            insns,
            ipc: insns as f64 / cycles as f64,
            issue_slots: stack.total(),
            stack,
            regions: vec![RegionProfile { region: 0, stack }],
        }
    }

    #[test]
    fn json_round_trips() {
        let p = profile(100, 50, 30);
        let text = p.to_json_string();
        let back = ProfileReport::from_json_str(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn diff_flags_cycle_regression_only_in_the_bad_direction() {
        let a = profile(100, 50, 30);
        let b = profile(110, 50, 40);
        let d = diff(&a, &b);
        // 10% more cycles and the matching IPC loss are both gated.
        assert!((d.worst_regression_pct - 10.0).abs() < 1e-9);
        assert!(d.exceeds(5.0));
        assert!(!d.exceeds(15.0));
        // The improvement direction gates nothing.
        let d = diff(&b, &a);
        assert!(
            d.rows[0].regression_pct == 0.0,
            "fewer cycles is not a regression"
        );
        assert!(!d.exceeds(5.0));
    }

    #[test]
    fn gate_verdict_names_both_input_files() {
        let a = profile(100, 50, 30);
        let b = profile(110, 50, 40);
        let d = diff(&a, &b);
        let failing = d.render("old.json", "new.json", Some(5.0));
        assert!(
            failing.contains("FAIL (new.json regressed vs old.json)"),
            "{failing}"
        );
        let passing = d.render("old.json", "new.json", Some(15.0));
        assert!(passing.contains("ok (new.json vs old.json)"), "{passing}");
    }

    #[test]
    fn stall_rows_are_informational() {
        let a = profile(100, 50, 10);
        let b = profile(100, 50, 90);
        let d = diff(&a, &b);
        let row = d
            .rows
            .iter()
            .find(|r| r.name == "stall.data_hazard")
            .unwrap();
        assert!(row.delta_pct > 0.0);
        assert_eq!(row.regression_pct, 0.0);
        assert_eq!(d.worst_regression_pct, 0.0);
    }

    #[test]
    fn renderers_are_deterministic_and_cover_all_reasons() {
        let p = profile(100, 50, 30);
        let table = p.render_table();
        assert_eq!(table, p.render_table());
        let csv = p.render_csv();
        for r in StallReason::ALL {
            assert!(table.contains(r.name()), "table missing {}", r.name());
            assert!(csv.contains(&format!("stall,{},", r.name())));
        }
        assert!(csv.contains("metric,cycles,100"));
        assert!(table.contains("top region hotspots"));
    }

    #[test]
    fn dominant_stall_ignores_issued_and_empty() {
        let mut s = IssueStack::new();
        s.charge_n(StallReason::Issued, 100);
        assert_eq!(dominant_stall(&s), None);
        s.charge_n(StallReason::Drain, 5);
        s.charge_n(StallReason::Barrier, 5);
        // Tie: the lower-indexed reason wins deterministically.
        assert_eq!(dominant_stall(&s), Some(StallReason::Barrier));
    }
}
