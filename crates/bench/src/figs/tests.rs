//! Smoke tests for the cheap (compiler-only or model-only) figure modules;
//! the simulation-heavy figures are exercised by their binaries and the
//! `all_experiments` run.

use super::*;

#[test]
fn fig05_renders_liveness_profile() {
    let r = fig05::report();
    assert!(r.contains("live registers per static instruction"));
    assert!(r.contains("max live registers"));
    assert!(r.lines().count() > 20);
}

#[test]
fn fig11_covers_all_capacities() {
    let r = fig11::report();
    for entries in fig11::CAPACITIES {
        assert!(r.contains(&entries.to_string()), "missing {entries}");
    }
    assert!(r.contains("compressor"));
}

#[test]
fn fig19_lists_every_benchmark() {
    let r = fig19::report();
    for name in regless_workloads::rodinia::NAMES {
        assert!(r.contains(name), "missing {name}");
    }
}

#[test]
fn table1_matches_paper_parameters() {
    let r = table1::report();
    assert!(r.contains("16, 64 warps each, 4 schedulers"));
    assert!(r.contains("48KB, 32MSHRs, data accesses bypassed"));
    assert!(r.contains("one request per cycle"));
    assert!(r.contains("2MB L2 in 4 partitions"));
}
