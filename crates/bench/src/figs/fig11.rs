//! Figure 11: area of RegLess configurations, normalized to the
//! 2048-entry baseline register file.

use crate::format_table;
use regless_energy::{baseline_rf_area, regless_area};

/// The paper's capacity sweep.
pub const CAPACITIES: [usize; 7] = [128, 192, 256, 384, 512, 1024, 2048];

/// Regenerate the figure as a text table.
pub fn report() -> String {
    let base = baseline_rf_area();
    let mut rows = Vec::new();
    for entries in CAPACITIES {
        let a = regless_area(entries);
        rows.push(vec![
            entries.to_string(),
            format!("{:.3}", a.logic / base),
            format!("{:.3}", a.storage / base),
            format!("{:.3}", a.compressor / base),
            format!("{:.3}", a.total() / base),
        ]);
    }
    let mut out =
        String::from("Figure 11: area by OSU capacity, normalized to 2048-entry baseline RF\n\n");
    out.push_str(&format_table(
        &["entries/SM", "logic", "storage", "compressor", "total"],
        &rows,
    ));
    out
}
