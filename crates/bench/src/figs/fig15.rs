//! Figure 15: total GPU energy for the No-RF bound, RFH, RFV, and RegLess,
//! normalized to baseline, per benchmark.

use crate::{energy_of, format_table, geomean, sweep, DesignKind};
use regless_energy::{energy, Design};
use regless_workloads::rodinia;

/// Regenerate the figure as a text table.
pub fn report() -> String {
    let gpu = crate::eval_gpu();
    let mut rows = Vec::new();
    let mut geo = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for name in rodinia::NAMES {
        let bench = sweep::rodinia_id(name);
        let base = sweep::design(&bench, DesignKind::Baseline);
        let eb = energy_of(&base, DesignKind::Baseline).total_pj();
        // The No-RF bound: baseline performance with a free register file.
        let norf = energy(&base, Design::NoRf, &gpu).total_pj() / eb;
        geo[0].push(norf);
        let mut row = vec![name.to_string(), format!("{norf:.3}")];
        let designs = [DesignKind::Rfh, DesignKind::Rfv, DesignKind::regless_512()];
        for (i, &d) in designs.iter().enumerate() {
            let r = sweep::design(&bench, d);
            let ratio = energy_of(&r, d).total_pj() / eb;
            geo[i + 1].push(ratio);
            row.push(format!("{ratio:.3}"));
        }
        rows.push(row);
    }
    rows.push(vec![
        "geomean".into(),
        format!("{:.3}", geomean(&geo[0])),
        format!("{:.3}", geomean(&geo[1])),
        format!("{:.3}", geomean(&geo[2])),
        format!("{:.3}", geomean(&geo[3])),
    ]);
    let mut out = String::from(
        "Figure 15: total GPU energy normalized to baseline (No RF = upper\n\
         bound on savings)\n\n",
    );
    out.push_str(&format_table(
        &["benchmark", "No RF", "RFH", "RFV", "RegLess"],
        &rows,
    ));
    out
}
