//! Figure 3: backing-store accesses per 100 cycles during hotspot's steady
//! state — baseline RF vs RF hierarchy vs RegLess.

use crate::{format_table, sweep, DesignKind};

/// Number of steady-state windows shown.
const WINDOWS: usize = 30;

/// Regenerate the figure as a text table (one row per 100-cycle window).
pub fn report() -> String {
    let series = |d: DesignKind| -> Vec<u64> {
        let r = sweep::design(&sweep::rodinia_id("hotspot"), d);
        r.sm_stats[0].backing_series.samples().to_vec()
    };
    let base = series(DesignKind::Baseline);
    let rfh = series(DesignKind::Rfh);
    let rl = series(DesignKind::regless_512());
    // Steady state: skip the first quarter of each run.
    let pick = |s: &[u64]| -> Vec<u64> {
        let start = s.len() / 4;
        s[start..].iter().copied().take(WINDOWS).collect()
    };
    let (b, h, r) = (pick(&base), pick(&rfh), pick(&rl));
    let mut rows = Vec::new();
    for i in 0..WINDOWS.min(b.len()).min(h.len()).min(r.len()) {
        rows.push(vec![
            format!("{}", i * 100),
            b[i].to_string(),
            h[i].to_string(),
            r[i].to_string(),
        ]);
    }
    let mean = |s: &[u64]| s.iter().sum::<u64>() as f64 / s.len().max(1) as f64;
    let mut out = String::from(
        "Figure 3: backing-store accesses per 100 cycles, hotspot steady state\n\
         (baseline: RF accesses; RFH: main-RF accesses; RegLess: L1 register requests)\n\n",
    );
    out.push_str(&format_table(
        &["cycle", "Baseline", "RF Hierarchy", "RegLess"],
        &rows,
    ));
    out.push_str(&format!(
        "\nmeans: baseline {:.0}, RFH {:.0}, RegLess {:.1}\n",
        mean(&b),
        mean(&h),
        mean(&r)
    ));
    out
}
