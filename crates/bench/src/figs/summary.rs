//! Machine-readable summary of the reproduction's headline metrics,
//! written as `results/summary.json` by `all_experiments` so downstream
//! tooling (plots, CI thresholds) need not parse the text tables.

use crate::sweep::{self, RunVariant};
use crate::{energy_of, geomean, DesignKind};
use regless_workloads::rodinia;

/// Per-benchmark measurements at the paper's 512-entry design point.
#[derive(Clone, Debug)]
pub struct BenchmarkSummary {
    /// Benchmark name.
    pub name: String,
    /// Baseline cycles.
    pub baseline_cycles: u64,
    /// RegLess cycles.
    pub regless_cycles: u64,
    /// RegLess run time normalized to baseline.
    pub runtime_ratio: f64,
    /// Register-structure energy ratio.
    pub rf_energy_ratio: f64,
    /// Whole-GPU energy ratio.
    pub gpu_energy_ratio: f64,
    /// Fraction of preloads served without touching memory.
    pub preloads_staged_fraction: f64,
    /// RegLess L1 register requests per cycle.
    pub reg_l1_requests_per_cycle: f64,
}

/// The whole reproduction summary.
#[derive(Clone, Debug)]
pub struct Summary {
    /// The design point (OSU entries per SM).
    pub osu_entries_per_sm: usize,
    /// Geomean normalized run time (paper: ~1.00).
    pub runtime_geomean: f64,
    /// Geomean register-structure energy ratio (paper: 0.247).
    pub rf_energy_geomean: f64,
    /// Geomean GPU energy ratio (paper: 0.89).
    pub gpu_energy_geomean: f64,
    /// Per-benchmark detail.
    pub benchmarks: Vec<BenchmarkSummary>,
}

regless_json::impl_json_struct!(BenchmarkSummary {
    name,
    baseline_cycles,
    regless_cycles,
    runtime_ratio,
    rf_energy_ratio,
    gpu_energy_ratio,
    preloads_staged_fraction,
    reg_l1_requests_per_cycle,
});
regless_json::impl_json_struct!(Summary {
    osu_entries_per_sm,
    runtime_geomean,
    rf_energy_geomean,
    gpu_energy_geomean,
    benchmarks,
});

/// Measure everything at the 512-entry design point.
pub fn collect() -> Summary {
    // Warm the cache across all cores before the sequential tabulation.
    let jobs: Vec<(String, RunVariant)> = rodinia::NAMES
        .iter()
        .flat_map(|name| {
            let bench = sweep::rodinia_id(name);
            [
                (bench.clone(), RunVariant::Design(DesignKind::Baseline)),
                (bench, RunVariant::Design(DesignKind::regless_512())),
            ]
        })
        .collect();
    sweep::engine().prefetch(&jobs);
    let mut benchmarks = Vec::new();
    for name in rodinia::NAMES {
        let bench = sweep::rodinia_id(name);
        let base = sweep::design(&bench, DesignKind::Baseline);
        let rl = sweep::design(&bench, DesignKind::regless_512());
        let eb = energy_of(&base, DesignKind::Baseline);
        let er = energy_of(&rl, DesignKind::regless_512());
        let t = rl.total();
        benchmarks.push(BenchmarkSummary {
            name: name.to_string(),
            baseline_cycles: base.cycles,
            regless_cycles: rl.cycles,
            runtime_ratio: rl.cycles as f64 / base.cycles as f64,
            rf_energy_ratio: er.register_structures_pj / eb.register_structures_pj,
            gpu_energy_ratio: er.total_pj() / eb.total_pj(),
            preloads_staged_fraction: (t.preloads_osu + t.preloads_compressor) as f64
                / t.preloads_total().max(1) as f64,
            reg_l1_requests_per_cycle: t.reg_l1_requests() as f64 / rl.cycles.max(1) as f64,
        });
    }
    let geo =
        |f: fn(&BenchmarkSummary) -> f64| geomean(&benchmarks.iter().map(f).collect::<Vec<_>>());
    Summary {
        osu_entries_per_sm: 512,
        runtime_geomean: geo(|b| b.runtime_ratio),
        rf_energy_geomean: geo(|b| b.rf_energy_ratio),
        gpu_energy_geomean: geo(|b| b.gpu_energy_ratio),
        benchmarks,
    }
}

/// The summary as pretty JSON.
pub fn report() -> String {
    let summary = collect();
    regless_json::to_string_pretty(&summary) + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_serializes_and_round_trips_keys() {
        // A cheap structural test: serialize a hand-built summary (no
        // simulation) and check the key fields appear.
        let s = Summary {
            osu_entries_per_sm: 512,
            runtime_geomean: 1.03,
            rf_energy_geomean: 0.28,
            gpu_energy_geomean: 0.87,
            benchmarks: vec![BenchmarkSummary {
                name: "bfs".into(),
                baseline_cycles: 100,
                regless_cycles: 103,
                runtime_ratio: 1.03,
                rf_energy_ratio: 0.28,
                gpu_energy_ratio: 0.87,
                preloads_staged_fraction: 0.9,
                reg_l1_requests_per_cycle: 0.05,
            }],
        };
        let json = regless_json::to_string(&s);
        for key in [
            "osu_entries_per_sm",
            "runtime_geomean",
            "bfs",
            "rf_energy_ratio",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
