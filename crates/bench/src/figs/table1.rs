//! Table 1: simulation parameters.

use crate::{eval_gpu, format_table};
use regless_sim::{table1_rows, GpuConfig};

/// Regenerate the table.
pub fn report() -> String {
    let full = GpuConfig::gtx980();
    let mut rows: Vec<Vec<String>> = table1_rows(&full)
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    rows.push(vec![
        "Compressor".into(),
        "one read or write per cycle, 12 lines per shard (48 per SM)".into(),
    ]);
    let mut out = String::from("Table 1: simulation parameters (GTX 980-class)\n\n");
    out.push_str(&format_table(&["parameter", "value"], &rows));
    out.push_str(&format!(
        "\nexperiments run on {} SM(s) of this configuration (workloads are\n\
         SM-homogeneous; normalized results are unchanged)\n",
        eval_gpu().num_sms
    ));
    out
}
