//! Figure 5: live-register count across the static instructions of
//! particle_filter, showing the low-liveness seams region creation uses.

use crate::compile_default;
use regless_workloads::rodinia;

/// Regenerate the figure as an ASCII profile.
pub fn report() -> String {
    let kernel = rodinia::particle_filter();
    let compiled = compile_default(&kernel);
    let counts = compiled.liveness().live_counts(&kernel);
    let max = counts.iter().map(|&(_, n)| n).max().unwrap_or(1);
    let mut out = String::from(
        "Figure 5: live registers per static instruction (particle_filter)\n\
         '*' bars; '<' marks local minima — the seams used as region\n\
         boundaries\n\n",
    );
    for (i, window) in counts.windows(3).enumerate() {
        let (at, n) = window[1];
        let seam = window[0].1 > n && window[2].1 >= n;
        out.push_str(&format!(
            "{:>4} {:>10} {:>3} {}{}\n",
            i + 1,
            at.to_string(),
            n,
            "*".repeat(n * 60 / max.max(1)),
            if seam { " <" } else { "" }
        ));
    }
    out.push_str(&format!("\nmax live registers: {max}\n"));
    out
}
