//! Table 2: average static instructions per region and average dynamic
//! cycles per region activation.

use crate::{compile_default, format_table, run_design, DesignKind};
use regless_workloads::rodinia;

/// Regenerate the table.
pub fn report() -> String {
    let mut rows = Vec::new();
    for name in rodinia::NAMES {
        let kernel = rodinia::kernel(name);
        let insns = compile_default(&kernel).mean_region_len();
        let r = run_design(&kernel, DesignKind::regless_512());
        let t = r.total();
        let cycles = t.region_active_cycles as f64 / t.regions_activated.max(1) as f64;
        rows.push(vec![
            name.to_string(),
            format!("{insns:.1}"),
            format!("{cycles:.0}"),
        ]);
    }
    let mut out = String::from(
        "Table 2: static instructions per region and dynamic cycles per\n\
         region activation\n\n",
    );
    out.push_str(&format_table(
        &["benchmark", "insns/region", "cycles/region"],
        &rows,
    ));
    out
}
