//! Figure 14: register-file energy for RFH, RFV, and RegLess, normalized
//! to the baseline register file, per benchmark.

use crate::{bar_chart, energy_of, format_table, geomean, sweep, DesignKind};
use regless_workloads::rodinia;

/// Regenerate the figure as a text table.
pub fn report() -> String {
    let mut rows = Vec::new();
    let mut geo = [Vec::new(), Vec::new(), Vec::new()];
    for name in rodinia::NAMES {
        let bench = sweep::rodinia_id(name);
        let base = sweep::design(&bench, DesignKind::Baseline);
        let eb = energy_of(&base, DesignKind::Baseline).register_structures_pj;
        let designs = [DesignKind::Rfh, DesignKind::Rfv, DesignKind::regless_512()];
        let mut row = vec![name.to_string()];
        for (i, &d) in designs.iter().enumerate() {
            let r = sweep::design(&bench, d);
            let ratio = energy_of(&r, d).register_structures_pj / eb;
            geo[i].push(ratio);
            row.push(format!("{ratio:.3}"));
        }
        rows.push(row);
    }
    rows.push(vec![
        "geomean".into(),
        format!("{:.3}", geomean(&geo[0])),
        format!("{:.3}", geomean(&geo[1])),
        format!("{:.3}", geomean(&geo[2])),
    ]);
    let mut out = String::from("Figure 14: register-file energy normalized to baseline\n\n");
    out.push_str(&format_table(
        &["benchmark", "RFH", "RFV", "RegLess"],
        &rows,
    ));
    let bars: Vec<(String, f64)> = rows
        .iter()
        .filter(|r| r[0] != "geomean")
        .map(|r| (r[0].clone(), r[3].parse().expect("regless column")))
        .collect();
    out.push('\n');
    out.push_str("RegLess column as bars (lower is better):\n");
    out.push_str(&bar_chart(&bars, 48));
    out
}
