//! Figure 13: run time vs whole-GPU energy for RegLess capacities,
//! normalized to baseline — the Pareto sweep.

use crate::{energy_of, format_table, geomean, sweep, DesignKind};
use regless_workloads::rodinia;

/// Capacities in the paper's Pareto plot (2048 omitted there).
pub const CAPACITIES: [usize; 6] = [128, 192, 256, 384, 512, 1024];

/// Regenerate the figure as a text table.
pub fn report() -> String {
    let mut time: Vec<Vec<f64>> = vec![Vec::new(); CAPACITIES.len()];
    let mut energy: Vec<Vec<f64>> = vec![Vec::new(); CAPACITIES.len()];
    for name in rodinia::NAMES {
        let bench = sweep::rodinia_id(name);
        let base = sweep::design(&bench, DesignKind::Baseline);
        let eb = energy_of(&base, DesignKind::Baseline).total_pj();
        for (i, &entries) in CAPACITIES.iter().enumerate() {
            let d = DesignKind::RegLess { entries };
            let r = sweep::design(&bench, d);
            time[i].push(r.cycles as f64 / base.cycles as f64);
            energy[i].push(energy_of(&r, d).total_pj() / eb);
        }
    }
    let mut rows = Vec::new();
    for (i, &entries) in CAPACITIES.iter().enumerate() {
        rows.push(vec![
            entries.to_string(),
            format!("{:.3}", geomean(&time[i])),
            format!("{:.3}", geomean(&energy[i])),
        ]);
    }
    let mut out = String::from(
        "Figure 13: run time vs GPU energy by OSU capacity (geomeans,\n\
         normalized to baseline)\n\n",
    );
    out.push_str(&format_table(
        &["entries/SM", "norm. run time", "norm. GPU energy"],
        &rows,
    ));
    out
}
