//! Figure 17: where preloaded registers were found — OSU, compressor, L1,
//! or L2/DRAM.

use crate::{format_table, sweep, DesignKind};
use regless_workloads::rodinia;

/// Regenerate the figure as a text table (percent of preloads).
pub fn report() -> String {
    let mut rows = Vec::new();
    let mut tot = [0u64; 4];
    for name in rodinia::NAMES {
        let r = sweep::design(&sweep::rodinia_id(name), DesignKind::regless_512());
        let t = r.total();
        let parts = [
            t.preloads_osu,
            t.preloads_compressor,
            t.preloads_l1,
            t.preloads_l2_dram,
        ];
        for (a, p) in tot.iter_mut().zip(parts) {
            *a += p;
        }
        let sum = parts.iter().sum::<u64>().max(1) as f64;
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", 100.0 * parts[0] as f64 / sum),
            format!("{:.1}", 100.0 * parts[1] as f64 / sum),
            format!("{:.2}", 100.0 * parts[2] as f64 / sum),
            format!("{:.3}", 100.0 * parts[3] as f64 / sum),
        ]);
    }
    let sum = tot.iter().sum::<u64>().max(1) as f64;
    rows.push(vec![
        "mean".into(),
        format!("{:.1}", 100.0 * tot[0] as f64 / sum),
        format!("{:.1}", 100.0 * tot[1] as f64 / sum),
        format!("{:.2}", 100.0 * tot[2] as f64 / sum),
        format!("{:.3}", 100.0 * tot[3] as f64 / sum),
    ]);
    let mut out = String::from("Figure 17: preload source (% of preloads)\n\n");
    out.push_str(&format_table(
        &["benchmark", "OSU", "Compressor", "L1", "L2/DRAM"],
        &rows,
    ));
    out
}
