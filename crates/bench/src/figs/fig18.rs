//! Figure 18: average RegLess L1 requests per cycle, split into preloads,
//! stores, and invalidations.

use crate::{format_table, sweep, DesignKind};
use regless_workloads::rodinia;

/// Regenerate the figure as a text table.
pub fn report() -> String {
    let mut rows = Vec::new();
    for name in rodinia::NAMES {
        let r = sweep::design(&sweep::rodinia_id(name), DesignKind::regless_512());
        let t = r.total();
        let c = r.cycles.max(1) as f64;
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", (t.preloads_l1 + t.preloads_l2_dram) as f64 / c),
            format!("{:.4}", t.reg_stores_l1 as f64 / c),
            format!("{:.4}", t.reg_invalidate_l1 as f64 / c),
            format!("{:.4}", t.reg_l1_requests() as f64 / c),
        ]);
    }
    let mut out = String::from("Figure 18: RegLess L1 requests per cycle (of 1.0 available)\n\n");
    out.push_str(&format_table(
        &["benchmark", "preloads", "stores", "invalidations", "total"],
        &rows,
    ));
    out
}
