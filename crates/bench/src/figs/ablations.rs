//! Ablation benches for the design decisions DESIGN.md calls out.

use crate::{format_table, geomean, sweep, DesignKind, ReglessRunOpts};
use regless_compiler::RegionConfig;
use regless_core::ActivationOrder;

/// Benchmarks used for ablations (a representative, cheap subset).
const SUBSET: [&str; 6] = ["bfs", "hotspot", "kmeans", "lud", "pathfinder", "srad_v2"];

fn geomean_ratio(opts: ReglessRunOpts) -> f64 {
    let mut ratios = Vec::new();
    for name in SUBSET {
        let bench = sweep::rodinia_id(name);
        let base = sweep::design(&bench, DesignKind::Baseline).cycles as f64;
        ratios.push(sweep::regless_opts(&bench, opts).cycles as f64 / base);
    }
    geomean(&ratios)
}

/// Compressor ablation: full pattern set vs none (Figure 16's
/// "no compressor" bar).
pub fn compressor() -> String {
    let full = geomean_ratio(ReglessRunOpts::default());
    let none = geomean_ratio(ReglessRunOpts {
        compressor: false,
        ..Default::default()
    });
    let rows = vec![
        vec!["full pattern set".to_string(), format!("{full:.3}")],
        vec!["no compressor".to_string(), format!("{none:.3}")],
    ];
    let mut out = String::from("Ablation: compressor (geomean normalized run time, subset)\n\n");
    out.push_str(&format_table(&["configuration", "norm. run time"], &rows));
    out
}

/// Warp re-activation order: the paper's LIFO stack vs FIFO.
pub fn warp_order() -> String {
    let lifo = geomean_ratio(ReglessRunOpts::default());
    let fifo = geomean_ratio(ReglessRunOpts {
        order: ActivationOrder::Fifo,
        ..Default::default()
    });
    let rows = vec![
        vec!["LIFO warp stack (paper)".to_string(), format!("{lifo:.3}")],
        vec!["FIFO queue".to_string(), format!("{fifo:.3}")],
    ];
    let mut out =
        String::from("Ablation: warp re-activation order (geomean normalized run time)\n\n");
    out.push_str(&format_table(&["policy", "norm. run time"], &rows));
    out
}

/// Load/use region splitting (Algorithm 1 line 22) on vs off.
pub fn load_split() -> String {
    let gpu = crate::eval_gpu();
    let base_rc = regless_core::RegLessConfig::paper_default().region_config(&gpu);
    let on = geomean_ratio(ReglessRunOpts::default());
    let off = geomean_ratio(ReglessRunOpts {
        region_override: Some(RegionConfig {
            split_load_use: false,
            ..base_rc
        }),
        ..Default::default()
    });
    let rows = vec![
        vec!["split load/use (paper)".to_string(), format!("{on:.3}")],
        vec![
            "loads and uses share regions".to_string(),
            format!("{off:.3}"),
        ],
    ];
    let mut out = String::from(
        "Ablation: global-load/first-use region splitting (geomean\n\
         normalized run time)\n\n",
    );
    out.push_str(&format_table(&["configuration", "norm. run time"], &rows));
    out
}

/// Bank-aware register renumbering (paper §5.2): same-bank source pairs
/// serialize at the OSU; the pass spreads them.
pub fn renumbering() -> String {
    let mut rows = Vec::new();
    for (label, renumber) in [("as generated", false), ("bank-aware renumbering", true)] {
        let mut ratios = Vec::new();
        let mut conflicts = 0u64;
        for name in SUBSET {
            let bench = sweep::rodinia_id(name);
            let base = sweep::design(&bench, DesignKind::Baseline).cycles as f64;
            let r = sweep::regless_opts(
                &bench,
                ReglessRunOpts {
                    renumber,
                    ..Default::default()
                },
            );
            ratios.push(r.cycles as f64 / base);
            conflicts += r.total().osu_bank_conflicts;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", geomean(&ratios)),
            conflicts.to_string(),
        ]);
    }
    let mut out = String::from("Ablation: bank-aware register renumbering (subset)\n\n");
    out.push_str(&format_table(
        &["register numbering", "norm. run time", "OSU bank conflicts"],
        &rows,
    ));
    out
}

/// Minimum region size (the paper's 6-instruction lower bound).
pub fn min_region_size() -> String {
    let gpu = crate::eval_gpu();
    let base_rc = regless_core::RegLessConfig::paper_default().region_config(&gpu);
    let mut rows = Vec::new();
    for min in [1usize, 3, 6, 9, 12] {
        let r = geomean_ratio(ReglessRunOpts {
            region_override: Some(RegionConfig {
                min_region_insns: min,
                ..base_rc
            }),
            ..Default::default()
        });
        rows.push(vec![min.to_string(), format!("{r:.3}")]);
    }
    let mut out = String::from(
        "Ablation: minimum region size (geomean normalized run time;\n\
         the paper uses 6)\n\n",
    );
    out.push_str(&format_table(
        &["min insns/region", "norm. run time"],
        &rows,
    ));
    out
}
