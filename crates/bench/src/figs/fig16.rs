//! Figure 16: run time of the 512-register RegLess design, normalized to
//! the baseline, per benchmark; geomean compared against no-compressor,
//! RFV, and RFH.

use crate::{bar_chart, format_table, geomean, sweep, DesignKind};
use regless_workloads::rodinia;

/// Regenerate the figure as a text table.
pub fn report() -> String {
    let mut rows = Vec::new();
    let mut bars = Vec::new();
    let mut rl = Vec::new();
    let mut nc = Vec::new();
    let mut rfv = Vec::new();
    let mut rfh = Vec::new();
    for name in rodinia::NAMES {
        let bench = sweep::rodinia_id(name);
        let base = sweep::design(&bench, DesignKind::Baseline).cycles as f64;
        let r = sweep::design(&bench, DesignKind::regless_512()).cycles as f64 / base;
        rl.push(r);
        nc.push(
            sweep::design(&bench, DesignKind::RegLessNoCompressor { entries: 512 }).cycles as f64
                / base,
        );
        rfv.push(sweep::design(&bench, DesignKind::Rfv).cycles as f64 / base);
        rfh.push(sweep::design(&bench, DesignKind::Rfh).cycles as f64 / base);
        rows.push(vec![name.to_string(), format!("{r:.3}")]);
        bars.push((name.to_string(), r));
    }
    rows.push(vec!["geomean".into(), format!("{:.3}", geomean(&rl))]);
    let mut out = String::from("Figure 16: run time normalized to baseline (lower is better)\n\n");
    out.push_str(&format_table(&["benchmark", "RegLess 512"], &rows));
    out.push_str(&format!(
        "\ngeomean comparison: RegLess {:.3} | no compressor {:.3} | RFV {:.3} | RFH {:.3}\n",
        geomean(&rl),
        geomean(&nc),
        geomean(&rfv),
        geomean(&rfh)
    ));
    out.push('\n');
    out.push_str(&bar_chart(&bars, 48));
    out
}
