//! Figure 12: combined static + average dynamic power for RegLess
//! configurations, normalized to the baseline register file.

use crate::figs::fig11::CAPACITIES;
use crate::{energy_of, format_table, geomean, sweep, DesignKind};
use regless_workloads::rodinia;

/// Regenerate the figure as a text table. Power is measured as register-
/// structure energy per cycle over all 21 benchmarks (geometric mean),
/// normalized to the baseline RF on the same workloads.
pub fn report() -> String {
    let mut baselines = Vec::new();
    let mut per_cap: Vec<Vec<f64>> = vec![Vec::new(); CAPACITIES.len()];
    for name in rodinia::NAMES {
        let bench = sweep::rodinia_id(name);
        let base = sweep::design(&bench, DesignKind::Baseline);
        let pb = energy_of(&base, DesignKind::Baseline).register_structures_pj / base.cycles as f64;
        baselines.push(pb);
        for (i, &entries) in CAPACITIES.iter().enumerate() {
            let r = sweep::design(&bench, DesignKind::RegLess { entries });
            let p = energy_of(&r, DesignKind::RegLess { entries }).register_structures_pj
                / r.cycles as f64;
            per_cap[i].push(p / pb);
        }
    }
    let mut rows = Vec::new();
    for (i, &entries) in CAPACITIES.iter().enumerate() {
        rows.push(vec![
            entries.to_string(),
            format!("{:.3}", geomean(&per_cap[i])),
        ]);
    }
    let mut out = String::from(
        "Figure 12: register-structure power by OSU capacity,\n\
         normalized to baseline RF (geomean over all benchmarks)\n\n",
    );
    out.push_str(&format_table(&["entries/SM", "normalized power"], &rows));
    out
}
