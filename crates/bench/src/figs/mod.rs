//! One module per reproduced table/figure; each exposes `report()`
//! returning the rendered text. The `fig*`/`table*` binaries are thin
//! wrappers, and `all_experiments` runs everything.

pub mod ablations;
pub mod extensions;
pub mod fig02;
pub mod fig03;
pub mod fig05;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod summary;

pub mod table1;
pub mod table2;
#[cfg(test)]
mod tests;
