//! Figure 19: per-region register statistics — average preloads, and the
//! mean and standard deviation of concurrent live registers.

use crate::{compile_default, format_table};
use regless_workloads::rodinia;

/// Regenerate the figure as a text table.
pub fn report() -> String {
    let mut rows = Vec::new();
    for name in rodinia::NAMES {
        let kernel = rodinia::kernel(name);
        let stats = compile_default(&kernel).region_register_stats();
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", stats.mean_preloads),
            format!("{:.1}", stats.mean_live),
            format!("{:.1}", stats.std_live),
        ]);
    }
    let mut out = String::from("Figure 19: preloads and concurrent live registers per region\n\n");
    out.push_str(&format_table(
        &["benchmark", "preloads", "mean live", "std dev"],
        &rows,
    ));
    out
}
