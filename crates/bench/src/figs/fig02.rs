//! Figure 2: average register working set in 100-cycle windows, GTO vs
//! two-level warp scheduling, per benchmark.

use crate::{format_table, sweep};
use regless_sim::SchedulerKind;
use regless_workloads::rodinia;

/// Regenerate the figure as a text table (KB per window).
pub fn report() -> String {
    let mut rows = Vec::new();
    for name in rodinia::NAMES {
        let bench = sweep::rodinia_id(name);
        let gto = sweep::baseline_with_scheduler(&bench, SchedulerKind::Gto);
        let two = sweep::baseline_with_scheduler(
            &bench,
            SchedulerKind::TwoLevel {
                active_per_scheduler: 4,
            },
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", gto.sm_stats[0].working_set.mean_kb()),
            format!("{:.1}", two.sm_stats[0].working_set.mean_kb()),
        ]);
    }
    let mut out =
        String::from("Figure 2: register working set per 100-cycle window (KB per SM)\n\n");
    out.push_str(&format_table(&["benchmark", "GTO", "2-Level"], &rows));
    out
}
