//! Extension studies beyond the paper's evaluation: the §7 forward-looking
//! claims and finer-grained design sweeps.

use crate::sweep::{self, RunVariant, HIGH_PRESSURE_ID};
use crate::{eval_gpu, format_table, geomean, DesignKind, ReglessRunOpts};
use regless_core::PatternSet;
use regless_sim::SchedulerKind;
use regless_workloads::{high_pressure_kernel, micro, rodinia};

/// §7: "RegLess would be able to oversubscribe the register file without
/// any design changes." A conventional register file must throttle
/// occupancy when per-thread register counts are high; RegLess stores only
/// live values, so every warp stays resident.
pub fn oversubscription() -> String {
    let kernel = high_pressure_kernel();
    let gpu = eval_gpu();
    let regs = kernel.num_regs() as usize;
    let rf_entries = gpu.rf_bytes_per_sm / 128;

    // Conventional RF: occupancy capped by register allocation.
    let limited = sweep::engine().run(HIGH_PRESSURE_ID, RunVariant::OccupancyLimited);
    // Idealized RF with no occupancy limit (the paper's baseline).
    let unlimited = sweep::design(HIGH_PRESSURE_ID, DesignKind::Baseline);
    // RegLess at the paper's design point.
    let regless = sweep::regless_opts(HIGH_PRESSURE_ID, ReglessRunOpts::default());

    let resident = (rf_entries / regs).min(gpu.warps_per_sm);
    let rows = vec![
        vec![
            "RF, occupancy-limited".to_string(),
            format!("{resident}/{}", gpu.warps_per_sm),
            limited.cycles.to_string(),
            format!("{:.3}", limited.cycles as f64 / unlimited.cycles as f64),
        ],
        vec![
            "RF, unlimited (ideal)".to_string(),
            format!("{0}/{0}", gpu.warps_per_sm),
            unlimited.cycles.to_string(),
            "1.000".to_string(),
        ],
        vec![
            "RegLess 512 (oversubscribed)".to_string(),
            format!("{0}/{0}", gpu.warps_per_sm),
            regless.cycles.to_string(),
            format!("{:.3}", regless.cycles as f64 / unlimited.cycles as f64),
        ],
    ];
    let mut out = format!(
        "Extension: register-file oversubscription (paper §7)\n\
         kernel `high_pressure`: {regs} registers/thread; a 2048-entry RF\n\
         holds {resident} of {} warps\n\n",
        gpu.warps_per_sm
    );
    out.push_str(&format_table(
        &["design", "resident warps", "cycles", "vs ideal RF"],
        &rows,
    ));
    out
}

/// Compressor pattern-set sweep: how much of the compressor's benefit
/// comes from each pattern family.
pub fn compressor_patterns() -> String {
    const SUBSET: [&str; 6] = ["bfs", "hotspot", "kmeans", "lud", "pathfinder", "srad_v2"];
    let mut rows = Vec::new();
    for (label, patterns, enabled) in [
        ("none (disabled)", PatternSet::Full, false),
        ("constants only", PatternSet::ConstantOnly, true),
        ("+ full-warp strides", PatternSet::FullWarpStrides, true),
        ("full set (paper)", PatternSet::Full, true),
    ] {
        let mut ratios = Vec::new();
        let mut compressed = 0u64;
        let mut offered = 0u64;
        for name in SUBSET {
            let bench = sweep::rodinia_id(name);
            let base = sweep::design(&bench, DesignKind::Baseline).cycles as f64;
            let r = sweep::regless_opts(
                &bench,
                ReglessRunOpts {
                    compressor: enabled,
                    patterns,
                    ..Default::default()
                },
            );
            ratios.push(r.cycles as f64 / base);
            compressed += r.total().compressor_compressed;
            offered += r.total().compressor_matches;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", geomean(&ratios)),
            format!("{:.1}%", 100.0 * compressed as f64 / offered.max(1) as f64),
        ]);
    }
    let mut out = String::from("Extension: compressor pattern-set sweep (geomean over subset)\n\n");
    out.push_str(&format_table(
        &["pattern set", "norm. run time", "evictions compressed"],
        &rows,
    ));
    out
}

/// Warp-scheduler study on the baseline design: GTO (the paper's choice),
/// loose round-robin, and two-level at several active-set sizes.
pub fn schedulers() -> String {
    const SUBSET: [&str; 6] = ["bfs", "hotspot", "kmeans", "lud", "pathfinder", "srad_v2"];
    let kinds = [
        ("GTO (paper)", SchedulerKind::Gto),
        ("LRR", SchedulerKind::Lrr),
        (
            "2-level, 2 active",
            SchedulerKind::TwoLevel {
                active_per_scheduler: 2,
            },
        ),
        (
            "2-level, 4 active",
            SchedulerKind::TwoLevel {
                active_per_scheduler: 4,
            },
        ),
        (
            "2-level, 8 active",
            SchedulerKind::TwoLevel {
                active_per_scheduler: 8,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, kind) in kinds {
        let mut ratios = Vec::new();
        let mut ws = Vec::new();
        for name in SUBSET {
            let bench = sweep::rodinia_id(name);
            let gto = sweep::baseline_with_scheduler(&bench, SchedulerKind::Gto);
            let r = sweep::baseline_with_scheduler(&bench, kind);
            ratios.push(r.cycles as f64 / gto.cycles as f64);
            ws.push(r.sm_stats[0].working_set.mean_kb());
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", geomean(&ratios)),
            format!("{:.1}", ws.iter().sum::<f64>() / ws.len() as f64),
        ]);
    }
    let mut out = String::from("Extension: warp-scheduler study (baseline design, subset)\n\n");
    out.push_str(&format_table(
        &["scheduler", "run time vs GTO", "working set (KB)"],
        &rows,
    ));
    out
}

/// The hand-written microbenchmarks under baseline vs RegLess: each kernel
/// isolates one architectural behaviour.
pub fn microbench() -> String {
    let mut rows = Vec::new();
    for kernel in micro::all() {
        let bench = sweep::micro_id(kernel.name());
        let base = sweep::design(&bench, DesignKind::Baseline);
        let rl = sweep::design(&bench, DesignKind::regless_512());
        let t = rl.total();
        let staged = t.preloads_osu + t.preloads_compressor;
        rows.push(vec![
            kernel.name().to_string(),
            base.cycles.to_string(),
            rl.cycles.to_string(),
            format!("{:.3}", rl.cycles as f64 / base.cycles as f64),
            format!(
                "{:.1}%",
                100.0 * staged as f64 / t.preloads_total().max(1) as f64
            ),
        ]);
    }
    let mut out = String::from("Extension: microbenchmarks (one architectural behaviour each)\n\n");
    out.push_str(&format_table(
        &[
            "kernel",
            "baseline cyc",
            "regless cyc",
            "ratio",
            "staged preloads",
        ],
        &rows,
    ));
    out
}

/// Dual-issue study: the GTX 980's schedulers can issue two instructions
/// per cycle; the OSU was sized to serve that rate (§5.2). Does RegLess's
/// story survive at issue width 2?
pub fn dual_issue() -> String {
    const SUBSET: [&str; 6] = ["bfs", "hotspot", "kmeans", "lud", "pathfinder", "srad_v2"];
    let mut rows = Vec::new();
    for width in [1usize, 2] {
        let mut ratios = Vec::new();
        let mut speedups = Vec::new();
        for name in SUBSET {
            let bench = sweep::rodinia_id(name);
            let base = sweep::engine().run(
                &bench,
                RunVariant::IssueWidth {
                    width,
                    regless: false,
                },
            );
            let base1 = sweep::design(&bench, DesignKind::Baseline);
            let rl = sweep::engine().run(
                &bench,
                RunVariant::IssueWidth {
                    width,
                    regless: true,
                },
            );
            ratios.push(rl.cycles as f64 / base.cycles as f64);
            speedups.push(base1.cycles as f64 / base.cycles as f64);
        }
        rows.push(vec![
            width.to_string(),
            format!("{:.3}", geomean(&speedups)),
            format!("{:.3}", geomean(&ratios)),
        ]);
    }
    let mut out = String::from(
        "Extension: issue width (baseline speedup over single-issue, and\n\
         RegLess run time vs the equal-width baseline)\n\n",
    );
    out.push_str(&format_table(
        &[
            "issue slots/scheduler",
            "baseline speedup",
            "RegLess vs baseline",
        ],
        &rows,
    ));
    out
}

/// OSU occupancy over time: how much of the 512-entry staging unit is
/// actually held by active regions (sampled every 100 cycles).
pub fn osu_occupancy() -> String {
    let mut rows = Vec::new();
    for name in rodinia::NAMES {
        let r = sweep::design(&sweep::rodinia_id(name), DesignKind::regless_512());
        let samples = r.sm_stats[0].osu_occupancy.samples();
        let mean = r.sm_stats[0].osu_occupancy.mean();
        let peak = samples.iter().copied().max().unwrap_or(0);
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", mean),
            peak.to_string(),
            format!("{:.0}%", 100.0 * mean / 512.0),
        ]);
    }
    let mut out = String::from(
        "Extension: OSU occupancy (active lines of 512, sampled per\n\
         100-cycle window)\n\n",
    );
    out.push_str(&format_table(
        &[
            "benchmark",
            "mean active",
            "peak active",
            "mean utilization",
        ],
        &rows,
    ));
    out
}
