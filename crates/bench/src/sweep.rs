//! Memoized, parallel sweep engine for the experiment harness.
//!
//! Every figure and table in this crate is built from a modest set of
//! `(benchmark, run variant)` simulations, and many figures share runs:
//! the baseline over all 21 Rodinia kernels alone is re-simulated by a
//! dozen reports. The engine runs each distinct simulation **once**,
//! memoizes the [`RunReport`] behind a thread-safe cache, and optionally
//! persists results as JSON under `results/cache/` so a second invocation
//! of a figure binary (or of `all_experiments`) replays from disk instead
//! of re-simulating.
//!
//! # Cache key
//!
//! The in-memory key is `(benchmark id, canonical RunVariant)`. Benchmark
//! ids are strings of the form `rodinia/<name>`, `micro/<name>`, or
//! `special/high_pressure`. Variants are canonicalized before lookup so
//! differently-phrased but identical runs share one entry (e.g. default
//! [`ReglessRunOpts`] is the same run as `DesignKind::RegLess { 512 }`,
//! and the GTO scheduler study point is the baseline design).
//!
//! # Invalidation
//!
//! On-disk entries live under `results/cache/<fingerprint>/`, where the
//! fingerprint hashes [`regless_sim::SIM_MODEL_VERSION`], the on-disk
//! format version, and the full evaluation [`GpuConfig`] as JSON. Any
//! change to simulator semantics (bump `SIM_MODEL_VERSION`) or to the
//! evaluation machine moves the directory, so stale entries are never
//! read — they are simply orphaned and can be deleted at leisure.
//!
//! Environment knobs: `REGLESS_SWEEP=off` disables the engine entirely
//! (every call simulates), `REGLESS_SWEEP=cold` ignores existing disk
//! entries but still writes fresh ones (and memoizes in memory), and
//! `REGLESS_SWEEP_DIR` overrides the `results/cache` location.

use crate::{eval_gpu, run_design, run_regless_opts, DesignKind, ReglessRunOpts};
use regless_sim::{run_baseline, GpuConfig, Machine, OccupancyLimitedRf, RunReport, SchedulerKind};
use regless_telemetry::{Log2Histogram, ProgressMeter, SelfProfiler};
use regless_workloads::{high_pressure_kernel, micro, rodinia};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Bump when the on-disk JSON layout changes (part of the fingerprint).
/// v2: `SmStats` gained the CPI-stack fields (`issue_stack`,
/// `warp_stacks`, `region_stacks`).
/// v3: `SmStats` gained the eviction taxonomy (`eviction_stack`,
/// `osu_lines_evicted`), the compressor effectiveness counters
/// (`comp_*`), and the occupancy time series (`osu_reserved_series`,
/// `osu_free_series`, `cm_queue_series`).
/// v4: `SmStats::idle_cycles` became `idle_slots` (per-slot counting; the
/// telemetry key renamed with it).
/// v5: `SmStats` gained the RegDem spill counters (`spill_stores`,
/// `spill_fills`, `spill_throttled_warp_cycles`) and the compressed-RF
/// throttle counter (`comprf_throttled_warp_cycles`); design ids are now
/// canonicalized through the registry (`crate::registry`).
const CACHE_FORMAT_VERSION: u32 = 5;

/// One simulation the engine knows how to run and key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RunVariant {
    /// A storage design on the evaluation machine ([`run_design`]).
    Design(DesignKind),
    /// RegLess with explicit options ([`run_regless_opts`]).
    Opts(ReglessRunOpts),
    /// Baseline under an explicit warp scheduler.
    Scheduler(SchedulerKind),
    /// Conventional RF with occupancy capped by register allocation
    /// (the §7 oversubscription study).
    OccupancyLimited,
    /// Baseline or RegLess-512 at an explicit issue width (the dual-issue
    /// extension study).
    IssueWidth {
        /// Issue slots per scheduler.
        width: usize,
        /// RegLess at the paper design point rather than the baseline.
        regless: bool,
    },
}

impl RunVariant {
    /// Map equivalent phrasings of the same simulation onto one key, so
    /// e.g. the ablations' default-options runs share cache entries with
    /// the figures' `RegLess { 512 }` runs.
    pub fn canonical(self) -> RunVariant {
        let eval = eval_gpu();
        match self {
            RunVariant::Opts(o)
                if o.region_override.is_none()
                    && !o.renumber
                    && o.order == regless_core::ActivationOrder::Lifo
                    && o.patterns == regless_core::PatternSet::Full =>
            {
                RunVariant::Design(if o.compressor {
                    DesignKind::RegLess { entries: o.entries }
                } else {
                    DesignKind::RegLessNoCompressor { entries: o.entries }
                })
            }
            RunVariant::Scheduler(k) if k == eval.scheduler => {
                RunVariant::Design(DesignKind::Baseline)
            }
            RunVariant::IssueWidth { width, regless }
                if width == eval.issue_slots_per_scheduler =>
            {
                RunVariant::Design(if regless {
                    DesignKind::regless_512()
                } else {
                    DesignKind::Baseline
                })
            }
            v => v,
        }
    }
}

/// Benchmark id for a Rodinia kernel name.
pub fn rodinia_id(name: &str) -> String {
    format!("rodinia/{name}")
}

/// Benchmark id for a microbenchmark kernel name.
pub fn micro_id(name: &str) -> String {
    format!("micro/{name}")
}

/// Benchmark id of the §7 high-register-pressure kernel.
pub const HIGH_PRESSURE_ID: &str = "special/high_pressure";

/// Resolve a benchmark id (`rodinia/<name>`, `micro/<name>`, or
/// [`HIGH_PRESSURE_ID`]) to its kernel, or `None` for an unknown id. This
/// is the lookup external callers (the serving layer) use to decide
/// whether a request is cacheable under the engine's fingerprint.
pub fn bench_kernel(bench: &str) -> Option<regless_isa::Kernel> {
    if let Some(name) = bench.strip_prefix("rodinia/") {
        if rodinia::NAMES.contains(&name) {
            return Some(rodinia::kernel(name));
        }
        return None;
    }
    if let Some(name) = bench.strip_prefix("micro/") {
        return micro::all().into_iter().find(|k| k.name() == name);
    }
    if bench == HIGH_PRESSURE_ID {
        return Some(high_pressure_kernel());
    }
    None
}

/// Resolve a benchmark id to its kernel.
///
/// # Panics
///
/// Panics on an unknown id — experiment code constructs ids from the
/// workload tables, so an unknown id is a harness bug.
fn kernel_for(bench: &str) -> regless_isa::Kernel {
    bench_kernel(bench).unwrap_or_else(|| panic!("unknown benchmark id {bench:?}"))
}

/// Actually run one simulation (a cache miss).
fn simulate(bench: &str, variant: RunVariant) -> RunReport {
    let kernel = kernel_for(bench);
    match variant {
        RunVariant::Design(d) => run_design(&kernel, d),
        RunVariant::Opts(o) => run_regless_opts(&kernel, o),
        RunVariant::Scheduler(k) => crate::run_baseline_with_scheduler(&kernel, k),
        RunVariant::OccupancyLimited => {
            // Conventional RF: occupancy capped by per-thread register
            // allocation (ported from the §7 oversubscription study).
            let gpu = eval_gpu();
            let compiled = Arc::new(
                regless_compiler::compile(&kernel, &regless_compiler::RegionConfig::default())
                    .expect("compile"),
            );
            let regs = kernel.num_regs() as usize;
            let rf_entries = gpu.rf_bytes_per_sm / 128;
            Machine::new(gpu, compiled, |_| {
                OccupancyLimitedRf::new(rf_entries, regs, gpu.warps_per_sm)
            })
            .run()
            .expect("occupancy-limited run")
        }
        RunVariant::IssueWidth { width, regless } => {
            let gpu = GpuConfig {
                issue_slots_per_scheduler: width,
                ..eval_gpu()
            };
            if regless {
                let cfg = regless_core::RegLessConfig::paper_default();
                let compiled =
                    regless_compiler::compile(&kernel, &cfg.region_config(&gpu)).expect("compile");
                regless_core::RegLessSim::new(gpu, cfg, compiled)
                    .run()
                    .expect("regless run")
            } else {
                let compiled =
                    regless_compiler::compile(&kernel, &regless_compiler::RegionConfig::default())
                        .expect("compile");
                run_baseline(gpu, Arc::new(compiled)).expect("baseline run")
            }
        }
    }
}

/// How the engine treats its caches (from `REGLESS_SWEEP`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SweepMode {
    /// Memoize in memory and read/write the disk cache.
    Normal,
    /// Memoize in memory and write disk entries, but never read them —
    /// forces fresh simulations once per process.
    Cold,
    /// No caching at all; every call simulates.
    Off,
}

/// Counters the engine keeps (all monotone).
#[derive(Default)]
struct Counters {
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    sim_nanos: AtomicU64,
}

/// Where one [`SweepEngine::run`] call was served from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunSource {
    /// The simulator actually ran.
    Simulated,
    /// Replayed from a persisted JSON entry.
    DiskCache,
    /// Served from the in-memory memo table.
    MemoryCache,
}

/// One entry of the engine's run log (see [`SweepEngine::timing_table`]).
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Benchmark id.
    pub bench: String,
    /// Canonical variant that was run.
    pub variant: RunVariant,
    /// Where the report came from.
    pub source: RunSource,
    /// Wall seconds of the simulation that originally produced the report
    /// — for cached runs this is *historical*, not time spent now, which
    /// is why the timing table prints `(cached)` instead.
    pub wall_seconds: f64,
}

/// What [`SweepEngine::gc_orphans`] removed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Names of the fingerprint directories deleted, sorted.
    pub removed: Vec<String>,
    /// Bytes those directories held.
    pub bytes_freed: u64,
}

/// One orphaned cache fingerprint directory, as reported by the read-only
/// [`SweepEngine::list_orphans`] (`--gc --dry-run`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrphanEntry {
    /// The fingerprint directory name (16 hex digits).
    pub name: String,
    /// Cache entries (files) it holds.
    pub entries: usize,
    /// Total bytes of those entries.
    pub bytes: u64,
}

/// A point-in-time snapshot of [`SweepEngine`] activity.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SweepStats {
    /// Calls served from the in-memory memo table.
    pub memory_hits: u64,
    /// Calls served by deserializing a persisted report.
    pub disk_hits: u64,
    /// Calls that ran the simulator.
    pub misses: u64,
    /// Total wall-clock seconds spent inside the simulator.
    pub sim_seconds: f64,
}

impl SweepStats {
    /// One-line human summary for experiment footers.
    pub fn summary_line(&self) -> String {
        format!(
            "sweep cache: {} sims ({:.1} s simulated), {} memory hits, {} disk hits",
            self.misses, self.sim_seconds, self.memory_hits, self.disk_hits
        )
    }
}

type Key = (String, RunVariant);

/// The memoizing simulation runner. Use the process-wide [`engine`] in
/// experiment code; construct directly only in tests.
pub struct SweepEngine {
    cache: Mutex<HashMap<Key, Arc<OnceLock<Arc<RunReport>>>>>,
    counters: Counters,
    /// Every `run` call in order, for the timing table.
    records: Mutex<Vec<RunRecord>>,
    /// Wall time of actual simulations, in milliseconds.
    sim_hist: Mutex<Log2Histogram>,
    /// Directory for persisted reports (`None` disables persistence).
    disk_dir: Option<PathBuf>,
    mode: SweepMode,
    /// Host-side self profiler for the engine's own pipeline phases
    /// (canonicalize, cache probe, simulate, persist). Enabled by
    /// `REGLESS_SELFPROF`; a disabled profiler's scopes never read the
    /// clock, keeping the hot path free.
    selfprof: SelfProfiler,
}

impl SweepEngine {
    /// An engine with explicit cache directory and mode (tests; the
    /// process-wide [`engine`] reads the environment instead).
    pub fn with_config(disk_dir: Option<PathBuf>, mode: SweepMode) -> SweepEngine {
        SweepEngine {
            cache: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            records: Mutex::new(Vec::new()),
            sim_hist: Mutex::new(Log2Histogram::new()),
            disk_dir,
            mode,
            selfprof: SelfProfiler::from_env(),
        }
    }

    /// The engine's host-side self profiler — callers fold it into a
    /// metrics snapshot or render its table after a sweep. Empty (and
    /// free) unless `REGLESS_SELFPROF` is set.
    pub fn self_profiler(&self) -> &SelfProfiler {
        &self.selfprof
    }

    /// An engine configured from the environment (`REGLESS_SWEEP`,
    /// `REGLESS_SWEEP_DIR`; see the module docs). The process-wide
    /// [`engine`] wraps one of these in a static; long-lived owners (the
    /// serving layer) construct their own so its lifetime and statistics
    /// are scoped to them while still sharing the on-disk cache.
    pub fn from_env() -> SweepEngine {
        let mode = match std::env::var("REGLESS_SWEEP").as_deref() {
            Ok("off") => SweepMode::Off,
            Ok("cold") => SweepMode::Cold,
            _ => SweepMode::Normal,
        };
        let dir = match (mode, std::env::var("REGLESS_SWEEP_DIR")) {
            (SweepMode::Off, _) => None,
            (_, Ok(d)) => Some(PathBuf::from(d)),
            _ => Some(PathBuf::from("results/cache")),
        };
        SweepEngine::with_config(dir, mode)
    }

    /// Fingerprint naming the disk subdirectory: any simulator-semantics
    /// or evaluation-machine change moves the directory, orphaning (not
    /// corrupting) old entries.
    pub fn fingerprint() -> String {
        let basis = format!(
            "fmt{}|sim{}|{}",
            CACHE_FORMAT_VERSION,
            regless_sim::SIM_MODEL_VERSION,
            regless_json::to_string(&eval_gpu())
        );
        format!("{:016x}", fnv1a64(basis.as_bytes()))
    }

    /// Run (or recall) one simulation.
    pub fn run(&self, bench: &str, variant: RunVariant) -> Arc<RunReport> {
        let variant = {
            let _g = self.selfprof.scope("canonicalize");
            variant.canonical()
        };
        if self.mode == SweepMode::Off {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            let report = {
                let _g = self.selfprof.scope("simulate");
                simulate(bench, variant)
            };
            self.note_sim(&report);
            self.note_run(bench, variant, RunSource::Simulated, report.wall_seconds);
            eprintln!(
                "[sweep] sim   {bench} {variant:?}: {} cycles in {:.2} s",
                report.cycles, report.wall_seconds
            );
            return Arc::new(report);
        }
        let probe_guard = self.selfprof.scope("cache_probe");
        let cell = {
            let mut map = self.cache.lock().expect("sweep cache poisoned");
            Arc::clone(
                map.entry((bench.to_string(), variant))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        if let Some(hit) = cell.get() {
            self.counters.memory_hits.fetch_add(1, Ordering::Relaxed);
            self.note_run(bench, variant, RunSource::MemoryCache, hit.wall_seconds);
            return Arc::clone(hit);
        }
        drop(probe_guard);
        // `get_or_init` blocks concurrent initializers of the same key, so
        // racing threads wait for the one in-flight simulation instead of
        // duplicating it.
        let mut initialized_here = false;
        let report = cell.get_or_init(|| {
            initialized_here = true;
            Arc::new(self.load_or_simulate(bench, variant))
        });
        if !initialized_here {
            self.counters.memory_hits.fetch_add(1, Ordering::Relaxed);
            self.note_run(bench, variant, RunSource::MemoryCache, report.wall_seconds);
        }
        Arc::clone(report)
    }

    /// Cache-only lookup: the memoized report if this process already has
    /// one, else a disk replay, else `None` — the simulator never runs.
    /// Used by callers that run simulations themselves (the serving layer
    /// threads cancellation tokens through its own executor) but still
    /// want to share this engine's memo table and on-disk entries.
    pub fn lookup(&self, bench: &str, variant: RunVariant) -> Option<Arc<RunReport>> {
        if self.mode == SweepMode::Off {
            return None;
        }
        let variant = variant.canonical();
        let cell = {
            let mut map = self.cache.lock().expect("sweep cache poisoned");
            Arc::clone(
                map.entry((bench.to_string(), variant))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        if let Some(hit) = cell.get() {
            self.counters.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(hit));
        }
        if self.mode != SweepMode::Normal {
            return None;
        }
        let path = self.entry_path(bench, variant)?;
        let report = Arc::new(load_entry(&path, bench, variant)?);
        self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
        // Memoize the replay; a racing initializer may have won, in which
        // case its (identical) report is the one future calls see.
        let _ = cell.set(Arc::clone(&report));
        Some(report)
    }

    /// Memoize and persist a report produced *outside* the engine (the
    /// serving layer's cancellable executor). The report must be the
    /// deterministic output of `(bench, variant)` on the evaluation
    /// machine — the same contract [`SweepEngine::run`] maintains. A no-op
    /// in [`SweepMode::Off`].
    pub fn insert(&self, bench: &str, variant: RunVariant, report: Arc<RunReport>) {
        if self.mode == SweepMode::Off {
            return;
        }
        let variant = variant.canonical();
        let cell = {
            let mut map = self.cache.lock().expect("sweep cache poisoned");
            Arc::clone(
                map.entry((bench.to_string(), variant))
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let _ = cell.set(Arc::clone(&report));
        if let Some(path) = self.entry_path(bench, variant) {
            store_entry(&path, bench, variant, &report);
        }
    }

    fn load_or_simulate(&self, bench: &str, variant: RunVariant) -> RunReport {
        let path = self.entry_path(bench, variant);
        if self.mode == SweepMode::Normal {
            let _g = self.selfprof.scope("cache_probe");
            if let Some(report) = path.as_deref().and_then(|p| load_entry(p, bench, variant)) {
                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.note_run(bench, variant, RunSource::DiskCache, report.wall_seconds);
                eprintln!("[sweep] disk  {bench} {variant:?}");
                return report;
            }
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let report = {
            let _g = self.selfprof.scope("simulate");
            simulate(bench, variant)
        };
        self.note_sim(&report);
        self.note_run(bench, variant, RunSource::Simulated, report.wall_seconds);
        eprintln!(
            "[sweep] sim   {bench} {variant:?}: {} cycles in {:.2} s",
            report.cycles, report.wall_seconds
        );
        if let Some(p) = path {
            let _g = self.selfprof.scope("persist");
            store_entry(&p, bench, variant, &report);
        }
        report
    }

    fn note_sim(&self, report: &RunReport) {
        let nanos = (report.wall_seconds * 1e9) as u64;
        self.counters.sim_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.sim_hist
            .lock()
            .expect("sweep histogram poisoned")
            .record((report.wall_seconds * 1e3) as u64);
    }

    fn note_run(&self, bench: &str, variant: RunVariant, source: RunSource, wall_seconds: f64) {
        self.records
            .lock()
            .expect("sweep run log poisoned")
            .push(RunRecord {
                bench: bench.to_string(),
                variant,
                source,
                wall_seconds,
            });
    }

    /// Snapshot of the run log, in call order.
    pub fn run_log(&self) -> Vec<RunRecord> {
        self.records.lock().expect("sweep run log poisoned").clone()
    }

    /// Histogram of simulated wall times in milliseconds (cache hits are
    /// excluded — no simulator ran).
    pub fn sim_time_histogram(&self) -> Log2Histogram {
        self.sim_hist
            .lock()
            .expect("sweep histogram poisoned")
            .clone()
    }

    /// One-line distribution summary of simulated wall times.
    pub fn sim_time_line(&self) -> String {
        let h = self.sim_time_histogram();
        if h.count() == 0 {
            return "sim wall time: no simulations this process".to_string();
        }
        format!(
            "sim wall time: {} sims, mean {:.0} ms, p50 <= {} ms, p99 <= {} ms, max {} ms",
            h.count(),
            h.mean(),
            h.percentile(50.0),
            h.percentile(99.0),
            h.max()
        )
    }

    /// Render the run log as an aligned two-column table. Rows that
    /// actually simulated show the simulator's wall time; warm memory and
    /// disk hits are labeled `(cached)` — their stored `wall_seconds` is
    /// the *historical* cost of the run that first produced the report,
    /// and printing it made warm reruns look as slow as cold ones.
    pub fn timing_table(&self) -> String {
        let records = self.records.lock().expect("sweep run log poisoned");
        if records.is_empty() {
            return "  (no runs recorded)\n".to_string();
        }
        let rows: Vec<(String, String)> = records
            .iter()
            .map(|r| {
                let label = format!("{} {:?}", r.bench, r.variant);
                let time = match r.source {
                    RunSource::Simulated => crate::timing::format_duration(
                        std::time::Duration::from_secs_f64(r.wall_seconds.max(0.0)),
                    ),
                    RunSource::DiskCache | RunSource::MemoryCache => "(cached)".to_string(),
                };
                (label, time)
            })
            .collect();
        // Pad to the widest label, capped so one verbose Debug string
        // cannot push the time column off-screen for every row.
        let width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0).min(72);
        let mut out = String::new();
        for (label, time) in &rows {
            out.push_str(&format!("  {label:<width$}  {time}\n"));
        }
        out
    }

    /// Delete fingerprint subdirectories of the cache dir that no longer
    /// match the current [`SweepEngine::fingerprint`] — entries orphaned
    /// by a simulator-semantics or evaluation-machine change. Only
    /// 16-hex-digit directory names are candidates; anything else in the
    /// cache dir is left alone.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered while scanning or removing.
    pub fn gc_orphans(&self) -> std::io::Result<GcReport> {
        let mut gc = GcReport::default();
        for (name, path) in self.orphan_dirs()? {
            gc.bytes_freed += dir_stats(&path).1;
            std::fs::remove_dir_all(&path)?;
            gc.removed.push(name);
        }
        Ok(gc)
    }

    /// List what [`SweepEngine::gc_orphans`] would delete, without deleting
    /// anything (`--gc --dry-run`): one row per orphaned fingerprint
    /// directory with its entry count and size, sorted by name.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered while scanning.
    pub fn list_orphans(&self) -> std::io::Result<Vec<OrphanEntry>> {
        Ok(self
            .orphan_dirs()?
            .into_iter()
            .map(|(name, path)| {
                let (entries, bytes) = dir_stats(&path);
                OrphanEntry {
                    name,
                    entries,
                    bytes,
                }
            })
            .collect())
    }

    /// The orphaned fingerprint directories (name, path), sorted by name —
    /// the scan shared by [`SweepEngine::gc_orphans`] and
    /// [`SweepEngine::list_orphans`].
    fn orphan_dirs(&self) -> std::io::Result<Vec<(String, PathBuf)>> {
        let mut found = Vec::new();
        let Some(dir) = self.disk_dir.as_ref() else {
            return Ok(found);
        };
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
            Err(e) => return Err(e),
        };
        let current = Self::fingerprint();
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !is_fingerprint_name(&name) || name == current || !entry.file_type()?.is_dir() {
                continue;
            }
            found.push((name, entry.path()));
        }
        found.sort();
        Ok(found)
    }

    /// Human-readable listing of the disk cache: one line per fingerprint
    /// directory with its entry count and size; the current fingerprint is
    /// marked with `*`, orphans with `-`.
    pub fn cache_dir_report(&self) -> String {
        let Some(dir) = self.disk_dir.as_ref() else {
            return "  disk cache disabled\n".to_string();
        };
        let mut out = format!("  cache dir: {}\n", dir.display());
        let current = Self::fingerprint();
        let mut rows: Vec<(String, usize, u64)> = Vec::new();
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if !is_fingerprint_name(&name) {
                    continue;
                }
                let (files, bytes) = dir_stats(&entry.path());
                rows.push((name, files, bytes));
            }
        }
        if rows.is_empty() {
            out.push_str("  (empty)\n");
            return out;
        }
        rows.sort();
        let (mut total_files, mut total_bytes) = (0usize, 0u64);
        for (name, files, bytes) in rows {
            let mark = if name == current { '*' } else { '-' };
            out.push_str(&format!(
                "  {mark} {name}  {files} entries, {}\n",
                format_bytes(bytes)
            ));
            total_files += files;
            total_bytes += bytes;
        }
        out.push_str(&format!(
            "  total: {total_files} entries, {}\n",
            format_bytes(total_bytes)
        ));
        out.push_str("  (* = current fingerprint; - = orphan, prunable with --gc)\n");
        out
    }

    /// Total `(entries, bytes)` across every fingerprint directory in the
    /// disk cache, or `None` when the disk cache is disabled. The cheap
    /// scalar the cluster coordinator's `stats` response reports.
    pub fn cache_dir_totals(&self) -> Option<(u64, u64)> {
        let dir = self.disk_dir.as_ref()?;
        let (mut entries, mut bytes) = (0u64, 0u64);
        if let Ok(listing) = std::fs::read_dir(dir) {
            for entry in listing.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if !is_fingerprint_name(&name) {
                    continue;
                }
                let (files, b) = dir_stats(&entry.path());
                entries += files as u64;
                bytes += b;
            }
        }
        Some((entries, bytes))
    }

    /// Machine-readable twin of [`SweepEngine::cache_dir_report`] plus the
    /// hit/miss counters (`regless sweep --stats --format json`): one row
    /// per fingerprint directory with its entry count, byte size, whether
    /// it is the current fingerprint, and the age in seconds of its newest
    /// entry. Consumed by the serve `stats` response and CI.
    pub fn cache_stats_json(&self) -> regless_json::Json {
        use regless_json::{Json, ToJson};
        let s = self.stats();
        let counters = Json::Obj(vec![
            ("memory_hits".into(), ToJson::to_json(&s.memory_hits)),
            ("disk_hits".into(), ToJson::to_json(&s.disk_hits)),
            ("misses".into(), ToJson::to_json(&s.misses)),
            ("sim_seconds".into(), ToJson::to_json(&s.sim_seconds)),
        ]);
        let mut rows: Vec<(String, usize, u64, Option<u64>)> = Vec::new();
        if let Some(dir) = self.disk_dir.as_ref() {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if !is_fingerprint_name(&name) {
                        continue;
                    }
                    let (files, bytes) = dir_stats(&entry.path());
                    rows.push((name, files, bytes, dir_age_seconds(&entry.path())));
                }
            }
        }
        rows.sort();
        let current = Self::fingerprint();
        let (mut total_entries, mut total_bytes) = (0u64, 0u64);
        let fingerprints: Vec<Json> = rows
            .into_iter()
            .map(|(name, files, bytes, age)| {
                total_entries += files as u64;
                total_bytes += bytes;
                Json::Obj(vec![
                    ("name".into(), ToJson::to_json(&name)),
                    ("current".into(), Json::Bool(name == current)),
                    ("entries".into(), ToJson::to_json(&(files as u64))),
                    ("bytes".into(), ToJson::to_json(&bytes)),
                    (
                        "age_seconds".into(),
                        match age {
                            Some(a) => ToJson::to_json(&a),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            (
                "cache_dir".into(),
                match self.disk_dir.as_ref() {
                    Some(d) => ToJson::to_json(&d.display().to_string()),
                    None => Json::Null,
                },
            ),
            ("fingerprint".into(), ToJson::to_json(&current)),
            ("counters".into(), counters),
            ("fingerprints".into(), Json::Arr(fingerprints)),
            ("total_entries".into(), ToJson::to_json(&total_entries)),
            ("total_bytes".into(), ToJson::to_json(&total_bytes)),
        ])
    }

    fn entry_path(&self, bench: &str, variant: RunVariant) -> Option<PathBuf> {
        let dir = self.disk_dir.as_ref()?;
        Some(
            dir.join(Self::fingerprint())
                .join(entry_slug(bench, variant)),
        )
    }

    /// Snapshot the hit/miss counters.
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            memory_hits: self.counters.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            sim_seconds: self.counters.sim_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }

    /// Warm the cache for `jobs` using every available core. Cache hits
    /// cost nothing, so callers list everything a report needs without
    /// worrying about overlap with earlier reports.
    pub fn prefetch(&self, jobs: &[(String, RunVariant)]) {
        self.prefetch_with_progress(jobs, None);
    }

    /// [`SweepEngine::prefetch`] with an optional live progress stream:
    /// when a [`ProgressMeter`] is supplied, every completed unit notes
    /// its simulated cycles and prints the meter's one-line snapshot
    /// (done/total, units/s, Mcycles/s, ETA) to stderr — stdout stays
    /// clean for JSON pipelines.
    pub fn prefetch_with_progress(
        &self,
        jobs: &[(String, RunVariant)],
        progress: Option<&ProgressMeter>,
    ) {
        let note = |report: &RunReport| {
            if let Some(meter) = progress {
                meter.note(report.cycles);
                eprintln!("[sweep] {}", meter.snapshot().render());
            }
        };
        let workers = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(jobs.len().max(1));
        if workers <= 1 {
            for (bench, variant) in jobs {
                note(&self.run(bench, *variant));
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((bench, variant)) = jobs.get(i) else {
                        break;
                    };
                    note(&self.run(bench, *variant));
                });
            }
        });
    }
}

/// The process-wide engine (mode and cache directory from the
/// environment; see the module docs).
pub fn engine() -> &'static SweepEngine {
    static ENGINE: OnceLock<SweepEngine> = OnceLock::new();
    ENGINE.get_or_init(SweepEngine::from_env)
}

/// [`engine`]'s memoized [`run_design`].
pub fn design(bench: &str, design: DesignKind) -> Arc<RunReport> {
    engine().run(bench, RunVariant::Design(design))
}

/// [`engine`]'s memoized [`run_regless_opts`].
pub fn regless_opts(bench: &str, opts: ReglessRunOpts) -> Arc<RunReport> {
    engine().run(bench, RunVariant::Opts(opts))
}

/// [`engine`]'s memoized [`crate::run_baseline_with_scheduler`].
pub fn baseline_with_scheduler(bench: &str, kind: SchedulerKind) -> Arc<RunReport> {
    engine().run(bench, RunVariant::Scheduler(kind))
}

/// Stable 64-bit hash of one `(benchmark, variant)` work unit. The
/// cluster coordinator hashes this value onto its consistent-hash ring
/// and uses it as the idempotency key when reassigning in-flight units,
/// so it must be deterministic across processes: it hashes the canonical
/// variant's `Debug` form, the same basis as the cache entry slug.
pub fn unit_hash(bench: &str, variant: RunVariant) -> u64 {
    let variant = variant.canonical();
    fnv1a64(format!("{bench}|{variant:?}").as_bytes())
}

/// Public twin of the disk-cache entry filename for one work unit, so
/// external tooling (cluster result digests, CI comparisons) names
/// results exactly the way the cache does.
pub fn unit_slug(bench: &str, variant: RunVariant) -> String {
    entry_slug(bench, variant.canonical())
}

/// Enumerate the (benchmark × design) cross-product as work units in a
/// deterministic order — the shard space a cluster coordinator hands out.
pub fn sweep_space(benches: &[String], designs: &[DesignKind]) -> Vec<(String, RunVariant)> {
    let mut units = Vec::with_capacity(benches.len() * designs.len());
    for bench in benches {
        for &design in designs {
            units.push((bench.clone(), RunVariant::Design(design).canonical()));
        }
    }
    units
}

/// A cache-fingerprint directory name: exactly 16 lowercase hex digits
/// (the `{:016x}` of [`SweepEngine::fingerprint`]).
fn is_fingerprint_name(name: &str) -> bool {
    name.len() == 16
        && name
            .chars()
            .all(|c| c.is_ascii_digit() || ('a'..='f').contains(&c))
}

/// Entry count and total byte size of a directory's immediate files.
fn dir_stats(path: &Path) -> (usize, u64) {
    let mut files = 0usize;
    let mut bytes = 0u64;
    if let Ok(entries) = std::fs::read_dir(path) {
        for entry in entries.flatten() {
            if let Ok(meta) = entry.metadata() {
                if meta.is_file() {
                    files += 1;
                    bytes += meta.len();
                }
            }
        }
    }
    (files, bytes)
}

/// Age in seconds of the *newest* immediate file in `path` (how recently
/// this fingerprint was written to), or `None` for an empty/unreadable
/// directory or a filesystem without usable mtimes.
fn dir_age_seconds(path: &Path) -> Option<u64> {
    let mut newest: Option<std::time::SystemTime> = None;
    for entry in std::fs::read_dir(path).ok()?.flatten() {
        if let Ok(meta) = entry.metadata() {
            if meta.is_file() {
                if let Ok(m) = meta.modified() {
                    newest = Some(newest.map_or(m, |n| n.max(m)));
                }
            }
        }
    }
    newest?.elapsed().ok().map(|d| d.as_secs())
}

/// Render a byte count with a unit suited to its magnitude. Delegates to
/// the one humanized formatter shared via telemetry so `sweep --stats`,
/// `sweep --gc`, and the cluster coordinator all print identical units.
fn format_bytes(bytes: u64) -> String {
    regless_telemetry::format_bytes(bytes)
}

/// FNV-1a, used for the cache fingerprint and slug collision guards.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Filename for one cache entry: a readable sanitized prefix plus a hash
/// of the exact key (the prefix alone could collide after sanitizing).
fn entry_slug(bench: &str, variant: RunVariant) -> String {
    let exact = format!("{bench}|{variant:?}");
    let mut readable = String::new();
    for c in exact.chars() {
        if c.is_ascii_alphanumeric() {
            readable.push(c);
        } else if !readable.ends_with('-') {
            readable.push('-');
        }
    }
    let readable = readable.trim_matches('-');
    format!(
        "{}_{:016x}.json",
        &readable[..readable.len().min(80)],
        fnv1a64(exact.as_bytes())
    )
}

/// Best-effort read of a persisted report; any failure (missing, corrupt,
/// or a slug collision with a different key) falls back to simulating.
fn load_entry(path: &Path, bench: &str, variant: RunVariant) -> Option<RunReport> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = regless_json::Json::parse(&text).ok()?;
    let stored_bench: String = regless_json::FromJson::from_json(json.field("bench").ok()?).ok()?;
    let stored_variant: String =
        regless_json::FromJson::from_json(json.field("variant").ok()?).ok()?;
    if stored_bench != bench || stored_variant != format!("{variant:?}") {
        return None;
    }
    regless_json::FromJson::from_json(json.field("report").ok()?).ok()
}

/// Best-effort write of a report (cache persistence must never fail an
/// experiment, so I/O errors only warn).
fn store_entry(path: &Path, bench: &str, variant: RunVariant, report: &RunReport) {
    let entry = regless_json::Json::Obj(vec![
        (
            "bench".into(),
            regless_json::ToJson::to_json(&bench.to_string()),
        ),
        (
            "variant".into(),
            regless_json::ToJson::to_json(&format!("{variant:?}")),
        ),
        ("report".into(), regless_json::ToJson::to_json(report)),
    ]);
    let write = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        // Write-then-rename so a crash mid-write cannot leave a truncated
        // entry under the final name. The temp name is unique per process
        // *and* per write, so a concurrent server and CLI sweep persisting
        // the same fingerprint never interleave bytes in one temp file;
        // the last rename wins with a complete entry either way.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, entry.to_string_compact())?;
        std::fs::rename(&tmp, path)
    };
    if let Err(e) = write() {
        eprintln!("[sweep] warn: could not persist {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_merges_equivalent_runs() {
        assert_eq!(
            RunVariant::Opts(ReglessRunOpts::default()).canonical(),
            RunVariant::Design(DesignKind::regless_512())
        );
        assert_eq!(
            RunVariant::Opts(ReglessRunOpts {
                compressor: false,
                ..Default::default()
            })
            .canonical(),
            RunVariant::Design(DesignKind::RegLessNoCompressor { entries: 512 })
        );
        assert_eq!(
            RunVariant::Scheduler(SchedulerKind::Gto).canonical(),
            RunVariant::Design(DesignKind::Baseline)
        );
        assert_eq!(
            RunVariant::IssueWidth {
                width: 1,
                regless: true
            }
            .canonical(),
            RunVariant::Design(DesignKind::regless_512())
        );
        // Non-default options must keep their own key.
        let fifo = RunVariant::Opts(ReglessRunOpts {
            order: regless_core::ActivationOrder::Fifo,
            ..Default::default()
        });
        assert_eq!(fifo.canonical(), fifo);
        assert_eq!(
            RunVariant::IssueWidth {
                width: 2,
                regless: false
            }
            .canonical(),
            RunVariant::IssueWidth {
                width: 2,
                regless: false
            }
        );
    }

    #[test]
    fn slug_is_filename_safe_and_key_exact() {
        let a = entry_slug("rodinia/bfs", RunVariant::Design(DesignKind::regless_512()));
        let b = entry_slug("rodinia/bfs", RunVariant::Design(DesignKind::Baseline));
        assert_ne!(a, b);
        assert!(a.ends_with(".json"));
        assert!(
            a.chars()
                .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c)),
            "{a}"
        );
    }

    #[test]
    fn memoizes_and_persists_identical_reports() {
        let dir = std::env::temp_dir().join(format!(
            "regless-sweep-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let bench = rodinia_id("nn");
        let variant = RunVariant::Design(DesignKind::Baseline);

        let cold = SweepEngine::with_config(Some(dir.clone()), SweepMode::Normal);
        let first = cold.run(&bench, variant);
        let again = cold.run(&bench, variant);
        assert!(
            Arc::ptr_eq(&first, &again),
            "second call must be the memoized report"
        );
        let s = cold.stats();
        assert_eq!((s.misses, s.memory_hits, s.disk_hits), (1, 1, 0));

        // A fresh engine over the same directory must replay from disk and
        // reproduce the simulated numbers exactly.
        let warm = SweepEngine::with_config(Some(dir.clone()), SweepMode::Normal);
        let replayed = warm.run(&bench, variant);
        let s = warm.stats();
        assert_eq!((s.misses, s.disk_hits), (0, 1));
        assert_eq!(replayed.cycles, first.cycles);
        assert_eq!(replayed.sm_stats[0].rf_reads, first.sm_stats[0].rf_reads);
        assert_eq!(replayed.mem, first.mem);
        assert_eq!(replayed.warp_insns, first.warp_insns);

        // Cold mode ignores the entry and simulates again.
        let forced = SweepEngine::with_config(Some(dir.clone()), SweepMode::Cold);
        let re = forced.run(&bench, variant);
        assert_eq!(forced.stats().misses, 1);
        assert_eq!(re.cycles, first.cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timing_table_marks_warm_hits_cached() {
        let engine = SweepEngine::with_config(None, SweepMode::Normal);
        let bench = rodinia_id("nn");
        let variant = RunVariant::Design(DesignKind::Baseline);
        engine.run(&bench, variant);
        engine.run(&bench, variant);

        let log = engine.run_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].source, RunSource::Simulated);
        assert_eq!(log[1].source, RunSource::MemoryCache);

        let table = engine.timing_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            !lines[0].contains("(cached)"),
            "cold run shows a wall time: {}",
            lines[0]
        );
        assert!(
            lines[1].ends_with("(cached)"),
            "warm hit is labeled: {}",
            lines[1]
        );

        let hist = engine.sim_time_histogram();
        assert_eq!(hist.count(), 1, "only the real simulation is recorded");
        assert!(engine.sim_time_line().starts_with("sim wall time: 1 sims"));
    }

    #[test]
    fn fingerprint_names_are_recognized() {
        assert!(is_fingerprint_name(&SweepEngine::fingerprint()));
        assert!(is_fingerprint_name("0123456789abcdef"));
        assert!(!is_fingerprint_name("0123456789ABCDEF"));
        assert!(!is_fingerprint_name("0123456789abcde"));
        assert!(!is_fingerprint_name("0123456789abcdef0"));
        assert!(!is_fingerprint_name("latest-notes.txt"));
    }

    #[test]
    fn gc_removes_only_orphaned_fingerprint_dirs() {
        let dir = std::env::temp_dir().join(format!(
            "regless-sweep-gc-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let current = dir.join(SweepEngine::fingerprint());
        let orphan = dir.join("00000000deadbeef");
        let keeper = dir.join("notes"); // not a fingerprint: untouched
        for d in [&current, &orphan, &keeper] {
            std::fs::create_dir_all(d).unwrap();
        }
        std::fs::write(current.join("a.json"), "{}").unwrap();
        std::fs::write(orphan.join("b.json"), "stale").unwrap();

        let engine = SweepEngine::with_config(Some(dir.clone()), SweepMode::Normal);
        let report = engine.cache_dir_report();
        assert!(report.contains("00000000deadbeef"), "{report}");
        assert!(report.contains(&SweepEngine::fingerprint()), "{report}");
        // The footer totals across all fingerprints: a.json (2 bytes) +
        // b.json (5 bytes).
        assert!(report.contains("total: 2 entries, 7 B"), "{report}");

        // Dry run: reports the orphan without touching anything.
        let orphans = engine.list_orphans().unwrap();
        assert_eq!(
            orphans,
            vec![OrphanEntry {
                name: "00000000deadbeef".to_string(),
                entries: 1,
                bytes: 5,
            }]
        );
        assert!(orphan.exists(), "dry run must not delete");

        let gc = engine.gc_orphans().unwrap();
        assert_eq!(gc.removed, vec!["00000000deadbeef".to_string()]);
        assert_eq!(gc.bytes_freed, 5);
        assert!(current.join("a.json").exists(), "current entries survive");
        assert!(keeper.exists(), "non-fingerprint dirs survive");
        assert!(!orphan.exists());

        // Idempotent.
        assert_eq!(engine.gc_orphans().unwrap(), GcReport::default());

        // No disk dir: a no-op, not an error.
        let off = SweepEngine::with_config(None, SweepMode::Normal);
        assert_eq!(off.gc_orphans().unwrap(), GcReport::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_of_one_fingerprint_leave_one_valid_entry() {
        // Multi-process hardening: N threads persisting the same key at
        // once (a server and a CLI sweep racing on one fingerprint) must
        // end with exactly one complete, parseable entry and no leftover
        // temp files — unique temp names plus atomic rename guarantee no
        // interleaved bytes regardless of which writer wins.
        let dir = std::env::temp_dir().join(format!(
            "regless-sweep-race-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let bench = rodinia_id("nn");
        let variant = RunVariant::Design(DesignKind::Baseline);
        let engine = SweepEngine::with_config(Some(dir.clone()), SweepMode::Normal);
        let report = engine.run(&bench, variant);
        let path = engine.entry_path(&bench, variant).unwrap();

        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| store_entry(&path, &bench, variant, &report));
            }
        });

        let entries: Vec<String> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries.len(), 1, "no temp files survive: {entries:?}");
        let replayed = load_entry(&path, &bench, variant).expect("entry parses");
        assert_eq!(replayed.cycles, report.cycles);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lookup_and_insert_share_the_cache_without_simulating() {
        let dir = std::env::temp_dir().join(format!(
            "regless-sweep-li-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let bench = rodinia_id("nn");
        let variant = RunVariant::Design(DesignKind::Baseline);

        let writer = SweepEngine::with_config(Some(dir.clone()), SweepMode::Normal);
        assert!(writer.lookup(&bench, variant).is_none(), "cold cache");
        let report = Arc::new(simulate(&bench, variant));
        writer.insert(&bench, variant, Arc::clone(&report));
        let hit = writer.lookup(&bench, variant).expect("memoized");
        assert!(Arc::ptr_eq(&hit, &report));

        // A fresh engine over the same directory replays the inserted
        // entry from disk; lookup never runs the simulator.
        let reader = SweepEngine::with_config(Some(dir.clone()), SweepMode::Normal);
        let replayed = reader.lookup(&bench, variant).expect("disk replay");
        assert_eq!(replayed.cycles, report.cycles);
        let s = reader.stats();
        assert_eq!((s.misses, s.disk_hits), (0, 1));

        // Off mode: lookup and insert are inert.
        let off = SweepEngine::with_config(Some(dir.clone()), SweepMode::Off);
        assert!(off.lookup(&bench, variant).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_stats_json_lists_fingerprints_and_totals() {
        let dir = std::env::temp_dir().join(format!(
            "regless-sweep-statsjson-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let current = dir.join(SweepEngine::fingerprint());
        let orphan = dir.join("00000000deadbeef");
        std::fs::create_dir_all(&current).unwrap();
        std::fs::create_dir_all(&orphan).unwrap();
        std::fs::write(current.join("a.json"), "{}").unwrap();
        std::fs::write(orphan.join("b.json"), "stale").unwrap();

        let engine = SweepEngine::with_config(Some(dir.clone()), SweepMode::Normal);
        let json = engine.cache_stats_json();
        // Round-trip through the parser: the output must be valid JSON.
        let parsed = regless_json::Json::parse(&json.to_string_compact()).unwrap();
        let fps = match parsed.field("fingerprints").unwrap() {
            regless_json::Json::Arr(rows) => rows.clone(),
            other => panic!("fingerprints should be an array, got {}", other.kind()),
        };
        assert_eq!(fps.len(), 2);
        let names: Vec<String> = fps
            .iter()
            .map(|r| regless_json::FromJson::from_json(r.field("name").unwrap()).unwrap())
            .collect();
        assert!(names.contains(&"00000000deadbeef".to_string()));
        assert!(names.contains(&SweepEngine::fingerprint()));
        for row in &fps {
            let name: String =
                regless_json::FromJson::from_json(row.field("name").unwrap()).unwrap();
            let current_flag = row.field("current").unwrap() == &regless_json::Json::Bool(true);
            assert_eq!(current_flag, name == SweepEngine::fingerprint());
            let age = row.field("age_seconds").unwrap();
            assert_ne!(age, &regless_json::Json::Null, "fresh files have an age");
        }
        let total_entries: u64 =
            regless_json::FromJson::from_json(parsed.field("total_entries").unwrap()).unwrap();
        let total_bytes: u64 =
            regless_json::FromJson::from_json(parsed.field("total_bytes").unwrap()).unwrap();
        assert_eq!(total_entries, 2);
        assert_eq!(total_bytes, 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_kernel_resolves_known_ids_only() {
        assert!(bench_kernel(&rodinia_id("nn")).is_some());
        assert!(bench_kernel(HIGH_PRESSURE_ID).is_some());
        assert!(bench_kernel("rodinia/not-a-bench").is_none());
        assert!(bench_kernel("micro/not-a-bench").is_none());
        assert!(bench_kernel("nn").is_none(), "bare names need a prefix");
    }

    #[test]
    fn unit_hash_is_canonical_and_distinct() {
        // Equivalent phrasings hash identically (idempotency across a
        // coordinator that speaks designs and a worker that ran opts).
        assert_eq!(
            unit_hash("rodinia/nn", RunVariant::Opts(ReglessRunOpts::default())),
            unit_hash("rodinia/nn", RunVariant::Design(DesignKind::regless_512()))
        );
        // Distinct units hash apart.
        assert_ne!(
            unit_hash("rodinia/nn", RunVariant::Design(DesignKind::Baseline)),
            unit_hash("rodinia/bfs", RunVariant::Design(DesignKind::Baseline))
        );
        assert_ne!(
            unit_hash("rodinia/nn", RunVariant::Design(DesignKind::Baseline)),
            unit_hash("rodinia/nn", RunVariant::Design(DesignKind::regless_512()))
        );
        // And the public slug matches what the disk cache would use.
        assert_eq!(
            unit_slug("rodinia/nn", RunVariant::Opts(ReglessRunOpts::default())),
            entry_slug("rodinia/nn", RunVariant::Design(DesignKind::regless_512()))
        );
    }

    #[test]
    fn every_registered_design_fingerprints_distinct_and_stable() {
        // Registry satellite: each registry id's default design must key a
        // distinct work unit, and the hash must be stable across calls
        // (it names disk-cache entries and cluster idempotency keys).
        let designs: Vec<(&str, DesignKind)> = crate::registry::all()
            .iter()
            .map(|e| (e.id, e.default_design()))
            .collect();
        let bench = rodinia_id("nn");
        for (i, (id_a, a)) in designs.iter().enumerate() {
            let h = unit_hash(&bench, RunVariant::Design(*a));
            assert_eq!(
                h,
                unit_hash(&bench, RunVariant::Design(*a)),
                "{id_a}: unit_hash must be deterministic"
            );
            for (id_b, b) in &designs[i + 1..] {
                assert_ne!(
                    h,
                    unit_hash(&bench, RunVariant::Design(*b)),
                    "{id_a} and {id_b} must fingerprint apart"
                );
            }
        }
    }

    #[test]
    fn sweep_space_enumerates_the_cross_product_in_order() {
        let benches = vec![rodinia_id("nn"), rodinia_id("bfs")];
        let designs = vec![DesignKind::Baseline, DesignKind::regless_512()];
        let units = sweep_space(&benches, &designs);
        assert_eq!(units.len(), 4);
        assert_eq!(
            units[0],
            (rodinia_id("nn"), RunVariant::Design(DesignKind::Baseline))
        );
        assert_eq!(
            units[3],
            (
                rodinia_id("bfs"),
                RunVariant::Design(DesignKind::regless_512())
            )
        );
        // Deterministic: two enumerations agree element-wise.
        assert_eq!(units, sweep_space(&benches, &designs));
    }

    #[test]
    fn prefetch_covers_all_jobs() {
        let engine = SweepEngine::with_config(None, SweepMode::Normal);
        let jobs = vec![
            (rodinia_id("nn"), RunVariant::Design(DesignKind::Baseline)),
            (rodinia_id("nn"), RunVariant::Design(DesignKind::Baseline)),
        ];
        engine.prefetch(&jobs);
        let s = engine.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.memory_hits + s.disk_hits + s.misses, 2);
    }
}
