//! Extension study: scheduler issue width.
fn main() {
    print!("{}", regless_bench::figs::extensions::dual_issue());
}
