//! Regenerates the paper's Figure 02.
fn main() {
    print!("{}", regless_bench::figs::fig02::report());
}
