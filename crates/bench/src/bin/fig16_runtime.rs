//! Regenerates the paper's Figure 16.
fn main() {
    print!("{}", regless_bench::figs::fig16::report());
}
