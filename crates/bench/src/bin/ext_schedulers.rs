//! Extension study: warp-scheduler comparison.
fn main() {
    print!("{}", regless_bench::figs::extensions::schedulers());
}
