//! Ablation bench: min_region_size.
fn main() {
    print!("{}", regless_bench::figs::ablations::min_region_size());
}
