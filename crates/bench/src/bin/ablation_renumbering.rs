//! Ablation bench: bank-aware register renumbering.
fn main() {
    print!("{}", regless_bench::figs::ablations::renumbering());
}
