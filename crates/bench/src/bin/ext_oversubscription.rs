//! Extension study: register-file oversubscription (paper §7).
fn main() {
    print!("{}", regless_bench::figs::extensions::oversubscription());
}
