//! Extension study: compressor pattern-set sweep.
fn main() {
    print!("{}", regless_bench::figs::extensions::compressor_patterns());
}
