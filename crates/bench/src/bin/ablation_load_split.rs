//! Ablation bench: load_split.
fn main() {
    print!("{}", regless_bench::figs::ablations::load_split());
}
