//! Regenerates the paper's Figure 14.
fn main() {
    print!("{}", regless_bench::figs::fig14::report());
}
