//! Writes `results/BENCH_sim_speed.json` — simulated-cycles-per-second
//! for the stepped reference loop vs the event-driven fast path on every
//! `bench_profiles` point, with the per-point speedup and its geometric
//! mean. Aborts if any point's reports are not byte-identical between
//! the two modes, so a published number always describes a correct
//! simulation. CI runs this and uploads the file as an artifact.

fn main() -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let report = regless_bench::sim_speed::measure_suite();
    let text = regless_json::to_string_pretty(&report) + "\n";
    std::fs::write("results/BENCH_sim_speed.json", &text)?;
    eprintln!(
        "wrote results/BENCH_sim_speed.json ({} points, geomean speedup {:.2}x)",
        report.rows.len(),
        report.geomean_speedup
    );
    Ok(())
}
