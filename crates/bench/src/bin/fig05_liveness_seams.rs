//! Regenerates the paper's Figure 05.
fn main() {
    print!("{}", regless_bench::figs::fig05::report());
}
