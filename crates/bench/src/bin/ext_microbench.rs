//! Extension study: hand-written microbenchmarks.
fn main() {
    print!("{}", regless_bench::figs::extensions::microbench());
}
