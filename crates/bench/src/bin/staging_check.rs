//! Correctness sweep: run every benchmark under RegLess and assert the
//! staged-operand oracle saw no value divergence between the OSU and the
//! architectural register state.
use regless_bench::{run_design, DesignKind};
use regless_workloads::rodinia;

fn main() {
    let mut total = 0u64;
    for name in rodinia::NAMES {
        let k = rodinia::kernel(name);
        let r = run_design(&k, DesignKind::regless_512());
        let m = r.total().staging_mismatches;
        if m > 0 {
            println!("{name}: {m} MISMATCHES");
        }
        total += m;
    }
    println!("total staging mismatches across all benchmarks: {total}");
    assert_eq!(total, 0, "staging-path value bug detected");
}
