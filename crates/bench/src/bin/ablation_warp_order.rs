//! Ablation bench: warp_order.
fn main() {
    print!("{}", regless_bench::figs::ablations::warp_order());
}
