//! Regenerates the paper's Figure 13.
fn main() {
    print!("{}", regless_bench::figs::fig13::report());
}
