//! Regenerates the paper's Figure 18.
fn main() {
    print!("{}", regless_bench::figs::fig18::report());
}
