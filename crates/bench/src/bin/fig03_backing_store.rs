//! Regenerates the paper's Figure 03.
fn main() {
    print!("{}", regless_bench::figs::fig03::report());
}
