//! `loadgen` — concurrent-client load generator for `regless serve`.
//!
//! Drives N clients against a server (an existing one via `--addr`, or a
//! `regless serve` child it spawns itself), measures request latency and
//! throughput, then reads the server's `stats` to report the coalesce and
//! cache hit ratios. Results land in `results/BENCH_serve.json`.
//!
//! ```text
//! loadgen [--addr host:port] [--clients N] [--requests N]
//!         [--benches id,id,...] [--timeout-ms MS] [--out PATH]
//! ```
//!
//! This binary deliberately speaks the raw JSONL protocol with only
//! `regless-json` (the serve crate depends on this one, so depending back
//! on it would be circular) — which also makes it an independent check
//! that the wire format is what DESIGN.md §12 says it is.

use regless_json::{Json, ToJson};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Instant;

struct Options {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    benches: Vec<String>,
    timeout_ms: Option<u64>,
    out: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: None,
            clients: 8,
            requests: 16,
            // Small kernels so a default run finishes in seconds; every
            // client walks the same rotation so identical requests overlap
            // and the coalescing/caching paths actually get exercised.
            benches: vec![
                "rodinia/nn".to_string(),
                "rodinia/gaussian".to_string(),
                "rodinia/lud".to_string(),
            ],
            timeout_ms: None,
            out: "results/BENCH_serve.json".to_string(),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut need = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => o.addr = Some(need("--addr")?),
            "--clients" => o.clients = need("--clients")?.parse().map_err(|e| format!("{e}"))?,
            "--requests" => o.requests = need("--requests")?.parse().map_err(|e| format!("{e}"))?,
            "--benches" => {
                o.benches = need("--benches")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--timeout-ms" => {
                o.timeout_ms = Some(need("--timeout-ms")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--out" => o.out = need("--out")?,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if o.benches.is_empty() {
        return Err("--benches must name at least one benchmark".to_string());
    }
    Ok(o)
}

/// One JSONL exchange over an existing connection.
fn exchange(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request: &Json,
) -> std::io::Result<Json> {
    writer.write_all(request.to_string_compact().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server hung up",
        ));
    }
    Json::parse(&line).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.message))
}

fn connect(addr: &str) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(addr)?;
    let writer = stream.try_clone()?;
    Ok((BufReader::new(stream), writer))
}

/// Spawn `regless serve --addr 127.0.0.1:0` from the sibling binary
/// directory and parse the ephemeral address it prints.
fn spawn_server() -> Result<(Child, String), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe
        .parent()
        .ok_or_else(|| "loadgen binary has no parent directory".to_string())?;
    let regless = dir.join("regless");
    if !regless.exists() {
        return Err(format!(
            "{} not found — build it first (cargo build --bin regless) or pass --addr",
            regless.display()
        ));
    }
    let mut child = Command::new(&regless)
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", regless.display()))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout);
    let mut first = String::new();
    lines
        .read_line(&mut first)
        .map_err(|e| format!("read server banner: {e}"))?;
    let addr = first
        .rsplit(' ')
        .next()
        .map(str::trim)
        .filter(|a| a.contains(':'))
        .ok_or_else(|| format!("unexpected server banner {first:?}"))?
        .to_string();
    Ok((child, addr))
}

/// Per-client outcome: latencies of successful requests (µs) and error
/// counts by code.
#[derive(Default)]
struct ClientResult {
    latencies_us: Vec<u64>,
    ok: u64,
    errors: u64,
    timeouts: u64,
}

fn client_loop(addr: &str, client_idx: usize, o: &Options) -> std::io::Result<ClientResult> {
    let (mut reader, mut writer) = connect(addr)?;
    let mut result = ClientResult::default();
    for i in 0..o.requests {
        let bench = &o.benches[i % o.benches.len()];
        let mut fields = vec![
            (
                "id".to_string(),
                ToJson::to_json(&((client_idx * o.requests + i) as u64)),
            ),
            ("kind".to_string(), Json::Str("run".to_string())),
            ("kernel".to_string(), Json::Str(bench.clone())),
        ];
        if let Some(ms) = o.timeout_ms {
            fields.push(("timeout_ms".to_string(), ToJson::to_json(&ms)));
        }
        let started = Instant::now();
        let resp = exchange(&mut reader, &mut writer, &Json::Obj(fields))?;
        let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let ok = matches!(resp.field("ok"), Ok(Json::Bool(true)));
        if ok {
            result.ok += 1;
            result.latencies_us.push(elapsed);
        } else {
            result.errors += 1;
            let code = resp
                .field("error")
                .ok()
                .and_then(|e| e.field("code").ok().cloned());
            if code == Some(Json::Str("timeout".to_string())) {
                result.timeouts += 1;
            }
        }
    }
    Ok(result)
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1] as f64 / 1e3
}

fn main() {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let (mut child, addr) = match &o.addr {
        Some(a) => (None, a.clone()),
        None => match spawn_server() {
            Ok((child, addr)) => {
                eprintln!("spawned regless serve on {addr}");
                (Some(child), addr)
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        },
    };

    let started = Instant::now();
    let results: Vec<ClientResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..o.clients)
            .map(|idx| {
                let addr = addr.clone();
                let o = &o;
                scope.spawn(move || client_loop(&addr, idx, o))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join().expect("client thread") {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("client error: {e}");
                    ClientResult::default()
                }
            })
            .collect()
    });
    let wall = started.elapsed();

    // Server-side view: coalesce/cache/simulation counts for the ratio.
    let stats = connect(&addr).ok().and_then(|(mut r, mut w)| {
        exchange(
            &mut r,
            &mut w,
            &Json::Obj(vec![
                ("id".to_string(), Json::Int(0)),
                ("kind".to_string(), Json::Str("stats".to_string())),
            ]),
        )
        .ok()
    });

    if let Some(c) = child.as_mut() {
        let _ = connect(&addr).and_then(|(mut r, mut w)| {
            exchange(
                &mut r,
                &mut w,
                &Json::Obj(vec![
                    ("id".to_string(), Json::Int(0)),
                    ("kind".to_string(), Json::Str("shutdown".to_string())),
                ]),
            )
        });
        let _ = c.wait();
    }

    let mut latencies: Vec<u64> = results
        .iter()
        .flat_map(|r| r.latencies_us.clone())
        .collect();
    latencies.sort_unstable();
    let ok: u64 = results.iter().map(|r| r.ok).sum();
    let errors: u64 = results.iter().map(|r| r.errors).sum();
    let timeouts: u64 = results.iter().map(|r| r.timeouts).sum();
    let mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e3
    };

    let counter = |name: &str| -> u64 {
        stats
            .as_ref()
            .and_then(|s| s.field(name).ok())
            .and_then(|v| match v {
                Json::Int(i) => u64::try_from(*i).ok(),
                Json::Uint(u) => Some(*u),
                _ => None,
            })
            .unwrap_or(0)
    };
    let submitted = counter("submitted");
    let coalesce_hits = counter("coalesce_hits");
    let cache_hits = counter("cache_hits");
    let simulations = counter("simulations");
    let coalesce_ratio = if submitted == 0 {
        0.0
    } else {
        coalesce_hits as f64 / submitted as f64
    };

    let report = Json::Obj(vec![
        ("clients".to_string(), ToJson::to_json(&o.clients)),
        (
            "requests_per_client".to_string(),
            ToJson::to_json(&o.requests),
        ),
        (
            "benches".to_string(),
            Json::Arr(o.benches.iter().map(|b| Json::Str(b.clone())).collect()),
        ),
        ("ok".to_string(), ToJson::to_json(&ok)),
        ("errors".to_string(), ToJson::to_json(&errors)),
        ("timeouts".to_string(), ToJson::to_json(&timeouts)),
        ("wall_seconds".to_string(), Json::Float(wall.as_secs_f64())),
        (
            "throughput_rps".to_string(),
            Json::Float(ok as f64 / wall.as_secs_f64().max(1e-9)),
        ),
        (
            "latency_ms".to_string(),
            Json::Obj(vec![
                ("mean".to_string(), Json::Float(mean_ms)),
                ("p50".to_string(), Json::Float(percentile(&latencies, 50.0))),
                ("p99".to_string(), Json::Float(percentile(&latencies, 99.0))),
                (
                    "max".to_string(),
                    Json::Float(latencies.last().copied().unwrap_or(0) as f64 / 1e3),
                ),
            ]),
        ),
        ("coalesce_ratio".to_string(), Json::Float(coalesce_ratio)),
        ("coalesce_hits".to_string(), ToJson::to_json(&coalesce_hits)),
        ("cache_hits".to_string(), ToJson::to_json(&cache_hits)),
        ("simulations".to_string(), ToJson::to_json(&simulations)),
        (
            "server_stats".to_string(),
            stats.clone().unwrap_or(Json::Null),
        ),
    ]);

    let rendered = report.to_string_pretty();
    if let Some(parent) = std::path::Path::new(&o.out).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(&o.out, format!("{rendered}\n")) {
        Ok(()) => eprintln!("wrote {}", o.out),
        Err(e) => {
            eprintln!("error: write {}: {e}", o.out);
            std::process::exit(1);
        }
    }
    println!(
        "{ok} ok / {errors} err in {:.2} s ({:.1} req/s); p50 {:.1} ms, p99 {:.1} ms; \
         {simulations} sims, {coalesce_hits} coalesced, {cache_hits} cache hits",
        wall.as_secs_f64(),
        ok as f64 / wall.as_secs_f64().max(1e-9),
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
    );
    if ok == 0 {
        // A load run where nothing succeeded is a failure even though the
        // report file was written.
        std::process::exit(1);
    }
}
