//! `loadgen` — concurrent-client load generator for `regless serve`.
//!
//! Drives N clients against a server (an existing one via `--addr`, or a
//! `regless serve` child it spawns itself), measures request latency and
//! throughput, then reads the server's `stats` to report the coalesce and
//! cache hit ratios. Results land in `results/BENCH_serve.json`.
//!
//! ```text
//! loadgen [--addr host:port] [--clients N] [--requests N]
//!         [--benches id,id,...] [--timeout-ms MS] [--out PATH]
//!         [--slo-p99-ms MS]
//! loadgen --cluster [--worker-counts 1,2,4] [--benches id,id,...]
//!         [--out PATH]
//! ```
//!
//! `--slo-p99-ms` turns the run into a latency gate: the measured p99 is
//! compared against the bound, the verdict lands in the report's `slo`
//! object, and a violation exits non-zero so CI fails the build.
//!
//! `queue_full` rejections are retried with the server's `retry_after_ms`
//! hint (exponential backoff + jitter, bounded), and retries are reported
//! separately from hard errors. `--cluster` switches to the cluster
//! scaling benchmark: one cold `regless cluster --spawn` sweep per worker
//! count, results in `results/BENCH_cluster.json`.
//!
//! This binary deliberately speaks the raw JSONL protocol with only
//! `regless-json` (the serve crate depends on this one, so depending back
//! on it would be circular) — which also makes it an independent check
//! that the wire format is what DESIGN.md §12 says it is.

use regless_json::{Json, ToJson};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Bound on `queue_full` retries per request.
const MAX_RETRIES: u32 = 5;
/// Base backoff when the server sends no `retry_after_ms` hint.
const DEFAULT_BACKOFF_MS: u64 = 100;
/// Cap on any single backoff sleep.
const MAX_BACKOFF_MS: u64 = 5_000;

struct Options {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    benches: Vec<String>,
    timeout_ms: Option<u64>,
    out: Option<String>,
    /// `--slo-p99-ms`: fail the run (exit non-zero) if the measured p99
    /// latency exceeds this bound in milliseconds.
    slo_p99_ms: Option<f64>,
    /// `--cluster`: run the cluster scaling benchmark instead of the
    /// serve load test.
    cluster: bool,
    /// Worker counts the cluster benchmark sweeps.
    worker_counts: Vec<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            addr: None,
            clients: 8,
            requests: 16,
            // Small kernels so a default run finishes in seconds; every
            // client walks the same rotation so identical requests overlap
            // and the coalescing/caching paths actually get exercised.
            benches: vec![
                "rodinia/nn".to_string(),
                "rodinia/gaussian".to_string(),
                "rodinia/lud".to_string(),
            ],
            timeout_ms: None,
            out: None,
            slo_p99_ms: None,
            cluster: false,
            worker_counts: vec![1, 2, 4],
        }
    }
}

/// The benchmark space the cluster scaling benchmark sweeps: 16 kernels
/// × 2 designs = 32 units, enough serial work that the per-run fixed
/// costs (process spawn, connect, final claim round) amortize away while
/// a full 1/2/4-worker sweep still finishes in CI time.
fn cluster_default_benches() -> Vec<String> {
    [
        "nn",
        "gaussian",
        "lud",
        "backprop",
        "bfs",
        "hotspot",
        "pathfinder",
        "kmeans",
        "nw",
        "srad_v1",
        "srad_v2",
        "streamcluster",
        "lavaMD",
        "myocyte",
        "b+tree",
        "hybridsort",
    ]
    .iter()
    .map(|n| format!("rodinia/{n}"))
    .collect()
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options::default();
    let mut benches_given = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut need = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => o.addr = Some(need("--addr")?),
            "--clients" => o.clients = need("--clients")?.parse().map_err(|e| format!("{e}"))?,
            "--requests" => o.requests = need("--requests")?.parse().map_err(|e| format!("{e}"))?,
            "--benches" => {
                benches_given = true;
                o.benches = need("--benches")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--timeout-ms" => {
                o.timeout_ms = Some(need("--timeout-ms")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--out" => o.out = Some(need("--out")?),
            "--slo-p99-ms" => {
                o.slo_p99_ms = Some(need("--slo-p99-ms")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--cluster" => o.cluster = true,
            "--worker-counts" => {
                o.worker_counts = need("--worker-counts")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| format!("{e}")))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if o.cluster && !benches_given {
        o.benches = cluster_default_benches();
    }
    if o.benches.is_empty() {
        return Err("--benches must name at least one benchmark".to_string());
    }
    if o.worker_counts.is_empty() || o.worker_counts.contains(&0) {
        return Err("--worker-counts must list positive worker counts".to_string());
    }
    Ok(o)
}

/// One JSONL exchange over an existing connection.
fn exchange(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request: &Json,
) -> std::io::Result<Json> {
    writer.write_all(request.to_string_compact().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server hung up",
        ));
    }
    Json::parse(&line).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.message))
}

fn connect(addr: &str) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(addr)?;
    // Request-response over JSONL: disable Nagle so multi-segment
    // requests don't stall on the server's delayed ACK.
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    Ok((BufReader::new(stream), writer))
}

/// The `regless` binary next to this one (both live in the same cargo
/// target directory).
fn regless_binary() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe
        .parent()
        .ok_or_else(|| "loadgen binary has no parent directory".to_string())?;
    let regless = dir.join("regless");
    if !regless.exists() {
        return Err(format!(
            "{} not found — build it first (cargo build --bin regless) or pass --addr",
            regless.display()
        ));
    }
    Ok(regless)
}

/// Spawn `regless serve --addr 127.0.0.1:0` from the sibling binary
/// directory and parse the ephemeral address it prints.
fn spawn_server() -> Result<(Child, String), String> {
    let regless = regless_binary()?;
    let mut child = Command::new(&regless)
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", regless.display()))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout);
    let mut first = String::new();
    lines
        .read_line(&mut first)
        .map_err(|e| format!("read server banner: {e}"))?;
    let addr = first
        .rsplit(' ')
        .next()
        .map(str::trim)
        .filter(|a| a.contains(':'))
        .ok_or_else(|| format!("unexpected server banner {first:?}"))?
        .to_string();
    Ok((child, addr))
}

/// Per-client outcome: latencies of successful requests (µs) and error
/// counts by code. `retries` counts `queue_full` rejections that were
/// retried with the server's `retry_after_ms` hint rather than recorded
/// as hard failures.
#[derive(Default)]
struct ClientResult {
    latencies_us: Vec<u64>,
    ok: u64,
    errors: u64,
    timeouts: u64,
    retries: u64,
}

/// `v` as a u64 if it is a JSON integer.
fn json_u64(v: &Json) -> Option<u64> {
    match v {
        Json::Int(i) => u64::try_from(*i).ok(),
        Json::Uint(u) => Some(*u),
        _ => None,
    }
}

/// Deterministic jitter in `[0, max)` (SplitMix64 of `seed`).
fn jitter(seed: u64, max: u64) -> u64 {
    if max == 0 {
        return 0;
    }
    let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    (x ^ (x >> 31)) % max
}

/// The error code of a failed response, if any.
fn error_code(resp: &Json) -> Option<String> {
    match resp.field("error").ok()?.field("code").ok()? {
        Json::Str(code) => Some(code.clone()),
        _ => None,
    }
}

fn client_loop(addr: &str, client_idx: usize, o: &Options) -> std::io::Result<ClientResult> {
    let (mut reader, mut writer) = connect(addr)?;
    let mut result = ClientResult::default();
    for i in 0..o.requests {
        let bench = &o.benches[i % o.benches.len()];
        let id = (client_idx * o.requests + i) as u64;
        let mut fields = vec![
            ("id".to_string(), ToJson::to_json(&id)),
            ("kind".to_string(), Json::Str("run".to_string())),
            ("kernel".to_string(), Json::Str(bench.clone())),
        ];
        if let Some(ms) = o.timeout_ms {
            fields.push(("timeout_ms".to_string(), ToJson::to_json(&ms)));
        }
        let request = Json::Obj(fields);
        // `queue_full` is back-pressure, not failure: honor the server's
        // retry_after_ms hint (exponential, jittered, bounded) before
        // giving up and recording an error.
        let mut attempt: u32 = 0;
        let (resp, elapsed) = loop {
            let started = Instant::now();
            let resp = exchange(&mut reader, &mut writer, &request)?;
            let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            let ok = matches!(resp.field("ok"), Ok(Json::Bool(true)));
            if !ok && error_code(&resp).as_deref() == Some("queue_full") && attempt < MAX_RETRIES {
                let hint = resp
                    .field("error")
                    .ok()
                    .and_then(|e| e.field("retry_after_ms").ok())
                    .and_then(json_u64)
                    .unwrap_or(DEFAULT_BACKOFF_MS)
                    .max(1);
                let base = hint
                    .saturating_mul(1u64 << attempt.min(16))
                    .min(MAX_BACKOFF_MS);
                let sleep =
                    (base + jitter(id ^ u64::from(attempt), base / 2 + 1)).min(MAX_BACKOFF_MS);
                std::thread::sleep(Duration::from_millis(sleep));
                attempt += 1;
                result.retries += 1;
                continue;
            }
            break (resp, elapsed);
        };
        let ok = matches!(resp.field("ok"), Ok(Json::Bool(true)));
        if ok {
            result.ok += 1;
            result.latencies_us.push(elapsed);
        } else {
            result.errors += 1;
            if error_code(&resp).as_deref() == Some("timeout") {
                result.timeouts += 1;
            }
        }
    }
    Ok(result)
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1] as f64 / 1e3
}

fn main() {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if o.cluster {
        if let Err(e) = cluster_main(&o) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let out = o
        .out
        .clone()
        .unwrap_or_else(|| "results/BENCH_serve.json".to_string());

    let (mut child, addr) = match &o.addr {
        Some(a) => (None, a.clone()),
        None => match spawn_server() {
            Ok((child, addr)) => {
                eprintln!("spawned regless serve on {addr}");
                (Some(child), addr)
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        },
    };

    let started = Instant::now();
    let results: Vec<ClientResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..o.clients)
            .map(|idx| {
                let addr = addr.clone();
                let o = &o;
                scope.spawn(move || client_loop(&addr, idx, o))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join().expect("client thread") {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("client error: {e}");
                    ClientResult::default()
                }
            })
            .collect()
    });
    let wall = started.elapsed();

    // Server-side view: coalesce/cache/simulation counts for the ratio.
    let stats = connect(&addr).ok().and_then(|(mut r, mut w)| {
        exchange(
            &mut r,
            &mut w,
            &Json::Obj(vec![
                ("id".to_string(), Json::Int(0)),
                ("kind".to_string(), Json::Str("stats".to_string())),
            ]),
        )
        .ok()
    });

    if let Some(c) = child.as_mut() {
        let _ = connect(&addr).and_then(|(mut r, mut w)| {
            exchange(
                &mut r,
                &mut w,
                &Json::Obj(vec![
                    ("id".to_string(), Json::Int(0)),
                    ("kind".to_string(), Json::Str("shutdown".to_string())),
                ]),
            )
        });
        let _ = c.wait();
    }

    let mut latencies: Vec<u64> = results
        .iter()
        .flat_map(|r| r.latencies_us.clone())
        .collect();
    latencies.sort_unstable();
    let ok: u64 = results.iter().map(|r| r.ok).sum();
    let errors: u64 = results.iter().map(|r| r.errors).sum();
    let timeouts: u64 = results.iter().map(|r| r.timeouts).sum();
    let retries: u64 = results.iter().map(|r| r.retries).sum();
    let mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e3
    };

    let counter = |name: &str| -> u64 {
        stats
            .as_ref()
            .and_then(|s| s.field(name).ok())
            .and_then(|v| match v {
                Json::Int(i) => u64::try_from(*i).ok(),
                Json::Uint(u) => Some(*u),
                _ => None,
            })
            .unwrap_or(0)
    };
    let submitted = counter("submitted");
    let coalesce_hits = counter("coalesce_hits");
    let cache_hits = counter("cache_hits");
    let simulations = counter("simulations");
    let coalesce_ratio = if submitted == 0 {
        0.0
    } else {
        coalesce_hits as f64 / submitted as f64
    };

    let p99_ms = percentile(&latencies, 99.0);
    let slo = o.slo_p99_ms.map(|bound| {
        Json::Obj(vec![
            ("p99_ms_bound".to_string(), Json::Float(bound)),
            ("p99_ms".to_string(), Json::Float(p99_ms)),
            ("pass".to_string(), Json::Bool(p99_ms <= bound)),
        ])
    });

    let mut report = Json::Obj(vec![
        ("clients".to_string(), ToJson::to_json(&o.clients)),
        (
            "requests_per_client".to_string(),
            ToJson::to_json(&o.requests),
        ),
        (
            "benches".to_string(),
            Json::Arr(o.benches.iter().map(|b| Json::Str(b.clone())).collect()),
        ),
        ("ok".to_string(), ToJson::to_json(&ok)),
        ("errors".to_string(), ToJson::to_json(&errors)),
        ("timeouts".to_string(), ToJson::to_json(&timeouts)),
        ("retries".to_string(), ToJson::to_json(&retries)),
        ("wall_seconds".to_string(), Json::Float(wall.as_secs_f64())),
        (
            "throughput_rps".to_string(),
            Json::Float(ok as f64 / wall.as_secs_f64().max(1e-9)),
        ),
        (
            "latency_ms".to_string(),
            Json::Obj(vec![
                ("mean".to_string(), Json::Float(mean_ms)),
                ("p50".to_string(), Json::Float(percentile(&latencies, 50.0))),
                ("p99".to_string(), Json::Float(percentile(&latencies, 99.0))),
                (
                    "max".to_string(),
                    Json::Float(latencies.last().copied().unwrap_or(0) as f64 / 1e3),
                ),
            ]),
        ),
        ("coalesce_ratio".to_string(), Json::Float(coalesce_ratio)),
        ("coalesce_hits".to_string(), ToJson::to_json(&coalesce_hits)),
        ("cache_hits".to_string(), ToJson::to_json(&cache_hits)),
        ("simulations".to_string(), ToJson::to_json(&simulations)),
        (
            "server_stats".to_string(),
            stats.clone().unwrap_or(Json::Null),
        ),
    ]);

    if let (Some(slo), Json::Obj(fields)) = (slo, &mut report) {
        fields.push(("slo".to_string(), slo));
    }

    if let Err(e) = write_report(&out, &report) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    println!(
        "{ok} ok / {errors} err / {retries} retried in {:.2} s ({:.1} req/s); \
         p50 {:.1} ms, p99 {:.1} ms; \
         {simulations} sims, {coalesce_hits} coalesced, {cache_hits} cache hits",
        wall.as_secs_f64(),
        ok as f64 / wall.as_secs_f64().max(1e-9),
        percentile(&latencies, 50.0),
        p99_ms,
    );
    if ok == 0 {
        // A load run where nothing succeeded is a failure even though the
        // report file was written.
        std::process::exit(1);
    }
    if let Some(bound) = o.slo_p99_ms {
        if p99_ms <= bound {
            println!("SLO ok: p99 {p99_ms:.1} ms within {bound:.1} ms");
        } else {
            println!("SLO FAIL: p99 {p99_ms:.1} ms exceeds {bound:.1} ms");
            std::process::exit(1);
        }
    }
}

/// Write `report` (pretty, newline-terminated) to `path`, creating parents.
fn write_report(path: &str, report: &Json) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    std::fs::write(path, format!("{}\n", report.to_string_pretty()))
        .map_err(|e| format!("write {path}: {e}"))?;
    eprintln!("wrote {path}");
    Ok(())
}

/// One `regless cluster --spawn` run at a fixed worker count, cold.
struct ClusterRun {
    workers: usize,
    wall_seconds: f64,
    units_done: u64,
    reassignments: u64,
    workers_seen: u64,
    complete: bool,
}

/// Run the sweep cluster once per worker count, each with a fresh scratch
/// cache directory so every run simulates from cold, and report wall
/// clock, throughput, and speedup vs the 1-worker (or smallest) run.
fn cluster_main(o: &Options) -> Result<(), String> {
    let regless = regless_binary()?;
    let out = o
        .out
        .clone()
        .unwrap_or_else(|| "results/BENCH_cluster.json".to_string());
    let benches = o.benches.join(",");
    let scratch_root =
        std::env::temp_dir().join(format!("regless-cluster-bench-{}", std::process::id()));

    let mut runs: Vec<ClusterRun> = Vec::new();
    for &workers in &o.worker_counts {
        // A fresh REGLESS_SWEEP_DIR per run keeps every run cold: no worker
        // may replay a cache written by a previous worker count.
        let scratch = scratch_root.join(format!("w{workers}"));
        std::fs::create_dir_all(&scratch).map_err(|e| format!("mkdir {scratch:?}: {e}"))?;
        eprintln!("cluster benchmark: {workers} worker(s) over [{benches}] ...");
        let output = Command::new(&regless)
            .args([
                "cluster",
                "--addr",
                "127.0.0.1:0",
                "--spawn",
                "--workers",
                &workers.to_string(),
                "--benches",
                &benches,
                "--designs",
                "baseline,regless",
                "--json",
            ])
            .env("REGLESS_SWEEP_DIR", &scratch)
            .stderr(Stdio::inherit())
            .output()
            .map_err(|e| format!("spawn {}: {e}", regless.display()))?;
        let _ = std::fs::remove_dir_all(&scratch);
        if !output.status.success() {
            return Err(format!(
                "regless cluster --workers {workers} exited with {}",
                output.status
            ));
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        let summary = Json::parse(stdout.trim())
            .map_err(|e| format!("parse cluster summary: {} in {stdout:?}", e.message))?;
        let counter =
            |name: &str| -> u64 { summary.field(name).ok().and_then(json_u64).unwrap_or(0) };
        let wall_seconds = match summary.field("wall_seconds") {
            Ok(Json::Float(f)) => *f,
            Ok(v) => json_u64(v).unwrap_or(0) as f64,
            Err(_) => 0.0,
        };
        runs.push(ClusterRun {
            workers,
            wall_seconds,
            units_done: counter("units_done"),
            reassignments: counter("reassignments"),
            workers_seen: counter("workers_seen"),
            complete: matches!(summary.field("complete"), Ok(Json::Bool(true))),
        });
    }
    let _ = std::fs::remove_dir_all(&scratch_root);

    // Speedup is relative to the slowest configuration with the fewest
    // workers present in the sweep (normally the 1-worker run).
    let baseline_wall = runs
        .iter()
        .min_by_key(|r| r.workers)
        .map(|r| r.wall_seconds)
        .unwrap_or(0.0);
    let run_rows: Vec<Json> = runs
        .iter()
        .map(|r| {
            let speedup = if r.wall_seconds > 0.0 {
                baseline_wall / r.wall_seconds
            } else {
                0.0
            };
            println!(
                "{} worker(s): {:.2} s wall, {} units, speedup {:.2}x{}",
                r.workers,
                r.wall_seconds,
                r.units_done,
                speedup,
                if r.complete { "" } else { " (INCOMPLETE)" },
            );
            Json::Obj(vec![
                ("workers".to_string(), ToJson::to_json(&r.workers)),
                ("wall_seconds".to_string(), Json::Float(r.wall_seconds)),
                ("units_done".to_string(), ToJson::to_json(&r.units_done)),
                (
                    "throughput_units_per_s".to_string(),
                    Json::Float(r.units_done as f64 / r.wall_seconds.max(1e-9)),
                ),
                (
                    "reassignments".to_string(),
                    ToJson::to_json(&r.reassignments),
                ),
                ("workers_seen".to_string(), ToJson::to_json(&r.workers_seen)),
                ("speedup".to_string(), Json::Float(speedup)),
                ("complete".to_string(), Json::Bool(r.complete)),
            ])
        })
        .collect();
    // Speedup saturates at min(workers, host cores): the sweep is
    // CPU-bound once protocol latency is off the per-unit path, so the
    // host's parallelism is the context the numbers must be read in.
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let report = Json::Obj(vec![
        (
            "benches".to_string(),
            Json::Arr(o.benches.iter().map(|b| Json::Str(b.clone())).collect()),
        ),
        (
            "designs".to_string(),
            Json::Arr(vec![
                Json::Str("baseline".to_string()),
                Json::Str("regless".to_string()),
            ]),
        ),
        (
            "host_parallelism".to_string(),
            ToJson::to_json(&host_parallelism),
        ),
        (
            "baseline_wall_seconds".to_string(),
            Json::Float(baseline_wall),
        ),
        ("runs".to_string(), Json::Arr(run_rows)),
    ]);
    write_report(&out, &report)?;
    if runs.iter().any(|r| !r.complete) {
        return Err("at least one cluster run did not complete its sweep".to_string());
    }
    Ok(())
}
