//! Regenerates the paper's Figure 17.
fn main() {
    print!("{}", regless_bench::figs::fig17::report());
}
