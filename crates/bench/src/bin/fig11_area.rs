//! Regenerates the paper's Figure 11.
fn main() {
    print!("{}", regless_bench::figs::fig11::report());
}
