//! Regenerates the paper's Figure 15.
fn main() {
    print!("{}", regless_bench::figs::fig15::report());
}
