//! Ablation bench: compressor.
fn main() {
    print!("{}", regless_bench::figs::ablations::compressor());
}
