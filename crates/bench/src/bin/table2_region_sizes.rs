//! Regenerates the paper's table2.
fn main() {
    print!("{}", regless_bench::figs::table2::report());
}
