//! Regenerates the paper's Figure 12.
fn main() {
    print!("{}", regless_bench::figs::fig12::report());
}
