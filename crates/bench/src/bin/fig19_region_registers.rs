//! Regenerates the paper's Figure 19.
fn main() {
    print!("{}", regless_bench::figs::fig19::report());
}
