//! Runs every reproduced table, figure, and ablation, writing each to
//! `results/<id>.txt` and echoing to stdout.

use regless_bench::figs;
use std::fs;

/// One experiment: its results-file id and the function regenerating it.
type Experiment = (&'static str, fn() -> String);

fn main() -> std::io::Result<()> {
    fs::create_dir_all("results")?;
    let experiments: Vec<Experiment> = vec![
        ("table1_config", figs::table1::report),
        ("table2_region_sizes", figs::table2::report),
        ("fig02_working_set", figs::fig02::report),
        ("fig03_backing_store", figs::fig03::report),
        ("fig05_liveness_seams", figs::fig05::report),
        ("fig11_area", figs::fig11::report),
        ("fig12_power", figs::fig12::report),
        ("fig13_pareto", figs::fig13::report),
        ("fig14_rf_energy", figs::fig14::report),
        ("fig15_gpu_energy", figs::fig15::report),
        ("fig16_runtime", figs::fig16::report),
        ("fig17_preload_location", figs::fig17::report),
        ("fig18_l1_bandwidth", figs::fig18::report),
        ("fig19_region_registers", figs::fig19::report),
        ("ablation_compressor", figs::ablations::compressor),
        ("ablation_warp_order", figs::ablations::warp_order),
        ("ablation_load_split", figs::ablations::load_split),
        ("ablation_min_region_size", figs::ablations::min_region_size),
        ("ablation_renumbering", figs::ablations::renumbering),
        ("ext_oversubscription", figs::extensions::oversubscription),
        ("ext_compressor_patterns", figs::extensions::compressor_patterns),
        ("ext_schedulers", figs::extensions::schedulers),
        ("ext_microbench", figs::extensions::microbench),
        ("ext_dual_issue", figs::extensions::dual_issue),
        ("ext_osu_occupancy", figs::extensions::osu_occupancy),
    ];
    // Experiments are independent; run them across available cores.
    let results: Vec<(String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = experiments
            .into_iter()
            .map(|(id, run)| {
                scope.spawn(move || {
                    eprintln!("== {id} ==");
                    (id.to_string(), run())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("experiment panicked")).collect()
    });
    for (id, text) in &results {
        fs::write(format!("results/{id}.txt"), text)?;
        println!("==== {id} ====\n{text}");
    }
    eprintln!("== summary.json ==");
    fs::write("results/summary.json", figs::summary::report())?;
    Ok(())
}
