//! Runs every reproduced table, figure, and ablation, writing each to
//! `results/<id>.txt` and echoing to stdout.
//!
//! Experiments run concurrently and share the sweep engine's memoized
//! simulation cache, so common runs (the baseline over all benchmarks,
//! the 512-entry design point, …) are simulated once no matter how many
//! reports use them. A panicking experiment is reported and skipped — the
//! rest still complete — and the process exits non-zero if any failed.

use regless_bench::{format_table, sweep};
use std::fs;
use std::time::Instant;

/// One experiment: its results-file id and the function regenerating it.
type Experiment = (&'static str, fn() -> String);

/// What one experiment produced: the rendered report or a panic message.
type Outcome = Result<String, String>;

fn main() -> std::io::Result<()> {
    let started = Instant::now();
    fs::create_dir_all("results")?;
    let experiments: Vec<Experiment> = vec![
        ("table1_config", regless_bench::figs::table1::report),
        ("table2_region_sizes", regless_bench::figs::table2::report),
        ("fig02_working_set", regless_bench::figs::fig02::report),
        ("fig03_backing_store", regless_bench::figs::fig03::report),
        ("fig05_liveness_seams", regless_bench::figs::fig05::report),
        ("fig11_area", regless_bench::figs::fig11::report),
        ("fig12_power", regless_bench::figs::fig12::report),
        ("fig13_pareto", regless_bench::figs::fig13::report),
        ("fig14_rf_energy", regless_bench::figs::fig14::report),
        ("fig15_gpu_energy", regless_bench::figs::fig15::report),
        ("fig16_runtime", regless_bench::figs::fig16::report),
        ("fig17_preload_location", regless_bench::figs::fig17::report),
        ("fig18_l1_bandwidth", regless_bench::figs::fig18::report),
        ("fig19_region_registers", regless_bench::figs::fig19::report),
        (
            "ablation_compressor",
            regless_bench::figs::ablations::compressor,
        ),
        (
            "ablation_warp_order",
            regless_bench::figs::ablations::warp_order,
        ),
        (
            "ablation_load_split",
            regless_bench::figs::ablations::load_split,
        ),
        (
            "ablation_min_region_size",
            regless_bench::figs::ablations::min_region_size,
        ),
        (
            "ablation_renumbering",
            regless_bench::figs::ablations::renumbering,
        ),
        (
            "ext_oversubscription",
            regless_bench::figs::extensions::oversubscription,
        ),
        (
            "ext_compressor_patterns",
            regless_bench::figs::extensions::compressor_patterns,
        ),
        (
            "ext_schedulers",
            regless_bench::figs::extensions::schedulers,
        ),
        (
            "ext_microbench",
            regless_bench::figs::extensions::microbench,
        ),
        (
            "ext_dual_issue",
            regless_bench::figs::extensions::dual_issue,
        ),
        (
            "ext_osu_occupancy",
            regless_bench::figs::extensions::osu_occupancy,
        ),
        ("summary.json", regless_bench::figs::summary::report),
        (
            "BENCH_profile.json",
            regless_bench::profile::bench_profiles_report,
        ),
        (
            "BENCH_report.html",
            regless_bench::report::bench_report_html,
        ),
    ];
    let total = experiments.len();
    // Experiments are independent; run them across available cores. Each
    // runs inside `catch_unwind` so one failure cannot abort the sweep.
    let results: Vec<(String, f64, Outcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = experiments
            .into_iter()
            .enumerate()
            .map(|(i, (id, run))| {
                scope.spawn(move || {
                    eprintln!("== [{}/{total}] {id} ==", i + 1);
                    let t0 = Instant::now();
                    let outcome = std::panic::catch_unwind(run)
                        .map_err(|payload| panic_message(payload.as_ref()));
                    let secs = t0.elapsed().as_secs_f64();
                    eprintln!(
                        "== [{}/{total}] {id} {} in {secs:.1} s ==",
                        i + 1,
                        if outcome.is_ok() { "done" } else { "FAILED" },
                    );
                    (id.to_string(), secs, outcome)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread itself must not die"))
            .collect()
    });

    let mut failures = Vec::new();
    let mut timing_rows = Vec::new();
    for (id, secs, outcome) in &results {
        match outcome {
            Ok(text) => {
                if id.ends_with(".json") || id.ends_with(".html") {
                    fs::write(format!("results/{id}"), text)?;
                } else {
                    fs::write(format!("results/{id}.txt"), text)?;
                    println!("==== {id} ====\n{text}");
                }
            }
            Err(msg) => failures.push((id.clone(), msg.clone())),
        }
        timing_rows.push(vec![
            id.clone(),
            format!("{secs:.1}"),
            if outcome.is_ok() { "ok" } else { "FAILED" }.to_string(),
        ]);
    }

    eprintln!("\n==== timing summary ====");
    eprintln!(
        "{}",
        format_table(&["experiment", "seconds", "status"], &timing_rows)
    );
    eprintln!("\n==== sweep run log ====");
    eprint!("{}", sweep::engine().timing_table());
    eprintln!("{}", sweep::engine().stats().summary_line());
    eprintln!("{}", sweep::engine().sim_time_line());
    eprintln!("total wall time: {:.1} s", started.elapsed().as_secs_f64());

    if !failures.is_empty() {
        eprintln!("\n{} of {total} experiments FAILED:", failures.len());
        for (id, msg) in &failures {
            eprintln!("  {id}: {msg}");
        }
        std::process::exit(1);
    }
    Ok(())
}

/// Extract a readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
