//! Writes `results/BENCH_profile.json` — per-benchmark CPI stacks and
//! IPC at the paper's 512-entry design point — without running the full
//! `all_experiments` sweep. CI runs this to publish the profile artifact
//! on every push; runs come from the sweep engine's memoized cache, so a
//! warm cache makes this nearly free.

fn main() -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let text = regless_bench::profile::bench_profiles_report();
    std::fs::write("results/BENCH_profile.json", &text)?;
    eprintln!("wrote results/BENCH_profile.json ({} bytes)", text.len());
    Ok(())
}
