//! Regenerates the paper's table1.
fn main() {
    print!("{}", regless_bench::figs::table1::report());
}
