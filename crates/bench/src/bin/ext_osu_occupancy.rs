//! Extension study: OSU occupancy over time.
fn main() {
    print!("{}", regless_bench::figs::extensions::osu_occupancy());
}
