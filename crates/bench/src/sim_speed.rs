//! Simulator-throughput benchmark: the event-driven fast path vs the
//! stepped reference loop.
//!
//! `bench_sim_speed` runs every `bench_profiles` point (each benchmark
//! under the baseline and the paper's 512-entry RegLess design) twice —
//! once per run-loop mode — asserts the two [`regless_sim::RunReport`]s are
//! byte-identical, and writes `results/BENCH_sim_speed.json` with
//! simulated-cycles-per-second for each mode plus the speedup ratio and
//! its geometric mean. CI uploads the file as an artifact; DESIGN.md §13
//! documents the fast path itself and EXPERIMENTS.md explains how to
//! read the report.

use crate::{geomean, run_design_with, DesignKind};
use regless_workloads::rodinia;
use std::time::Instant;

/// One (benchmark, design) point's throughput measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct SimSpeedRow {
    /// Benchmark name.
    pub name: String,
    /// Design label (`baseline` or `regless`).
    pub design: String,
    /// Simulated cycles (identical in both modes by construction).
    pub cycles: u64,
    /// Wall-clock seconds for the stepped reference loop.
    pub stepped_secs: f64,
    /// Wall-clock seconds for the event-driven fast path.
    pub event_secs: f64,
    /// Simulated cycles per second, stepped.
    pub stepped_cps: f64,
    /// Simulated cycles per second, event-driven.
    pub event_cps: f64,
    /// `event_cps / stepped_cps`.
    pub speedup: f64,
    /// Whether the two modes' reports were byte-identical (the bench
    /// aborts when they are not, so a written report always says true).
    pub identical: bool,
}

regless_json::impl_json_struct!(SimSpeedRow {
    name,
    design,
    cycles,
    stepped_secs,
    event_secs,
    stepped_cps,
    event_cps,
    speedup,
    identical,
});

/// The full `results/BENCH_sim_speed.json` payload.
#[derive(Clone, Debug, PartialEq)]
pub struct SimSpeedReport {
    /// One row per (benchmark, design) point.
    pub rows: Vec<SimSpeedRow>,
    /// Geometric mean of the per-row speedups.
    pub geomean_speedup: f64,
}

regless_json::impl_json_struct!(SimSpeedReport {
    rows,
    geomean_speedup,
});

/// Measure one (benchmark, design) point.
///
/// # Panics
///
/// Panics when the two run-loop modes disagree on the report bytes —
/// that is a simulator bug, not a measurement artifact, and a speedup
/// number for a wrong simulation would be meaningless.
pub fn measure_point(name: &str, design: DesignKind, design_label: &str) -> SimSpeedRow {
    let kernel = rodinia::kernel(name);
    let t0 = Instant::now();
    let stepped = run_design_with(&kernel, design, true);
    let stepped_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let event = run_design_with(&kernel, design, false);
    let event_secs = t1.elapsed().as_secs_f64();
    let a = stepped.stable_json().to_string_compact();
    let b = event.stable_json().to_string_compact();
    assert_eq!(
        a, b,
        "stepped and event-driven reports diverged on {name} under {design_label}"
    );
    let cycles = event.cycles;
    let stepped_cps = cycles as f64 / stepped_secs.max(1e-9);
    let event_cps = cycles as f64 / event_secs.max(1e-9);
    SimSpeedRow {
        name: name.to_string(),
        design: design_label.to_string(),
        cycles,
        stepped_secs,
        event_secs,
        stepped_cps,
        event_cps,
        speedup: event_cps / stepped_cps,
        identical: true,
    }
}

/// Run the whole suite (every benchmark, baseline and RegLess designs).
///
/// # Panics
///
/// Panics when any point's reports diverge between the two modes.
pub fn measure_suite() -> SimSpeedReport {
    let mut rows = Vec::new();
    for name in rodinia::NAMES {
        rows.push(measure_point(name, DesignKind::Baseline, "baseline"));
        rows.push(measure_point(name, DesignKind::regless_512(), "regless"));
    }
    let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
    SimSpeedReport {
        geomean_speedup: geomean(&speedups),
        rows,
    }
}

/// The JSON text of [`measure_suite`], as written to
/// `results/BENCH_sim_speed.json`.
///
/// # Panics
///
/// Panics when any point's reports diverge between the two modes.
pub fn sim_speed_report() -> String {
    regless_json::to_string_pretty(&measure_suite()) + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One cheap point end-to-end: identical reports, sane numbers.
    #[test]
    fn nn_point_is_identical_and_positive() {
        let row = measure_point("nn", DesignKind::regless_512(), "regless");
        assert!(row.identical);
        assert!(row.cycles > 0);
        assert!(row.stepped_cps > 0.0 && row.event_cps > 0.0);
    }

    #[test]
    fn report_json_round_trips() {
        let report = SimSpeedReport {
            rows: vec![SimSpeedRow {
                name: "nn".into(),
                design: "regless".into(),
                cycles: 100,
                stepped_secs: 0.5,
                event_secs: 0.1,
                stepped_cps: 200.0,
                event_cps: 1000.0,
                speedup: 5.0,
                identical: true,
            }],
            geomean_speedup: 5.0,
        };
        let text = regless_json::to_string_pretty(&report);
        let back: SimSpeedReport = regless_json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }
}
