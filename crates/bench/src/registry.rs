//! Pluggable design registry: string ids → design constructors plus
//! metadata (display name, citation, stability tier, tunable params,
//! energy-model mapping).
//!
//! Every layer that names a storage design — the CLI (`regless run
//! --design <id>`), the serve/cluster wire protocol, the sweep space, the
//! figures — resolves ids through this one table, so adding a design
//! means adding **one entry here plus its backend**, not editing five
//! match statements. `regless designs` renders the table; DESIGN.md §17
//! documents how to add an entry.

use crate::DesignKind;
use regless_json::{Json, ToJson};

/// How battle-tested a registry entry is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stability {
    /// Calibrated against the paper's figures; safe for headline results.
    Stable,
    /// Modeled from the cited related work but not cross-validated
    /// against its published numbers.
    Experimental,
}

impl Stability {
    /// Lower-case wire/display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Stability::Stable => "stable",
            Stability::Experimental => "experimental",
        }
    }
}

/// One tunable parameter of a design, with its default.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParamSpec {
    /// Parameter name as the CLI/wire spell it.
    pub name: &'static str,
    /// Default value, rendered as text.
    pub default: &'static str,
    /// One-line description.
    pub help: &'static str,
}

/// Tunable parameter values a caller supplies when building a design.
/// Designs ignore parameters they do not declare.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DesignParams {
    /// OSU entries per SM (RegLess designs).
    pub capacity: usize,
    /// Whether the RegLess compressor is present.
    pub compressor: bool,
}

impl Default for DesignParams {
    fn default() -> Self {
        DesignParams {
            capacity: 512,
            compressor: true,
        }
    }
}

/// One registered design: identity, provenance, and a constructor.
pub struct DesignEntry {
    /// Stable string id (`--design <id>`, the wire `design` field).
    pub id: &'static str,
    /// Human display name.
    pub display: &'static str,
    /// Paper citation the model follows.
    pub citation: &'static str,
    /// Stability tier.
    pub stability: Stability,
    /// Tunable parameters this design honors, with defaults.
    pub params: &'static [ParamSpec],
    /// One-line description of the energy-model mapping.
    pub energy_model: &'static str,
    /// Whether `regless serve`/`cluster` can execute this design.
    pub servable: bool,
    build: fn(&DesignParams) -> DesignKind,
}

impl DesignEntry {
    /// Build the [`DesignKind`] this entry names under `params`.
    pub fn build(&self, params: &DesignParams) -> DesignKind {
        (self.build)(params)
    }

    /// The design built with default parameters.
    pub fn default_design(&self) -> DesignKind {
        self.build(&DesignParams::default())
    }
}

/// The capacity/compressor parameters the RegLess designs honor.
const REGLESS_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        name: "capacity",
        default: "512",
        help: "OSU entries per SM",
    },
    ParamSpec {
        name: "compressor",
        default: "true",
        help: "keep the eviction compressor",
    },
];

const REGLESS_NC_PARAMS: &[ParamSpec] = &[ParamSpec {
    name: "capacity",
    default: "512",
    help: "OSU entries per SM",
}];

/// Every registered design, in display order.
static ENTRIES: &[DesignEntry] = &[
    DesignEntry {
        id: "baseline",
        display: "Conventional RF",
        citation: "GTX 980-class baseline (paper \u{a7}6.1)",
        stability: Stability::Stable,
        params: &[],
        energy_model: "full 256 KB RF, crossbar per access",
        servable: true,
        build: |_| DesignKind::Baseline,
    },
    DesignEntry {
        id: "regless",
        display: "RegLess",
        citation: "Kloosterman et al., MICRO 2017",
        stability: Stability::Stable,
        params: REGLESS_PARAMS,
        energy_model: "OSU banks + tags + compressor, no RF",
        servable: true,
        build: |p| {
            if p.compressor {
                DesignKind::RegLess {
                    entries: p.capacity,
                }
            } else {
                DesignKind::RegLessNoCompressor {
                    entries: p.capacity,
                }
            }
        },
    },
    DesignEntry {
        id: "regless-nc",
        display: "RegLess (no compressor)",
        citation: "Kloosterman et al., MICRO 2017 (\u{a7}6.5 ablation)",
        stability: Stability::Stable,
        params: REGLESS_NC_PARAMS,
        energy_model: "OSU banks + tags, no compressor",
        servable: true,
        build: |p| DesignKind::RegLessNoCompressor {
            entries: p.capacity,
        },
    },
    DesignEntry {
        id: "rfh",
        display: "RF hierarchy",
        citation: "Gebhart et al., ISCA 2011",
        stability: Stability::Stable,
        params: &[],
        energy_model: "MRF + LRF/RFC small structures",
        servable: false,
        build: |_| DesignKind::Rfh,
    },
    DesignEntry {
        id: "rfv",
        display: "RF virtualization",
        citation: "Jeon et al., MICRO 2015",
        stability: Stability::Stable,
        params: &[],
        energy_model: "half-size renamed RF + rename table",
        servable: false,
        build: |_| DesignKind::Rfv,
    },
    DesignEntry {
        id: "regdem",
        display: "RegDem spilling",
        citation: "Sakdhnagool et al., arXiv:1907.02894",
        stability: Stability::Experimental,
        params: &[],
        energy_model: "half-size RF + shared-mem spill/fill",
        servable: true,
        build: |_| DesignKind::RegDem,
    },
    DesignEntry {
        id: "compress-rf",
        display: "Compressed RF",
        citation: "Angerd et al., arXiv:2006.05693",
        stability: Stability::Experimental,
        params: &[],
        energy_model: "half-size RF + pattern compressor",
        servable: true,
        build: |_| DesignKind::CompressRf,
    },
];

/// All registered designs, in display order.
pub fn all() -> &'static [DesignEntry] {
    ENTRIES
}

/// All registered ids, in display order.
pub fn ids() -> Vec<&'static str> {
    ENTRIES.iter().map(|e| e.id).collect()
}

/// Look up one entry by id.
pub fn lookup(id: &str) -> Option<&'static DesignEntry> {
    ENTRIES.iter().find(|e| e.id == id)
}

/// Resolve an id to a [`DesignKind`] under `params`.
///
/// # Errors
///
/// Returns a message naming the unknown id and listing every valid id —
/// the text the CLI prints and the serve layer wraps in its structured
/// `unknown_design` error.
pub fn resolve(id: &str, params: &DesignParams) -> Result<DesignKind, String> {
    match lookup(id) {
        Some(entry) => Ok(entry.build(params)),
        None => Err(unknown_design_message(id)),
    }
}

/// The error text for an unrecognized design id: names the id and lists
/// the valid ones.
pub fn unknown_design_message(id: &str) -> String {
    format!("unknown design {id:?}; valid designs: {}", ids().join(", "))
}

/// Render the registry as an aligned plain-text table (the `regless
/// designs` default output; golden-tested).
pub fn render_table() -> String {
    let rows: Vec<Vec<String>> = ENTRIES
        .iter()
        .map(|e| {
            let params = if e.params.is_empty() {
                "-".to_string()
            } else {
                e.params
                    .iter()
                    .map(|p| format!("{}={}", p.name, p.default))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            vec![
                e.id.to_string(),
                e.display.to_string(),
                e.stability.as_str().to_string(),
                params,
                if e.servable { "yes" } else { "no" }.to_string(),
                e.citation.to_string(),
            ]
        })
        .collect();
    crate::format_table(
        &["id", "design", "tier", "defaults", "serve", "citation"],
        &rows,
    )
}

/// Render the registry as JSON (the `regless designs --format json`
/// output; consumed by CI's designs-smoke job).
pub fn render_json() -> Json {
    let designs: Vec<Json> = ENTRIES
        .iter()
        .map(|e| {
            let params: Vec<Json> = e
                .params
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(p.name.to_string())),
                        ("default".into(), Json::Str(p.default.to_string())),
                        ("help".into(), Json::Str(p.help.to_string())),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("id".into(), Json::Str(e.id.to_string())),
                ("display".into(), Json::Str(e.display.to_string())),
                ("citation".into(), Json::Str(e.citation.to_string())),
                (
                    "stability".into(),
                    Json::Str(e.stability.as_str().to_string()),
                ),
                ("params".into(), Json::Arr(params)),
                ("energy_model".into(), Json::Str(e.energy_model.to_string())),
                ("servable".into(), Json::Bool(e.servable)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("count".into(), ToJson::to_json(&(ENTRIES.len() as u64))),
        ("designs".into(), Json::Arr(designs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ids_are_unique_and_lookup_finds_each() {
        let ids = ids();
        for (i, a) in ids.iter().enumerate() {
            for b in &ids[i + 1..] {
                assert_ne!(a, b, "duplicate registry id");
            }
        }
        for id in &ids {
            let entry = lookup(id).expect("registered id resolves");
            assert_eq!(entry.id, *id);
        }
    }

    #[test]
    fn resolve_builds_known_designs_and_names_unknown_ones() {
        let p = DesignParams::default();
        assert_eq!(resolve("baseline", &p), Ok(DesignKind::Baseline));
        assert_eq!(resolve("regless", &p), Ok(DesignKind::regless_512()));
        assert_eq!(
            resolve(
                "regless",
                &DesignParams {
                    compressor: false,
                    ..p
                }
            ),
            Ok(DesignKind::RegLessNoCompressor { entries: 512 })
        );
        assert_eq!(
            resolve("regless-nc", &DesignParams { capacity: 256, ..p }),
            Ok(DesignKind::RegLessNoCompressor { entries: 256 })
        );
        assert_eq!(resolve("regdem", &p), Ok(DesignKind::RegDem));
        assert_eq!(resolve("compress-rf", &p), Ok(DesignKind::CompressRf));
        let err = resolve("frobnicate", &p).unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        for id in ids() {
            assert!(err.contains(id), "error must list {id}: {err}");
        }
        assert!(resolve("", &p).is_err(), "empty id rejected");
    }

    #[test]
    fn default_designs_are_pairwise_distinct() {
        let designs: Vec<DesignKind> = all().iter().map(|e| e.default_design()).collect();
        for (i, a) in designs.iter().enumerate() {
            for b in &designs[i + 1..] {
                assert_ne!(a, b, "two registry ids build the same design");
            }
        }
    }

    #[test]
    fn table_and_json_cover_every_entry() {
        let table = render_table();
        let json_text = render_json().to_string_compact();
        let parsed = regless_json::Json::parse(&json_text).expect("registry JSON parses");
        let count: u64 = regless_json::FromJson::from_json(parsed.field("count").unwrap()).unwrap();
        assert_eq!(count as usize, all().len());
        for e in all() {
            assert!(table.contains(e.id), "table missing {}", e.id);
            assert!(table.contains(e.citation), "table missing citation");
            assert!(json_text.contains(e.id), "json missing {}", e.id);
        }
    }

    proptest! {
        /// `lookup` accepts exactly the registered ids: every registered
        /// id resolves, and arbitrary other strings (including the empty
        /// string) are rejected with a message listing the valid ids.
        #[test]
        fn lookup_rejects_everything_unregistered(seed in 0u64..u64::MAX, len in 0usize..16) {
            // Draw a lowercase/dash string from the seed — the vendored
            // proptest has no regex strategies.
            const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz-";
            let mut s = String::new();
            let mut x = seed;
            for _ in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s.push(ALPHABET[(x >> 33) as usize % ALPHABET.len()] as char);
            }
            match lookup(&s) {
                Some(entry) => prop_assert_eq!(entry.id, s.as_str()),
                None => {
                    let err = resolve(&s, &DesignParams::default()).unwrap_err();
                    prop_assert!(err.contains("valid designs"));
                }
            }
        }

        /// Every registered id round-trips through `resolve` for any
        /// capacity, and the built design maps to an energy design.
        #[test]
        fn resolve_succeeds_for_all_registered_ids(
            idx in 0usize..7,
            capacity in 1usize..4096,
            compressor in any::<bool>(),
        ) {
            let entry = &all()[idx % all().len()];
            let params = DesignParams { capacity, compressor };
            let design = resolve(entry.id, &params).expect("registered id resolves");
            // The energy mapping is total over registry-built designs.
            let _ = design.energy_design();
        }
    }
}
