//! Micro-benches of the RegLess hardware components — the compressor's
//! pattern matchers and the OSU's allocation path — measured with the
//! in-tree timing harness (the build environment cannot fetch criterion).

use regless_bench::timing::bench;
use regless_core::{Compressed, Compressor, Osu};
use regless_isa::{LaneVec, Reg};
use std::hint::black_box;

fn main() {
    let stride = LaneVec::stride(100, 1);
    let mut random = LaneVec::zero();
    for i in 0..32 {
        random.set_lane(i, (i as u32).wrapping_mul(0x9e37_79b9));
    }
    bench("compressor/match_stride", || {
        Compressed::try_compress(black_box(&stride))
    });
    bench("compressor/match_incompressible", || {
        Compressed::try_compress(black_box(&random))
    });
    {
        let mut comp = Compressor::new(12, 64, true);
        bench("compressor/store_load_roundtrip", || {
            comp.store(3, Reg(7), black_box(&stride));
            comp.load(3, Reg(7))
        });
    }
    {
        let mut osu = Osu::new(16);
        let v = LaneVec::splat(1);
        bench("osu/write_erase_cycle", || {
            for w in 0..8usize {
                osu.write(w, Reg(5), black_box(v));
                osu.erase(w, Reg(5));
            }
        });
    }
    {
        let mut osu = Osu::new(4);
        let v = LaneVec::splat(2);
        bench("osu/churn_with_eviction", || {
            for w in 0..16usize {
                osu.write(w, Reg((w % 8) as u16), black_box(v));
                osu.release(w, Reg((w % 8) as u16));
            }
        });
    }
}
