//! Criterion micro-benches of the RegLess hardware components: the
//! compressor's pattern matchers and the OSU's allocation path.

use criterion::{criterion_group, criterion_main, Criterion};
use regless_core::{Compressed, Compressor, Osu};
use regless_isa::{LaneVec, Reg};
use std::hint::black_box;

fn bench_compressor(c: &mut Criterion) {
    let mut group = c.benchmark_group("compressor");
    let stride = LaneVec::stride(100, 1);
    let mut random = LaneVec::zero();
    for i in 0..32 {
        random.set_lane(i, (i as u32).wrapping_mul(0x9e37_79b9));
    }
    group.bench_function("match_stride", |b| {
        b.iter(|| Compressed::try_compress(black_box(&stride)))
    });
    group.bench_function("match_incompressible", |b| {
        b.iter(|| Compressed::try_compress(black_box(&random)))
    });
    group.bench_function("store_load_roundtrip", |b| {
        let mut comp = Compressor::new(12, 64, true);
        b.iter(|| {
            comp.store(3, Reg(7), black_box(&stride));
            comp.load(3, Reg(7))
        })
    });
    group.finish();
}

fn bench_osu(c: &mut Criterion) {
    let mut group = c.benchmark_group("osu");
    group.bench_function("write_erase_cycle", |b| {
        let mut osu = Osu::new(16);
        let v = LaneVec::splat(1);
        b.iter(|| {
            for w in 0..8usize {
                osu.write(w, Reg(5), black_box(v));
                osu.erase(w, Reg(5));
            }
        })
    });
    group.bench_function("churn_with_eviction", |b| {
        let mut osu = Osu::new(4);
        let v = LaneVec::splat(2);
        b.iter(|| {
            for w in 0..16usize {
                osu.write(w, Reg((w % 8) as u16), black_box(v));
                osu.release(w, Reg((w % 8) as u16));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compressor, bench_osu);
criterion_main!(benches);
