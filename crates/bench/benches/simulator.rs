//! End-to-end throughput of the compiler and the simulators on
//! representative kernels, measured with the in-tree timing harness (the
//! build environment cannot fetch criterion). These measure the
//! *reproduction's* own performance (cycles simulated per second),
//! complementing the `fig*`/`table*` binaries that regenerate the paper's
//! results.

use regless_bench::timing::bench;
use regless_compiler::{compile, RegionConfig};
use regless_core::{RegLessConfig, RegLessSim};
use regless_sim::{run_baseline, GpuConfig};
use regless_workloads::rodinia;
use std::hint::black_box;
use std::sync::Arc;

/// A reduced machine so each iteration stays in the millisecond range.
fn bench_gpu() -> GpuConfig {
    GpuConfig {
        num_sms: 1,
        warps_per_sm: 16,
        ..GpuConfig::gtx980()
    }
}

fn main() {
    for name in ["nn", "hotspot", "lud"] {
        let kernel = rodinia::kernel(name);
        bench(&format!("compile/{name}"), || {
            compile(black_box(&kernel), &RegionConfig::default()).unwrap()
        });
    }
    for name in ["nn", "pathfinder"] {
        let kernel = rodinia::kernel(name);
        let compiled = Arc::new(compile(&kernel, &RegionConfig::default()).unwrap());
        bench(&format!("baseline_sim/{name}"), || {
            run_baseline(bench_gpu(), Arc::clone(&compiled)).unwrap()
        });
    }
    let gpu = bench_gpu();
    let cfg = RegLessConfig::paper_default();
    for name in ["nn", "pathfinder"] {
        let kernel = rodinia::kernel(name);
        let compiled = compile(&kernel, &cfg.region_config(&gpu)).unwrap();
        bench(&format!("regless_sim/{name}"), || {
            RegLessSim::new(gpu, cfg, compiled.clone()).run().unwrap()
        });
    }
}
