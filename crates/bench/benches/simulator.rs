//! Criterion benches: end-to-end throughput of the compiler and the three
//! simulators on representative kernels. These measure the *reproduction's*
//! own performance (cycles simulated per second), complementing the
//! `fig*`/`table*` binaries that regenerate the paper's results.

use criterion::{criterion_group, criterion_main, Criterion};
use regless_compiler::{compile, RegionConfig};
use regless_core::{RegLessConfig, RegLessSim};
use regless_sim::{run_baseline, GpuConfig};
use regless_workloads::rodinia;
use std::hint::black_box;
use std::sync::Arc;

/// A reduced machine so each iteration stays in the millisecond range.
fn bench_gpu() -> GpuConfig {
    GpuConfig { num_sms: 1, warps_per_sm: 16, ..GpuConfig::gtx980() }
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for name in ["nn", "hotspot", "lud"] {
        let kernel = rodinia::kernel(name);
        group.bench_function(name, |b| {
            b.iter(|| compile(black_box(&kernel), &RegionConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_sim");
    group.sample_size(10);
    for name in ["nn", "pathfinder"] {
        let kernel = rodinia::kernel(name);
        let compiled = Arc::new(compile(&kernel, &RegionConfig::default()).unwrap());
        group.bench_function(name, |b| {
            b.iter(|| run_baseline(bench_gpu(), Arc::clone(&compiled)).unwrap())
        });
    }
    group.finish();
}

fn bench_regless(c: &mut Criterion) {
    let mut group = c.benchmark_group("regless_sim");
    group.sample_size(10);
    let gpu = bench_gpu();
    let cfg = RegLessConfig::paper_default();
    for name in ["nn", "pathfinder"] {
        let kernel = rodinia::kernel(name);
        let compiled = compile(&kernel, &cfg.region_config(&gpu)).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                RegLessSim::new(gpu, cfg, compiled.clone()).run().unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_baseline, bench_regless);
criterion_main!(benches);
