//! The JSONL request/response protocol.
//!
//! One JSON object per line in each direction. Requests name a kind plus
//! the simulation coordinates; responses echo the request `id` and carry
//! either a kind-specific payload (`"ok": true`) or a structured error
//! (`"ok": false`). The grammar is documented in DESIGN.md §12; this
//! module is the single encoder/decoder both the server and the clients
//! (CLI `submit`, `loadgen`, tests) share.

use regless_json::{FromJson, Json, JsonError, ToJson};
use std::io::{BufRead, Write};

/// Version of the JSONL wire protocol. Cluster workers send it with every
/// `claim`/`result`/`heartbeat`, and the coordinator refuses mismatched
/// workers with a structured [`ErrorCode::VersionMismatch`] — a rolling
/// restart that mixes binaries fails loudly instead of corrupting a sweep.
///
/// v2: cluster request kinds (`claim`, `result`, `heartbeat`), the
/// `worker`/`protocol_version`/`unit`/`report` request fields, and the
/// `uptime_ms`/`protocol_version` stats fields.
pub const PROTOCOL_VERSION: u32 = 2;

/// What a request asks the server to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RequestKind {
    /// Simulate and return the run's deterministic report.
    Run,
    /// Simulate and return the CPI-stack profile.
    Profile,
    /// Simulate and return the dashboard `RunSummary`.
    Report,
    /// Server statistics (handled inline; never queued).
    Stats,
    /// Observability snapshot: metrics, recent log events, and recent
    /// spans (handled inline; never queued). Answered by both `serve`
    /// and the cluster coordinator; rendered by `regless obs`.
    Metrics,
    /// Drain in-flight jobs and stop the server.
    Shutdown,
    /// Cluster: a worker asks the coordinator for its next work unit.
    Claim,
    /// Cluster: a worker delivers one completed unit's `RunReport`.
    Result,
    /// Cluster: a worker proves liveness while it simulates.
    Heartbeat,
}

impl RequestKind {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Run => "run",
            RequestKind::Profile => "profile",
            RequestKind::Report => "report",
            RequestKind::Stats => "stats",
            RequestKind::Metrics => "metrics",
            RequestKind::Shutdown => "shutdown",
            RequestKind::Claim => "claim",
            RequestKind::Result => "result",
            RequestKind::Heartbeat => "heartbeat",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<RequestKind> {
        Some(match s {
            "run" => RequestKind::Run,
            "profile" => RequestKind::Profile,
            "report" => RequestKind::Report,
            "stats" => RequestKind::Stats,
            "metrics" => RequestKind::Metrics,
            "shutdown" => RequestKind::Shutdown,
            "claim" => RequestKind::Claim,
            "result" => RequestKind::Result,
            "heartbeat" => RequestKind::Heartbeat,
            _ => return None,
        })
    }

    /// Whether this kind runs a simulation (and therefore goes through
    /// admission control); `stats` and `shutdown` are control requests.
    pub fn is_simulation(self) -> bool {
        matches!(
            self,
            RequestKind::Run | RequestKind::Profile | RequestKind::Report
        )
    }

    /// Whether this kind belongs to the cluster coordinator/worker RPC
    /// (`regless cluster` / `regless worker`); a plain `regless serve`
    /// endpoint answers these with a structured `bad_request`.
    pub fn is_cluster(self) -> bool {
        matches!(
            self,
            RequestKind::Claim | RequestKind::Result | RequestKind::Heartbeat
        )
    }
}

/// One client request.
#[derive(Clone, PartialEq, Debug)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// What to do.
    pub kind: RequestKind,
    /// Kernel spec for simulation kinds: a benchmark id
    /// (`rodinia/<name>`, `micro/<name>`, `special/high_pressure`), a bare
    /// Rodinia name, or a path to a `.asm` file readable by the server.
    pub kernel: Option<String>,
    /// Storage design: `"regless"` (default) or `"baseline"`.
    pub design: String,
    /// OSU entries per SM for the regless design.
    pub capacity: usize,
    /// Whether the regless design keeps its compressor.
    pub compressor: bool,
    /// Per-request deadline; once it expires the client gets a structured
    /// `timeout` error and the simulation is cooperatively cancelled (when
    /// no other waiter still wants it).
    pub timeout_ms: Option<u64>,
    /// Cluster: the sending worker's name (`claim`/`result`/`heartbeat`).
    pub worker: Option<String>,
    /// Cluster: the sender's [`PROTOCOL_VERSION`]; checked by the
    /// coordinator via [`check_protocol_version`].
    pub protocol_version: Option<u32>,
    /// Cluster: work-unit id a `result` answers (echoed from the `claim`
    /// response that handed the unit out).
    pub unit: Option<u64>,
    /// Cluster: the completed unit's `RunReport` JSON (`result` only).
    pub report: Option<Json>,
    /// Distributed-tracing id (16 hex digits), valid on every kind.
    /// Optional and purely observational: servers that predate it ignore
    /// it, and a traced request's report is byte-identical to an
    /// untraced one (property-tested). Spans recorded under this id come
    /// back in the response's `trace` array.
    pub trace_id: Option<String>,
}

impl Request {
    /// A `run` request for `kernel` with default design options.
    pub fn run(id: u64, kernel: &str) -> Request {
        Request {
            id,
            kind: RequestKind::Run,
            kernel: Some(kernel.to_string()),
            ..Request::control(id, RequestKind::Run)
        }
    }

    /// A bare control request (`stats`, `shutdown`) — also the base for
    /// builders of simulation requests.
    pub fn control(id: u64, kind: RequestKind) -> Request {
        Request {
            id,
            kind,
            kernel: None,
            design: "regless".to_string(),
            capacity: 512,
            compressor: true,
            timeout_ms: None,
            worker: None,
            protocol_version: None,
            unit: None,
            report: None,
            trace_id: None,
        }
    }

    /// A cluster `claim` from `worker`, stamped with this binary's
    /// [`PROTOCOL_VERSION`].
    pub fn claim(id: u64, worker: &str) -> Request {
        Request {
            worker: Some(worker.to_string()),
            protocol_version: Some(PROTOCOL_VERSION),
            ..Request::control(id, RequestKind::Claim)
        }
    }

    /// A cluster `heartbeat` from `worker`.
    pub fn heartbeat(id: u64, worker: &str) -> Request {
        Request {
            kind: RequestKind::Heartbeat,
            ..Request::claim(id, worker)
        }
    }

    /// A cluster `result`: `worker` delivers `report` for work unit
    /// `unit`. The unit's coordinates (kernel/design/capacity/compressor)
    /// are set by the caller from the claim it answers.
    pub fn result(id: u64, worker: &str, unit: u64, report: Json) -> Request {
        Request {
            kind: RequestKind::Result,
            unit: Some(unit),
            report: Some(report),
            ..Request::claim(id, worker)
        }
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), ToJson::to_json(&self.id)),
            (
                "kind".to_string(),
                Json::Str(self.kind.as_str().to_string()),
            ),
        ];
        if let Some(kernel) = &self.kernel {
            fields.push(("kernel".to_string(), Json::Str(kernel.clone())));
        }
        fields.push(("design".to_string(), Json::Str(self.design.clone())));
        fields.push(("capacity".to_string(), ToJson::to_json(&self.capacity)));
        fields.push(("compressor".to_string(), Json::Bool(self.compressor)));
        if let Some(ms) = self.timeout_ms {
            fields.push(("timeout_ms".to_string(), ToJson::to_json(&ms)));
        }
        if let Some(worker) = &self.worker {
            fields.push(("worker".to_string(), Json::Str(worker.clone())));
        }
        if let Some(v) = self.protocol_version {
            fields.push(("protocol_version".to_string(), ToJson::to_json(&v)));
        }
        if let Some(unit) = self.unit {
            fields.push(("unit".to_string(), ToJson::to_json(&unit)));
        }
        if let Some(report) = &self.report {
            fields.push(("report".to_string(), report.clone()));
        }
        if let Some(trace_id) = &self.trace_id {
            fields.push(("trace_id".to_string(), Json::Str(trace_id.clone())));
        }
        Json::Obj(fields)
    }

    /// Parse one wire line. Missing optional fields take their defaults
    /// (`design` regless, `capacity` 512, `compressor` true).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed JSON, a missing/unknown
    /// `kind`, or ill-typed fields.
    pub fn from_json(v: &Json) -> Result<Request, JsonError> {
        let id: u64 = match v.field_opt("id")? {
            Some(f) => FromJson::from_json(f)?,
            None => 0,
        };
        let kind_str: String = FromJson::from_json(v.field("kind")?)?;
        let kind = RequestKind::parse(&kind_str)
            .ok_or_else(|| JsonError::new(format!("unknown request kind {kind_str:?}")))?;
        let kernel = match v.field_opt("kernel")? {
            Some(f) => Some(FromJson::from_json(f)?),
            None => None,
        };
        let design = match v.field_opt("design")? {
            Some(f) => FromJson::from_json(f)?,
            None => "regless".to_string(),
        };
        let capacity = match v.field_opt("capacity")? {
            Some(f) => FromJson::from_json(f)?,
            None => 512,
        };
        let compressor = match v.field_opt("compressor")? {
            Some(f) => FromJson::from_json(f)?,
            None => true,
        };
        let timeout_ms = match v.field_opt("timeout_ms")? {
            Some(f) => Some(FromJson::from_json(f)?),
            None => None,
        };
        let worker = match v.field_opt("worker")? {
            Some(f) => Some(FromJson::from_json(f)?),
            None => None,
        };
        let protocol_version = match v.field_opt("protocol_version")? {
            Some(f) => Some(FromJson::from_json(f)?),
            None => None,
        };
        let unit = match v.field_opt("unit")? {
            Some(f) => Some(FromJson::from_json(f)?),
            None => None,
        };
        let report = v.field_opt("report")?.cloned();
        let trace_id = match v.field_opt("trace_id")? {
            Some(f) => Some(FromJson::from_json(f)?),
            None => None,
        };
        Ok(Request {
            id,
            kind,
            kernel,
            design,
            capacity,
            compressor,
            timeout_ms,
            worker,
            protocol_version,
            unit,
            report,
            trace_id,
        })
    }

    /// Builder-style tracing: stamp a wire-form trace id onto any
    /// request kind.
    #[must_use]
    pub fn with_trace_id(mut self, trace_id: impl Into<String>) -> Request {
        self.trace_id = Some(trace_id.into());
        self
    }
}

/// Reject a cluster request whose sender speaks a different protocol
/// version (or none at all). Called by the coordinator on every
/// `claim`/`result`/`heartbeat` so a mixed-binary cluster fails with a
/// structured `version_mismatch` instead of silently corrupting a sweep.
///
/// # Errors
///
/// Returns a [`ErrorCode::VersionMismatch`] error body naming both
/// versions when they differ, or a missing-version message when the
/// request carries none.
pub fn check_protocol_version(req: &Request) -> Result<(), ErrorBody> {
    match req.protocol_version {
        Some(v) if v == PROTOCOL_VERSION => Ok(()),
        Some(v) => Err(ErrorBody::new(
            ErrorCode::VersionMismatch,
            format!("peer speaks protocol v{v}, this binary speaks v{PROTOCOL_VERSION}"),
        )),
        None => Err(ErrorBody::new(
            ErrorCode::VersionMismatch,
            format!(
                "cluster request carries no protocol_version (this binary speaks \
                 v{PROTOCOL_VERSION})"
            ),
        )),
    }
}

/// Structured error codes a response can carry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// Admission control rejected the request: the job queue is full.
    /// The error body carries a `retry_after_ms` hint.
    QueueFull,
    /// The request's deadline expired; the simulation was cooperatively
    /// cancelled (unless another waiter still wants it).
    Timeout,
    /// The request itself is malformed (unknown kernel/kind …).
    BadRequest,
    /// The request names a design id the registry does not know. The
    /// error message names the id and lists every valid id.
    UnknownDesign,
    /// The simulation panicked; the worker survived via `catch_unwind`.
    SimPanic,
    /// The simulation returned an error (cycle limit, compile failure).
    SimFailed,
    /// The server is draining and no longer admits simulation requests.
    ShuttingDown,
    /// A cluster peer speaks a different [`PROTOCOL_VERSION`]; see
    /// [`check_protocol_version`].
    VersionMismatch,
}

impl ErrorCode {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::Timeout => "timeout",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownDesign => "unknown_design",
            ErrorCode::SimPanic => "sim_panic",
            ErrorCode::SimFailed => "sim_failed",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::VersionMismatch => "version_mismatch",
        }
    }
}

/// The error half of a response.
#[derive(Clone, PartialEq, Debug)]
pub struct ErrorBody {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For `queue_full`: how long the client should wait before retrying.
    pub retry_after_ms: Option<u64>,
}

impl ErrorBody {
    /// An error with no retry hint.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ErrorBody {
        ErrorBody {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "code".to_string(),
                Json::Str(self.code.as_str().to_string()),
            ),
            ("message".to_string(), Json::Str(self.message.clone())),
        ];
        if let Some(ms) = self.retry_after_ms {
            fields.push(("retry_after_ms".to_string(), ToJson::to_json(&ms)));
        }
        Json::Obj(fields)
    }
}

/// One server response: the request id plus either a payload or an error.
#[derive(Clone, PartialEq, Debug)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Kind-specific payload fields (empty object on errors).
    pub payload: Json,
    /// The error, when `ok` is false.
    pub error: Option<ErrorBody>,
}

impl Response {
    /// A success response wrapping `payload` (must be a JSON object; its
    /// fields are flattened beside `id` and `ok` on the wire).
    pub fn success(id: u64, payload: Json) -> Response {
        Response {
            id,
            ok: true,
            payload,
            error: None,
        }
    }

    /// An error response.
    pub fn failure(id: u64, error: ErrorBody) -> Response {
        Response {
            id,
            ok: false,
            payload: Json::Obj(Vec::new()),
            error: Some(error),
        }
    }

    /// The error code string, if this is an error response.
    pub fn error_code(&self) -> Option<&'static str> {
        self.error.as_ref().map(|e| e.code.as_str())
    }

    /// A payload field (`None` on errors or missing fields).
    pub fn payload_field(&self, name: &str) -> Option<&Json> {
        self.payload.field_opt(name).ok().flatten()
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), ToJson::to_json(&self.id)),
            ("ok".to_string(), Json::Bool(self.ok)),
        ];
        if let Json::Obj(payload) = &self.payload {
            fields.extend(payload.iter().cloned());
        }
        if let Some(e) = &self.error {
            fields.push(("error".to_string(), e.to_json()));
        }
        Json::Obj(fields)
    }

    /// Parse one wire line back into a response. Unknown payload fields
    /// are preserved in `payload`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed JSON or a malformed error
    /// body.
    pub fn from_json(v: &Json) -> Result<Response, JsonError> {
        let id: u64 = match v.field_opt("id")? {
            Some(f) => FromJson::from_json(f)?,
            None => 0,
        };
        let ok: bool = FromJson::from_json(v.field("ok")?)?;
        let mut payload = Vec::new();
        let mut error = None;
        if let Json::Obj(pairs) = v {
            for (k, val) in pairs {
                match k.as_str() {
                    "id" | "ok" => {}
                    "error" => {
                        let code_str: String = FromJson::from_json(val.field("code")?)?;
                        let code = match code_str.as_str() {
                            "queue_full" => ErrorCode::QueueFull,
                            "timeout" => ErrorCode::Timeout,
                            "bad_request" => ErrorCode::BadRequest,
                            "unknown_design" => ErrorCode::UnknownDesign,
                            "sim_panic" => ErrorCode::SimPanic,
                            "sim_failed" => ErrorCode::SimFailed,
                            "shutting_down" => ErrorCode::ShuttingDown,
                            "version_mismatch" => ErrorCode::VersionMismatch,
                            other => {
                                return Err(JsonError::new(format!("unknown error code {other:?}")))
                            }
                        };
                        let message: String = FromJson::from_json(val.field("message")?)?;
                        let retry_after_ms = match val.field_opt("retry_after_ms")? {
                            Some(f) => Some(FromJson::from_json(f)?),
                            None => None,
                        };
                        error = Some(ErrorBody {
                            code,
                            message,
                            retry_after_ms,
                        });
                    }
                    _ => payload.push((k.clone(), val.clone())),
                }
            }
        }
        Ok(Response {
            id,
            ok,
            payload: Json::Obj(payload),
            error,
        })
    }
}

/// Read one JSONL message from `reader`: `Ok(None)` at end-of-stream,
/// otherwise the parsed line. Empty lines are skipped (a tolerant framing
/// for hand-driven `nc` sessions).
///
/// # Errors
///
/// Returns an I/O error from the underlying reader, or `InvalidData` for
/// a line that is not valid JSON.
pub fn read_json_line(reader: &mut impl BufRead) -> std::io::Result<Option<Json>> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue;
        }
        return Json::parse(&line)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.message));
    }
}

/// Write one JSONL message (compact JSON + newline) and flush it.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_json_line(writer: &mut impl Write, json: &Json) -> std::io::Result<()> {
    writer.write_all(json.to_string_compact().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_with_defaults() {
        let r = Request::run(7, "rodinia/nn");
        let parsed = Request::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);

        // A minimal wire request takes the documented defaults.
        let minimal = Json::parse(r#"{"kind":"run","kernel":"rodinia/nn"}"#).unwrap();
        let parsed = Request::from_json(&minimal).unwrap();
        assert_eq!(parsed.id, 0);
        assert_eq!(parsed.design, "regless");
        assert_eq!(parsed.capacity, 512);
        assert!(parsed.compressor);
        assert_eq!(parsed.timeout_ms, None);
    }

    #[test]
    fn trace_id_roundtrips_and_stays_off_the_wire_when_absent() {
        // Untraced requests serialize without the field at all — the
        // wire bytes are identical to a pre-tracing binary's.
        let plain = Request::run(7, "rodinia/nn");
        assert!(
            !plain.to_json().to_string_compact().contains("trace_id"),
            "untraced request must not mention trace_id"
        );

        let traced = Request::run(7, "rodinia/nn").with_trace_id("00000000deadbeef");
        let wire = traced.to_json().to_string_compact();
        assert!(wire.contains(r#""trace_id":"00000000deadbeef""#), "{wire}");
        let parsed = Request::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(parsed, traced);
        assert_eq!(parsed.trace_id.as_deref(), Some("00000000deadbeef"));

        // Tracing composes with every builder, cluster kinds included.
        let claim = Request::claim(1, "w0").with_trace_id("ff");
        let parsed = Request::from_json(&claim.to_json()).unwrap();
        assert_eq!(parsed.trace_id.as_deref(), Some("ff"));
    }

    #[test]
    fn unknown_optional_fields_are_ignored_by_older_parsers() {
        // Forward compatibility: a newer client may stamp optional
        // fields this binary has never heard of (as this PR did with
        // `trace_id`). `from_json` must parse the known subset and
        // silently drop the rest — that is why tracing shipped without
        // a PROTOCOL_VERSION bump.
        let futuristic = Json::parse(
            r#"{"id":5,"kind":"run","kernel":"rodinia/nn",
                "trace_id":"abc","span_parent":"0011223344556677",
                "deadline_unix_ms":99,"priority":"high",
                "baggage":{"tenant":"ci"}}"#,
        )
        .unwrap();
        let parsed = Request::from_json(&futuristic).expect("unknown fields ignored");
        assert_eq!(parsed.id, 5);
        assert_eq!(parsed.kind, RequestKind::Run);
        assert_eq!(parsed.kernel.as_deref(), Some("rodinia/nn"));
        // Known optional field is picked up...
        assert_eq!(parsed.trace_id.as_deref(), Some("abc"));
        // ...and re-serializing keeps only the known fields: the parse
        // is a projection, not an error.
        let wire = parsed.to_json().to_string_compact();
        assert!(!wire.contains("span_parent"), "{wire}");
        assert!(!wire.contains("baggage"), "{wire}");
    }

    #[test]
    fn metrics_kind_is_a_control_request() {
        assert_eq!(RequestKind::parse("metrics"), Some(RequestKind::Metrics));
        assert_eq!(RequestKind::Metrics.as_str(), "metrics");
        assert!(!RequestKind::Metrics.is_simulation());
        assert!(!RequestKind::Metrics.is_cluster());
        let req = Request::control(4, RequestKind::Metrics);
        assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let bad = Json::parse(r#"{"kind":"frobnicate"}"#).unwrap();
        assert!(Request::from_json(&bad).is_err());
    }

    #[test]
    fn error_response_roundtrips_with_retry_hint() {
        let r = Response::failure(
            3,
            ErrorBody {
                code: ErrorCode::QueueFull,
                message: "queue full (8 jobs)".to_string(),
                retry_after_ms: Some(250),
            },
        );
        let wire = r.to_json().to_string_compact();
        assert!(wire.contains(r#""code":"queue_full""#), "{wire}");
        assert!(wire.contains(r#""retry_after_ms":250"#), "{wire}");
        let parsed = Response::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.error_code(), Some("queue_full"));
    }

    #[test]
    fn success_payload_fields_flatten_and_recover() {
        let payload = Json::Obj(vec![
            ("kind".to_string(), Json::Str("run".to_string())),
            ("cycles".to_string(), Json::Int(42)),
        ]);
        let r = Response::success(9, payload);
        let wire = r.to_json().to_string_compact();
        assert!(
            wire.starts_with(r#"{"id":9,"ok":true,"kind":"run""#),
            "{wire}"
        );
        let parsed = Response::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(parsed.payload_field("cycles"), Some(&Json::Int(42)));
        assert_eq!(parsed.error, None);
    }

    #[test]
    fn cluster_requests_roundtrip_with_worker_fields() {
        let claim = Request::claim(11, "w0");
        assert_eq!(claim.kind, RequestKind::Claim);
        assert!(claim.kind.is_cluster());
        assert!(!claim.kind.is_simulation());
        assert_eq!(claim.protocol_version, Some(PROTOCOL_VERSION));
        let parsed = Request::from_json(&claim.to_json()).unwrap();
        assert_eq!(parsed, claim);

        let hb = Request::heartbeat(12, "w0");
        assert_eq!(hb.kind, RequestKind::Heartbeat);
        assert_eq!(Request::from_json(&hb.to_json()).unwrap(), hb);

        let report = Json::Obj(vec![("cycles".to_string(), Json::Int(99))]);
        let mut result = Request::result(13, "w1", 7, report.clone());
        result.kernel = Some("rodinia/nn".to_string());
        result.design = "baseline".to_string();
        let wire = result.to_json().to_string_compact();
        assert!(wire.contains(r#""kind":"result""#), "{wire}");
        assert!(wire.contains(r#""worker":"w1""#), "{wire}");
        assert!(wire.contains(r#""unit":7"#), "{wire}");
        let parsed = Request::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(parsed, result);
        assert_eq!(parsed.report, Some(report));
    }

    #[test]
    fn version_mismatch_is_a_structured_error() {
        // A matching version passes.
        assert!(check_protocol_version(&Request::claim(1, "w")).is_ok());

        // A different version is refused with both versions named.
        let mut old = Request::claim(2, "w");
        old.protocol_version = Some(PROTOCOL_VERSION + 1);
        let err = check_protocol_version(&old).unwrap_err();
        assert_eq!(err.code, ErrorCode::VersionMismatch);
        assert!(err.message.contains(&format!("v{PROTOCOL_VERSION}")));
        assert!(err.message.contains(&format!("v{}", PROTOCOL_VERSION + 1)));

        // A missing version is refused too (pre-cluster binaries).
        let mut missing = Request::claim(3, "w");
        missing.protocol_version = None;
        let err = check_protocol_version(&missing).unwrap_err();
        assert_eq!(err.code, ErrorCode::VersionMismatch);

        // And the error round-trips the wire as `version_mismatch`.
        let resp = Response::failure(3, err);
        let wire = resp.to_json().to_string_compact();
        assert!(wire.contains(r#""code":"version_mismatch""#), "{wire}");
        let parsed = Response::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(parsed.error_code(), Some("version_mismatch"));
    }

    #[test]
    fn unknown_design_is_a_structured_error() {
        // Registry satellite: an unrecognized design id comes back as a
        // structured `unknown_design` error that names the offending id
        // and lists the valid ones — and the code round-trips the wire.
        let err = ErrorBody::new(
            ErrorCode::UnknownDesign,
            "unknown design \"frobnicate\"; valid designs: baseline, regless",
        );
        assert_eq!(ErrorCode::UnknownDesign.as_str(), "unknown_design");
        let resp = Response::failure(21, err);
        let wire = resp.to_json().to_string_compact();
        assert!(wire.contains(r#""code":"unknown_design""#), "{wire}");
        assert!(wire.contains("frobnicate"), "{wire}");
        assert!(wire.contains("valid designs"), "{wire}");
        let parsed = Response::from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(parsed.error_code(), Some("unknown_design"));
        assert_eq!(parsed, resp);
    }

    #[test]
    fn jsonl_framing_skips_blank_lines_and_detects_eof() {
        let text = "\n{\"kind\":\"stats\"}\n\n{\"kind\":\"shutdown\"}\n";
        let mut reader = std::io::BufReader::new(text.as_bytes());
        let a = read_json_line(&mut reader).unwrap().unwrap();
        assert_eq!(a.field("kind").unwrap(), &Json::Str("stats".to_string()));
        let b = read_json_line(&mut reader).unwrap().unwrap();
        assert_eq!(b.field("kind").unwrap(), &Json::Str("shutdown".to_string()));
        assert!(read_json_line(&mut reader).unwrap().is_none());
    }
}
