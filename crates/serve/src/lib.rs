//! `regless-serve` — a resident simulation service with admission control.
//!
//! Every other entry point in this workspace (the `regless` CLI verbs,
//! `all_experiments`, the sweep engine) is a one-shot process: each caller
//! pays process startup, and nothing bounds concurrent load. This crate is
//! the long-lived serving layer the ROADMAP's "heavy traffic" north star
//! asks for, and it applies the paper's own just-in-time admission idea
//! one level up: exactly as the capacity manager admits a warp only once
//! its operands are staged and capacity is reserved (PAPER.md §4), the
//! server admits a simulation request only while worker and queue capacity
//! exist — a full queue answers a structured `queue_full` error with a
//! retry-after hint instead of hanging the client.
//!
//! The moving pieces (see DESIGN.md §12 for the full contract):
//!
//! - **Protocol** ([`proto`]): JSONL over TCP via `std::net` — one JSON
//!   request object per line, one JSON response object per line, no
//!   external dependencies.
//! - **Admission** ([`server`]): a bounded job queue; rejection is
//!   explicit and structured, never silent blocking.
//! - **Worker pool**: `cores − 1` threads by default, each running jobs
//!   under `catch_unwind` so one malformed kernel cannot take the server
//!   down.
//! - **Coalescing**: identical in-flight requests (same kernel, design,
//!   capacity, compressor) share one simulation through the sweep
//!   engine's canonical run variants, and benchmark-id results persist to
//!   the shared on-disk cache so later requests — and independent CLI
//!   sweeps — replay instead of re-simulating.
//! - **Cancellation**: each job carries a [`regless_sim::CancelToken`]
//!   threaded into the simulator's tick loop; when the last waiter's
//!   deadline expires the token trips and the simulation returns at the
//!   next cycle boundary, so timeouts free the worker instead of
//!   orphaning it.
//! - **Shutdown**: a `shutdown` request drains queued jobs, then the
//!   process exits; cache writes are atomic (temp file + rename), so even
//!   an unclean death never leaves a torn cache entry.
//!
//! # Quickstart
//!
//! ```no_run
//! use regless_serve::{Client, Request, ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(regless_bench::sweep::SweepEngine::from_env());
//! let handle = Server::start(ServeConfig::default(), engine)?;
//! let mut client = Client::connect(&handle.addr().to_string())?;
//! let resp = client.request(&Request::run(1, "rodinia/nn"))?;
//! assert!(resp.ok);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{backoff_delay, Client, RetryOutcome, RetryPolicy};
pub use proto::{
    check_protocol_version, read_json_line, ErrorBody, ErrorCode, Request, RequestKind, Response,
    PROTOCOL_VERSION,
};
pub use server::{DesignSpec, ServeConfig, Server, ServerHandle};

/// Default listen address when none is given (`regless serve` /
/// `regless submit` agree on it).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7117";
