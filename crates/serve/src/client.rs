//! A minimal blocking client for the JSONL protocol.
//!
//! Used by `regless submit`, the load generator, and the tests. One
//! request in flight at a time per connection; the server answers in
//! order, so a plain write-then-read suffices.

use crate::proto::{read_json_line, write_json_line, Request, Response};
use regless_json::Json;
use std::io::BufReader;
use std::net::TcpStream;

/// One connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. [`crate::DEFAULT_ADDR`]).
    ///
    /// # Errors
    ///
    /// Returns the connect error when no server is listening.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request and block for its response.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on a broken connection, `UnexpectedEof` when
    /// the server hangs up mid-request, or `InvalidData` for an
    /// unparseable response line.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        let json = self.raw(&req.to_json())?;
        Response::from_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.message))
    }

    /// Send a raw JSON line and read back one JSON line — the escape
    /// hatch the load generator uses to measure pure protocol overhead.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::request`].
    pub fn raw(&mut self, json: &Json) -> std::io::Result<Json> {
        write_json_line(&mut self.writer, json)?;
        read_json_line(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }
}
