//! A minimal blocking client for the JSONL protocol.
//!
//! Used by `regless submit`, the load generator, and the tests. One
//! request in flight at a time per connection; the server answers in
//! order, so a plain write-then-read suffices.

use crate::proto::{read_json_line, write_json_line, ErrorCode, Request, Response};
use regless_json::Json;
use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;

/// Bounded backoff-and-retry policy for `queue_full` rejections. The
/// server's `retry_after_ms` hint (its observed mean request latency) is
/// the base delay; each retry doubles it, a deterministic per-attempt
/// jitter de-synchronizes clients that were rejected together, and the
/// delay is capped so a pathological hint cannot stall a client forever.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries before giving up and returning the `queue_full` response.
    pub max_retries: u32,
    /// Base delay when the server sent no hint.
    pub default_backoff_ms: u64,
    /// Upper bound on any single delay.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            default_backoff_ms: 100,
            max_backoff_ms: 5_000,
        }
    }
}

/// A [`Client::request_with_retry`] outcome: the final response plus how
/// many `queue_full` retries it took (0 = first attempt succeeded).
#[derive(Debug)]
pub struct RetryOutcome {
    /// The last response received (success, or the final rejection once
    /// retries are exhausted).
    pub response: Response,
    /// `queue_full` retries performed.
    pub retries: u32,
}

/// Delay before retry number `attempt` (0-based): exponential backoff on
/// the server's hint with a deterministic jitter derived from `seed`.
/// Pure so the policy is unit-testable without a server.
pub fn backoff_delay(
    attempt: u32,
    hint_ms: Option<u64>,
    policy: &RetryPolicy,
    seed: u64,
) -> Duration {
    let base = hint_ms.unwrap_or(policy.default_backoff_ms).max(1);
    let scaled = base.saturating_mul(1u64 << attempt.min(16));
    // Up to +50% jitter, deterministic in (seed, attempt) so tests can
    // pin it while concurrent clients (distinct seeds) still spread out.
    let jitter = splitmix64(seed ^ u64::from(attempt)) % (scaled / 2 + 1);
    Duration::from_millis(scaled.saturating_add(jitter).min(policy.max_backoff_ms))
}

/// SplitMix64 — a tiny, dependency-free mixer for retry jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. [`crate::DEFAULT_ADDR`]).
    ///
    /// # Errors
    ///
    /// Returns the connect error when no server is listening.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Requests that span TCP segments (a result request carries a
        // whole RunReport) otherwise stall ~40 ms per exchange on the
        // Nagle/delayed-ACK interaction; this is a request-response
        // protocol, so coalescing buys nothing.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request and block for its response.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on a broken connection, `UnexpectedEof` when
    /// the server hangs up mid-request, or `InvalidData` for an
    /// unparseable response line.
    pub fn request(&mut self, req: &Request) -> std::io::Result<Response> {
        let json = self.raw(&req.to_json())?;
        Response::from_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.message))
    }

    /// [`Client::request`], but honoring the server's `retry_after_ms`
    /// hint on `queue_full`: back off (with jitter) and retry up to the
    /// policy's bound instead of surfacing the rejection. Any other
    /// response — success or error — returns immediately.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::request`].
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
    ) -> std::io::Result<RetryOutcome> {
        let seed = req.id ^ u64::from(std::process::id());
        let mut retries = 0u32;
        loop {
            let response = self.request(req)?;
            let queue_full = response
                .error
                .as_ref()
                .is_some_and(|e| e.code == ErrorCode::QueueFull);
            if !queue_full || retries >= policy.max_retries {
                return Ok(RetryOutcome { response, retries });
            }
            let hint = response.error.as_ref().and_then(|e| e.retry_after_ms);
            std::thread::sleep(backoff_delay(retries, hint, policy, seed));
            retries += 1;
        }
    }

    /// Send a raw JSON line and read back one JSON line — the escape
    /// hatch the load generator uses to measure pure protocol overhead.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::request`].
    pub fn raw(&mut self, json: &Json) -> std::io::Result<Json> {
        write_json_line(&mut self.writer, json)?;
        read_json_line(&mut self.reader)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_from_the_hint() {
        let policy = RetryPolicy {
            max_retries: 8,
            default_backoff_ms: 100,
            max_backoff_ms: 60_000,
        };
        // With a hint of 10ms, retry n waits at least 10 * 2^n ms.
        for attempt in 0..5 {
            let d = backoff_delay(attempt, Some(10), &policy, 7);
            let floor = 10u64 << attempt;
            assert!(d.as_millis() as u64 >= floor, "attempt {attempt}: {d:?}");
            // Jitter adds at most 50%.
            assert!(d.as_millis() as u64 <= floor + floor / 2);
        }
    }

    #[test]
    fn backoff_uses_default_when_no_hint_and_respects_the_cap() {
        let policy = RetryPolicy {
            max_retries: 8,
            default_backoff_ms: 25,
            max_backoff_ms: 200,
        };
        let d0 = backoff_delay(0, None, &policy, 1);
        assert!(d0.as_millis() as u64 >= 25);
        // A huge attempt number would overflow the cap many times over;
        // the delay must still be clamped.
        let d = backoff_delay(30, None, &policy, 1);
        assert_eq!(d.as_millis() as u64, 200);
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let a = backoff_delay(2, Some(50), &policy, 42);
        let b = backoff_delay(2, Some(50), &policy, 42);
        assert_eq!(a, b);
        // Distinct seeds should (for these particular values) spread out.
        let c = backoff_delay(2, Some(50), &policy, 43);
        assert_ne!(a, c, "expected different jitter for different seeds");
    }
}
