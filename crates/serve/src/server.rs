//! The server: admission control, request coalescing, a cancellable
//! worker pool, and graceful drain.
//!
//! One thread accepts connections and spawns a thread per client; each
//! client thread parses JSONL requests and either answers inline
//! (`stats`, `shutdown`, cache hits, rejections) or enqueues a job and
//! blocks on its completion. A fixed worker pool pops jobs, runs the
//! simulator under `catch_unwind` with a [`CancelToken`] threaded into
//! the tick loop, and publishes the result to every waiter at once.

use crate::proto::{
    read_json_line, write_json_line, ErrorBody, ErrorCode, Request, RequestKind, Response,
};
use regless_baselines::{CompressRfBackend, RegDemBackend};
use regless_bench::profile::ProfileReport;
use regless_bench::report::collect as report_collect;
use regless_bench::sweep::{bench_kernel, rodinia_id, RunVariant, SweepEngine};
use regless_bench::{eval_gpu, DesignKind};
use regless_compiler::compile;
use regless_core::{RegLessConfig, RegLessSim};
use regless_isa::text::parse_kernel;
use regless_isa::Kernel;
use regless_json::{Json, ToJson};
use regless_sim::{BaselineRf, CancelToken, GpuConfig, Machine, RunReport, SimError};
use regless_telemetry::obs::{
    epoch_us, format_trace_id, parse_trace_id, EventLog, LogLevel, MetricsSnapshot, Span,
    DEFAULT_LOG_CAPACITY,
};
use regless_telemetry::Log2Histogram;
use regless_workloads::rodinia;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; use port 0 for an ephemeral port (tests, CI).
    pub addr: String,
    /// Worker threads; 0 means `available_parallelism() - 1` (min 1).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before admission control
    /// answers `queue_full`.
    pub queue_capacity: usize,
    /// How long [`ServerHandle::drain`] waits for in-flight jobs before
    /// giving up.
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: crate::DEFAULT_ADDR.to_string(),
            workers: 0,
            queue_capacity: 64,
            drain_timeout: Duration::from_secs(30),
        }
    }
}

/// The storage designs the server runs: every registry entry whose
/// simulator accepts a [`CancelToken`]. The `rfh`/`rfv` runners have no
/// cancellation hook, and a job that cannot be cancelled would defeat
/// the deadline contract — they are registered but not servable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DesignSpec {
    /// Full register file, GTO scheduler.
    Baseline,
    /// RegLess operand staging.
    Regless {
        /// OSU entries per SM.
        capacity: usize,
        /// Compressor present.
        compressor: bool,
    },
    /// RegDem-style compiler-directed spilling to shared memory.
    RegDem,
    /// Statically-compressed half-size register file.
    CompressRf,
}

impl DesignSpec {
    /// Resolve a request's design fields against the design registry.
    ///
    /// # Errors
    ///
    /// Returns a `bad_request` [`ErrorBody`] for registered designs the
    /// server cannot cancel (`rfh`/`rfv`), and an `unknown_design` one —
    /// naming the id and listing every valid id — for ids the registry
    /// has never heard of.
    pub fn from_request(req: &Request) -> Result<DesignSpec, ErrorBody> {
        match req.design.as_str() {
            "baseline" => Ok(DesignSpec::Baseline),
            "regless" => Ok(DesignSpec::Regless {
                capacity: req.capacity,
                compressor: req.compressor,
            }),
            "regless-nc" => Ok(DesignSpec::Regless {
                capacity: req.capacity,
                compressor: false,
            }),
            "regdem" => Ok(DesignSpec::RegDem),
            "compress-rf" => Ok(DesignSpec::CompressRf),
            other => match regless_bench::registry::lookup(other) {
                Some(_) => Err(ErrorBody::new(
                    ErrorCode::BadRequest,
                    format!("design {other:?} is registered but not servable (its runner has no cancellation hook)"),
                )),
                None => Err(ErrorBody::new(
                    ErrorCode::UnknownDesign,
                    regless_bench::registry::unknown_design_message(other),
                )),
            },
        }
    }

    /// The sweep-engine variant this design caches under.
    fn variant(self) -> RunVariant {
        RunVariant::Design(match self {
            DesignSpec::Baseline => DesignKind::Baseline,
            DesignSpec::Regless {
                capacity,
                compressor: true,
            } => DesignKind::RegLess { entries: capacity },
            DesignSpec::Regless {
                capacity,
                compressor: false,
            } => DesignKind::RegLessNoCompressor { entries: capacity },
            DesignSpec::RegDem => DesignKind::RegDem,
            DesignSpec::CompressRf => DesignKind::CompressRf,
        })
    }

    /// The design label used in profile/report payloads (matches the CLI's
    /// `--design` strings).
    fn label(self) -> &'static str {
        match self {
            DesignSpec::Baseline => "baseline",
            DesignSpec::Regless { .. } => "regless",
            DesignSpec::RegDem => "regdem",
            DesignSpec::CompressRf => "compress-rf",
        }
    }

    /// The OSU capacity the CPI profile records (0 for designs without an
    /// OSU, mirroring the CLI).
    fn osu_capacity(self) -> usize {
        match self {
            DesignSpec::Baseline | DesignSpec::RegDem | DesignSpec::CompressRf => 0,
            DesignSpec::Regless { capacity, .. } => capacity,
        }
    }
}

/// What makes two requests "the same simulation": the resolved kernel
/// plus the design point. The request *kind* is deliberately excluded —
/// `run`, `profile`, and `report` all derive from one [`RunReport`], so a
/// profile request coalesces with an in-flight run of the same work.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct JobKey {
    kernel: String,
    design: DesignSpec,
}

/// One admitted simulation, shared by every coalesced waiter.
struct Job {
    key: JobKey,
    /// `Some` when the kernel is a built-in benchmark id — those results
    /// are deterministic functions of the id and persist to the sweep
    /// cache. `.asm` files stay uncached (their content is not keyed).
    bench_id: Option<String>,
    kernel: Kernel,
    /// Deadline-free token: waiters each enforce their own deadline, and
    /// only the *last* abandoning waiter cancels the simulation (an early
    /// short deadline must not kill work a patient waiter still wants).
    token: CancelToken,
    waiters: AtomicUsize,
    result: Mutex<Option<Result<Arc<RunReport>, ErrorBody>>>,
    done: Condvar,
    /// Tracing timestamps (epoch µs), written unconditionally — three
    /// relaxed stores per job, never read by the simulation. `enqueued_us`
    /// is set at admission; workers stamp the other two, and traced
    /// waiters turn the three into `queue` and `sim` spans.
    enqueued_us: u64,
    picked_us: AtomicU64,
    sim_done_us: AtomicU64,
}

/// The process label serve's spans and log events carry.
const OBS_PROCESS: &str = "serve";

/// Trace context for one traced request: the parsed id plus the spans
/// collected on its behalf, returned in-band in the success payload.
struct TraceCtx {
    id: u64,
    spans: Vec<Span>,
}

/// Monotone counters exposed by `stats`.
#[derive(Default)]
struct ServeCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_queue_full: AtomicU64,
    coalesce_hits: AtomicU64,
    cache_hits: AtomicU64,
    simulations: AtomicU64,
    timeouts: AtomicU64,
    cancelled: AtomicU64,
    panics: AtomicU64,
    sim_errors: AtomicU64,
    /// Gauge: jobs admitted but not yet finished (queued + running).
    in_flight: AtomicU64,
}

/// Request-latency histograms, one per simulation kind (milliseconds).
#[derive(Default)]
struct LatencyHists {
    run: Log2Histogram,
    profile: Log2Histogram,
    report: Log2Histogram,
}

struct QueueState {
    jobs: VecDeque<Arc<Job>>,
    /// Once closed no job is ever pushed again; workers drain what is
    /// left and exit.
    closed: bool,
}

/// State shared by the accept thread, client threads, and workers.
struct Shared {
    config: ServeConfig,
    engine: Arc<SweepEngine>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    /// In-flight jobs by key, for coalescing. A job is removed the moment
    /// its result is published, so late arrivals hit the sweep cache
    /// instead.
    pending: Mutex<HashMap<JobKey, Arc<Job>>>,
    counters: ServeCounters,
    latency: Mutex<LatencyHists>,
    /// Set by a `shutdown` request (or [`ServerHandle::shutdown`]): new
    /// simulation requests are refused; control requests still answer.
    shutdown: AtomicBool,
    stop: Mutex<bool>,
    stop_cv: Condvar,
    /// Set by [`ServerHandle::drain`] right before the wake-up connection:
    /// only then does the accept thread exit. During the drain window
    /// itself, new connections still get structured `shutting_down`
    /// answers instead of a hangup.
    accept_closed: AtomicBool,
    live_workers: Mutex<usize>,
    workers_cv: Condvar,
    /// When the server started, for the `stats` uptime field — cluster
    /// coordinators health-check serve endpoints with it. Monotonic by
    /// construction (`Instant`), so a wall-clock step never yields a
    /// negative or absurd uptime.
    started: Instant,
    /// Bounded structured event log (queue_full, panics, drain), served
    /// by the `metrics` request and tailed by `regless obs --tail`.
    log: EventLog,
}

impl Shared {
    fn stats_json(&self) -> Json {
        let c = &self.counters;
        let load = |a: &AtomicU64| ToJson::to_json(&a.load(Ordering::Relaxed));
        let queue_depth = self.queue.lock().expect("queue poisoned").jobs.len();
        let hist_json = |h: &Log2Histogram| {
            Json::Obj(vec![
                ("count".to_string(), ToJson::to_json(&h.count())),
                ("mean_ms".to_string(), Json::Float(h.mean())),
                ("p50_ms".to_string(), ToJson::to_json(&h.percentile(50.0))),
                ("p99_ms".to_string(), ToJson::to_json(&h.percentile(99.0))),
                ("max_ms".to_string(), ToJson::to_json(&h.max())),
            ])
        };
        let latency = {
            let l = self.latency.lock().expect("latency poisoned");
            Json::Obj(vec![
                ("run".to_string(), hist_json(&l.run)),
                ("profile".to_string(), hist_json(&l.profile)),
                ("report".to_string(), hist_json(&l.report)),
            ])
        };
        let uptime_ms = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        Json::Obj(vec![
            ("kind".to_string(), Json::Str("stats".to_string())),
            ("uptime_ms".to_string(), ToJson::to_json(&uptime_ms)),
            (
                "protocol_version".to_string(),
                ToJson::to_json(&crate::proto::PROTOCOL_VERSION),
            ),
            ("queue_depth".to_string(), ToJson::to_json(&queue_depth)),
            ("in_flight".to_string(), load(&c.in_flight)),
            (
                "queue_capacity".to_string(),
                ToJson::to_json(&self.config.queue_capacity),
            ),
            ("submitted".to_string(), load(&c.submitted)),
            ("completed".to_string(), load(&c.completed)),
            (
                "rejected_queue_full".to_string(),
                load(&c.rejected_queue_full),
            ),
            ("coalesce_hits".to_string(), load(&c.coalesce_hits)),
            ("cache_hits".to_string(), load(&c.cache_hits)),
            ("simulations".to_string(), load(&c.simulations)),
            ("timeouts".to_string(), load(&c.timeouts)),
            ("cancelled".to_string(), load(&c.cancelled)),
            ("panics".to_string(), load(&c.panics)),
            ("sim_errors".to_string(), load(&c.sim_errors)),
            (
                "draining".to_string(),
                Json::Bool(self.shutdown.load(Ordering::Acquire)),
            ),
            (
                "cache_fingerprint".to_string(),
                Json::Str(SweepEngine::fingerprint()),
            ),
            ("latency".to_string(), latency),
        ])
    }

    /// Retry-after hint for `queue_full`: roughly one mean request
    /// latency, clamped to a sane band; 250 ms before any data exists.
    fn retry_after_ms(&self) -> u64 {
        let l = self.latency.lock().expect("latency poisoned");
        let mut merged = l.run.clone();
        merged.merge(&l.profile);
        merged.merge(&l.report);
        if merged.count() == 0 {
            250
        } else {
            (merged.mean() as u64).clamp(50, 5_000)
        }
    }

    fn request_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::AcqRel) {
            self.log
                .log(LogLevel::Info, OBS_PROCESS, "drain requested", None, &[]);
        }
        let mut stopped = self.stop.lock().expect("stop poisoned");
        *stopped = true;
        self.stop_cv.notify_all();
    }

    /// The `metrics` response payload: a [`MetricsSnapshot`] of every
    /// serve counter/gauge/latency histogram plus the retained event log.
    fn metrics_json(&self) -> Json {
        let c = &self.counters;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut snap = MetricsSnapshot::new(OBS_PROCESS);
        snap.counter(
            "regless_serve_submitted_total",
            "Simulation requests received",
            load(&c.submitted),
        );
        snap.counter(
            "regless_serve_completed_total",
            "Simulation requests answered successfully",
            load(&c.completed),
        );
        snap.counter(
            "regless_serve_rejected_queue_full_total",
            "Requests refused by admission control",
            load(&c.rejected_queue_full),
        );
        snap.counter(
            "regless_serve_coalesce_hits_total",
            "Requests coalesced onto an in-flight job",
            load(&c.coalesce_hits),
        );
        snap.counter(
            "regless_serve_cache_hits_total",
            "Requests answered from the sweep cache",
            load(&c.cache_hits),
        );
        snap.counter(
            "regless_serve_simulations_total",
            "Simulations actually executed",
            load(&c.simulations),
        );
        snap.counter(
            "regless_serve_timeouts_total",
            "Requests whose deadline expired",
            load(&c.timeouts),
        );
        snap.counter(
            "regless_serve_cancelled_total",
            "Simulations cancelled cooperatively",
            load(&c.cancelled),
        );
        snap.counter(
            "regless_serve_panics_total",
            "Simulation panics isolated by catch_unwind",
            load(&c.panics),
        );
        snap.counter(
            "regless_serve_sim_errors_total",
            "Simulations that returned an error",
            load(&c.sim_errors),
        );
        snap.gauge(
            "regless_serve_in_flight",
            "Jobs admitted but not yet finished",
            load(&c.in_flight) as f64,
        );
        snap.gauge(
            "regless_serve_queue_depth",
            "Jobs queued and not yet running",
            self.queue.lock().expect("queue poisoned").jobs.len() as f64,
        );
        snap.gauge(
            "regless_serve_queue_capacity",
            "Admission-control queue bound",
            self.config.queue_capacity as f64,
        );
        snap.gauge(
            "regless_serve_uptime_seconds",
            "Seconds since the server started (monotonic clock)",
            self.started.elapsed().as_secs_f64(),
        );
        snap.counter(
            "regless_serve_log_dropped_total",
            "Log events evicted from the bounded ring before export",
            self.log.dropped(),
        );
        // Host-side self-profile of the shared sweep engine (empty, and
        // free, unless REGLESS_SELFPROF is set).
        self.engine.self_profiler().fold_into(&mut snap, "sweep");
        {
            let l = self.latency.lock().expect("latency poisoned");
            snap.summary(
                "regless_serve_run_latency_ms",
                "run request latency in milliseconds",
                &l.run,
            );
            snap.summary(
                "regless_serve_profile_latency_ms",
                "profile request latency in milliseconds",
                &l.profile,
            );
            snap.summary(
                "regless_serve_report_latency_ms",
                "report request latency in milliseconds",
                &l.report,
            );
        }
        let log = self
            .log
            .snapshot_since(None)
            .iter()
            .map(|e| e.to_json())
            .collect();
        Json::Obj(vec![
            ("kind".to_string(), Json::Str("metrics".to_string())),
            ("metrics".to_string(), snap.to_json()),
            ("log".to_string(), Json::Arr(log)),
            ("log_total".to_string(), ToJson::to_json(&self.log.total())),
        ])
    }
}

/// Namespace for [`Server::start`].
pub struct Server;

/// A running server: its bound address plus the handles needed to drain
/// it. Dropping the handle without calling [`ServerHandle::drain`] leaves
/// the threads running for the life of the process.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and the accept thread, and return a
    /// handle. The engine is shared so server results land in the same
    /// memo table and disk cache the CLI and experiment binaries use.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(config: ServeConfig, engine: Arc<SweepEngine>) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get().saturating_sub(1))
                .unwrap_or(1)
                .max(1)
        };
        let shared = Arc::new(Shared {
            config,
            engine,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            queue_cv: Condvar::new(),
            pending: Mutex::new(HashMap::new()),
            counters: ServeCounters::default(),
            latency: Mutex::new(LatencyHists::default()),
            shutdown: AtomicBool::new(false),
            stop: Mutex::new(false),
            stop_cv: Condvar::new(),
            accept_closed: AtomicBool::new(false),
            live_workers: Mutex::new(workers),
            workers_cv: Condvar::new(),
            started: Instant::now(),
            log: EventLog::new(DEFAULT_LOG_CAPACITY),
        });
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("regless-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("regless-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers: worker_handles,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server statistics (same shape as a `stats`
    /// response payload).
    pub fn stats_json(&self) -> Json {
        self.shared.stats_json()
    }

    /// Ask the server to stop, exactly as a `shutdown` request would.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until a `shutdown` request arrives (or [`Self::shutdown`] is
    /// called from another thread).
    pub fn wait_for_shutdown(&self) {
        let mut stopped = self.shared.stop.lock().expect("stop poisoned");
        while !*stopped {
            stopped = self.shared.stop_cv.wait(stopped).expect("stop cv poisoned");
        }
    }

    /// Drain: refuse new work, let workers finish queued and running
    /// jobs, then join every thread.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the number of still-live workers if they do not
    /// finish within the configured drain timeout — the CI smoke test
    /// turns that into a non-zero exit.
    pub fn drain(mut self) -> Result<(), usize> {
        self.shared.request_shutdown();
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.closed = true;
            self.shared.queue_cv.notify_all();
        }
        let deadline = self.shared.config.drain_timeout;
        let (live, timed_out) = {
            let guard = self.shared.live_workers.lock().expect("workers poisoned");
            let (guard, res) = self
                .shared
                .workers_cv
                .wait_timeout_while(guard, deadline, |n| *n > 0)
                .expect("workers cv poisoned");
            (*guard, res.timed_out())
        };
        if timed_out && live > 0 {
            return Err(live);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // The accept thread is parked in `accept`; a throwaway connection
        // wakes it so it can observe the closed flag and exit.
        self.shared.accept_closed.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        Ok(())
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.accept_closed.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Request-response protocol: Nagle coalescing only adds latency
        // (multi-segment responses stall on the client's delayed ACK).
        let _ = stream.set_nodelay(true);
        let shared = Arc::clone(shared);
        // Connection threads are detached: they die with their client (or
        // with the process after drain).
        let _ = std::thread::Builder::new()
            .name("regless-conn".to_string())
            .spawn(move || connection_loop(stream, &shared));
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        let json = match read_json_line(&mut reader) {
            Ok(Some(v)) => v,
            Ok(None) | Err(_) => return,
        };
        // Echo the id even when the request itself fails to parse.
        let id = json
            .field_opt("id")
            .ok()
            .flatten()
            .and_then(|v| regless_json::FromJson::from_json(v).ok())
            .unwrap_or(0u64);
        let response = match Request::from_json(&json) {
            Ok(req) => handle_request(shared, &req),
            Err(e) => Response::failure(id, ErrorBody::new(ErrorCode::BadRequest, e.message)),
        };
        if write_json_line(&mut writer, &response.to_json()).is_err() {
            return;
        }
    }
}

/// Resolve a request's kernel spec: built-in benchmark ids (cacheable)
/// first, then bare Rodinia names, then `.asm` files (uncacheable — the
/// cache is keyed by id, not content).
fn resolve_kernel(spec: &str) -> Result<(Kernel, Option<String>), ErrorBody> {
    if let Some(kernel) = bench_kernel(spec) {
        return Ok((kernel, Some(spec.to_string())));
    }
    if rodinia::NAMES.contains(&spec) {
        let id = rodinia_id(spec);
        let kernel = bench_kernel(&id).expect("rodinia names resolve");
        return Ok((kernel, Some(id)));
    }
    if std::path::Path::new(spec).exists() {
        let text = std::fs::read_to_string(spec)
            .map_err(|e| ErrorBody::new(ErrorCode::BadRequest, format!("read {spec:?}: {e}")))?;
        let kernel = parse_kernel(&text)
            .map_err(|e| ErrorBody::new(ErrorCode::BadRequest, format!("parse {spec:?}: {e}")))?;
        return Ok((kernel, None));
    }
    Err(ErrorBody::new(
        ErrorCode::BadRequest,
        format!("{spec:?} is neither a benchmark id nor a readable .asm file"),
    ))
}

fn handle_request(shared: &Arc<Shared>, req: &Request) -> Response {
    match req.kind {
        RequestKind::Stats => Response::success(req.id, shared.stats_json()),
        RequestKind::Metrics => Response::success(req.id, shared.metrics_json()),
        RequestKind::Shutdown => {
            shared.request_shutdown();
            Response::success(
                req.id,
                Json::Obj(vec![("draining".to_string(), Json::Bool(true))]),
            )
        }
        RequestKind::Run | RequestKind::Profile | RequestKind::Report => {
            handle_simulation(shared, req)
        }
        RequestKind::Claim | RequestKind::Result | RequestKind::Heartbeat => Response::failure(
            req.id,
            ErrorBody::new(
                ErrorCode::BadRequest,
                format!(
                    "{:?} is a cluster RPC; this is a serve endpoint — connect the worker \
                     to a `regless cluster` coordinator instead",
                    req.kind.as_str()
                ),
            ),
        ),
    }
}

fn handle_simulation(shared: &Arc<Shared>, req: &Request) -> Response {
    shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
    if shared.shutdown.load(Ordering::Acquire) {
        return Response::failure(
            req.id,
            ErrorBody::new(ErrorCode::ShuttingDown, "server is draining"),
        );
    }
    let design = match DesignSpec::from_request(req) {
        Ok(d) => d,
        Err(e) => return Response::failure(req.id, e),
    };
    let Some(spec) = req.kernel.as_deref() else {
        return Response::failure(
            req.id,
            ErrorBody::new(ErrorCode::BadRequest, "missing `kernel`"),
        );
    };
    // Trace context, when the client stamped a parseable trace_id. All
    // span bookkeeping is gated on it: untraced requests take the exact
    // pre-tracing path (and traced ones only ever read wall clocks the
    // simulation never sees).
    let mut trace = req
        .trace_id
        .as_deref()
        .and_then(parse_trace_id)
        .map(|id| TraceCtx {
            id,
            spans: Vec::new(),
        });
    let t_entry = if trace.is_some() { epoch_us() } else { 0 };
    let (kernel, bench_id) = match resolve_kernel(spec) {
        Ok(r) => r,
        Err(e) => return Response::failure(req.id, e),
    };
    if let Some(t) = trace.as_mut() {
        t.spans.push(Span::new(
            t.id,
            "admission",
            OBS_PROCESS,
            t_entry,
            epoch_us().saturating_sub(t_entry),
        ));
    }
    let started = Instant::now();

    // Fast path: a benchmark already in the shared cache never queues.
    if let Some(bench) = &bench_id {
        let t_cache = if trace.is_some() { epoch_us() } else { 0 };
        let hit = shared.engine.lookup(bench, design.variant());
        if let Some(t) = trace.as_mut() {
            t.spans.push(
                Span::new(
                    t.id,
                    "cache",
                    OBS_PROCESS,
                    t_cache,
                    epoch_us().saturating_sub(t_cache),
                )
                .arg("hit", if hit.is_some() { "true" } else { "false" }),
            );
        }
        if let Some(report) = hit {
            shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            return finish_ok(
                shared, req, design, &kernel, &report, "cache", started, trace,
            );
        }
    }

    let job = match admit(shared, req, design, bench_id, kernel) {
        Ok(job) => job,
        Err(e) => return Response::failure(req.id, e),
    };
    let coalesced = job.1;
    let source = if coalesced { "coalesced" } else { "simulated" };
    let job = job.0;
    if let Some(t) = trace.as_mut() {
        if coalesced {
            t.spans
                .push(Span::new(t.id, "coalesce", OBS_PROCESS, epoch_us(), 0));
        }
    }

    // Wait for the worker (or an already-published result), enforcing
    // this waiter's own deadline.
    let deadline = req.timeout_ms.map(Duration::from_millis);
    let mut result = job.result.lock().expect("job result poisoned");
    loop {
        if let Some(outcome) = result.as_ref() {
            let outcome = outcome.clone();
            drop(result);
            job.waiters.fetch_sub(1, Ordering::AcqRel);
            if let Some(t) = trace.as_mut() {
                // The job's stamps cover the *shared* simulation this
                // waiter rode, whether it admitted the job or coalesced.
                let picked = job.picked_us.load(Ordering::Acquire);
                let sim_done = job.sim_done_us.load(Ordering::Acquire);
                if picked >= job.enqueued_us && picked > 0 {
                    t.spans.push(Span::new(
                        t.id,
                        "queue",
                        OBS_PROCESS,
                        job.enqueued_us,
                        picked - job.enqueued_us,
                    ));
                }
                if picked > 0 && sim_done >= picked {
                    t.spans.push(
                        Span::new(t.id, "sim", OBS_PROCESS, picked, sim_done - picked)
                            .arg("source", source),
                    );
                }
            }
            return match outcome {
                Ok(report) => finish_ok(
                    shared,
                    req,
                    design,
                    &job.kernel,
                    &report,
                    source,
                    started,
                    trace,
                ),
                Err(e) => Response::failure(req.id, e),
            };
        }
        match deadline {
            Some(limit) => {
                let elapsed = started.elapsed();
                if elapsed >= limit {
                    drop(result);
                    return abandon(shared, req, &job, elapsed);
                }
                let (guard, _) = job
                    .done
                    .wait_timeout(result, limit - elapsed)
                    .expect("job cv poisoned");
                result = guard;
            }
            None => {
                result = job.done.wait(result).expect("job cv poisoned");
            }
        }
    }
}

/// Coalesce onto an in-flight job or admit a new one through the bounded
/// queue. The boolean is true when the request coalesced.
#[allow(clippy::type_complexity)]
fn admit(
    shared: &Arc<Shared>,
    req: &Request,
    design: DesignSpec,
    bench_id: Option<String>,
    kernel: Kernel,
) -> Result<(Arc<Job>, bool), ErrorBody> {
    let key = JobKey {
        kernel: bench_id.clone().unwrap_or_else(|| {
            req.kernel
                .clone()
                .expect("simulation requests have kernels")
        }),
        design,
    };
    let mut pending = shared.pending.lock().expect("pending poisoned");
    if let Some(job) = pending.get(&key) {
        job.waiters.fetch_add(1, Ordering::AcqRel);
        shared
            .counters
            .coalesce_hits
            .fetch_add(1, Ordering::Relaxed);
        return Ok((Arc::clone(job), true));
    }
    // Admission control: the queue bound is checked under the pending
    // lock so coalescing and rejection cannot race each other.
    let mut queue = shared.queue.lock().expect("queue poisoned");
    if queue.closed {
        return Err(ErrorBody::new(
            ErrorCode::ShuttingDown,
            "server is draining",
        ));
    }
    if queue.jobs.len() >= shared.config.queue_capacity {
        shared
            .counters
            .rejected_queue_full
            .fetch_add(1, Ordering::Relaxed);
        shared.log.log(
            LogLevel::Warn,
            OBS_PROCESS,
            "queue_full: request rejected by admission control",
            req.trace_id.as_deref().and_then(parse_trace_id),
            &[
                ("queued", queue.jobs.len().to_string()),
                ("capacity", shared.config.queue_capacity.to_string()),
                ("kernel", key.kernel.clone()),
            ],
        );
        let mut e = ErrorBody::new(
            ErrorCode::QueueFull,
            format!(
                "queue full ({} jobs queued, capacity {})",
                queue.jobs.len(),
                shared.config.queue_capacity
            ),
        );
        e.retry_after_ms = Some(shared.retry_after_ms());
        return Err(e);
    }
    let job = Arc::new(Job {
        key: key.clone(),
        bench_id,
        kernel,
        token: CancelToken::new(),
        waiters: AtomicUsize::new(1),
        result: Mutex::new(None),
        done: Condvar::new(),
        enqueued_us: epoch_us(),
        picked_us: AtomicU64::new(0),
        sim_done_us: AtomicU64::new(0),
    });
    queue.jobs.push_back(Arc::clone(&job));
    shared.counters.in_flight.fetch_add(1, Ordering::Relaxed);
    shared.queue_cv.notify_one();
    drop(queue);
    pending.insert(key, Arc::clone(&job));
    Ok((job, false))
}

/// This waiter's deadline expired. The *last* waiter to abandon a job
/// cancels its token, so the simulation stops at the next cycle boundary
/// instead of burning a worker for a result nobody wants.
fn abandon(shared: &Arc<Shared>, req: &Request, job: &Arc<Job>, elapsed: Duration) -> Response {
    shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
    if job.waiters.fetch_sub(1, Ordering::AcqRel) == 1 {
        job.token.cancel();
    }
    Response::failure(
        req.id,
        ErrorBody::new(
            ErrorCode::Timeout,
            format!(
                "deadline of {} ms exceeded after {} ms; simulation cancelled cooperatively",
                req.timeout_ms.unwrap_or(0),
                elapsed.as_millis()
            ),
        ),
    )
}

/// Render a successful result for the request's kind and record latency.
/// A traced request gets a `serialize` span covering the payload render,
/// then its whole span collection back as the `trace` payload field —
/// appended *after* the report so the report bytes are untouched.
#[allow(clippy::too_many_arguments)]
fn finish_ok(
    shared: &Arc<Shared>,
    req: &Request,
    design: DesignSpec,
    kernel: &Kernel,
    report: &Arc<RunReport>,
    source: &str,
    started: Instant,
    trace: Option<TraceCtx>,
) -> Response {
    let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    {
        let mut l = shared.latency.lock().expect("latency poisoned");
        match req.kind {
            RequestKind::Run => l.run.record(elapsed_ms),
            RequestKind::Profile => l.profile.record(elapsed_ms),
            _ => l.report.record(elapsed_ms),
        }
    }
    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
    let t_serialize = if trace.is_some() { epoch_us() } else { 0 };
    let mut payload = vec![
        ("kind".to_string(), Json::Str(req.kind.as_str().to_string())),
        ("kernel".to_string(), Json::Str(kernel.name().to_string())),
        ("design".to_string(), Json::Str(design.label().to_string())),
        ("source".to_string(), Json::Str(source.to_string())),
        ("cycles".to_string(), ToJson::to_json(&report.cycles)),
        ("ipc".to_string(), Json::Float(report.ipc())),
    ];
    match req.kind {
        RequestKind::Run => {
            payload.push(("report".to_string(), report.stable_json()));
        }
        RequestKind::Profile => {
            let profile = ProfileReport::collect(
                report,
                kernel.name(),
                design.label(),
                design.osu_capacity(),
            );
            payload.push(("profile".to_string(), profile.to_json()));
        }
        _ => {
            let full = report_collect(report, kernel.name(), design.label(), design.osu_capacity());
            payload.push(("summary".to_string(), full.summary().to_json()));
        }
    }
    if let Some(mut t) = trace {
        t.spans.push(Span::new(
            t.id,
            "serialize",
            OBS_PROCESS,
            t_serialize,
            epoch_us().saturating_sub(t_serialize),
        ));
        payload.push(("trace_id".to_string(), Json::Str(format_trace_id(t.id))));
        payload.push((
            "trace".to_string(),
            Json::Arr(t.spans.iter().map(Span::to_json).collect()),
        ));
    }
    Response::success(req.id, Json::Obj(payload))
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.closed {
                    break None;
                }
                queue = shared.queue_cv.wait(queue).expect("queue cv poisoned");
            }
        };
        let Some(job) = job else { break };
        run_job(shared, &job);
    }
    let mut live = shared.live_workers.lock().expect("workers poisoned");
    *live -= 1;
    shared.workers_cv.notify_all();
}

fn run_job(shared: &Arc<Shared>, job: &Arc<Job>) {
    job.picked_us.store(epoch_us(), Ordering::Release);
    // Every waiter already gave up and tripped the token: skip the
    // simulation entirely.
    let outcome = if job.token.is_cancelled() && job.waiters.load(Ordering::Acquire) == 0 {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        Err(ErrorBody::new(
            ErrorCode::Timeout,
            "cancelled before execution",
        ))
    } else {
        shared.counters.simulations.fetch_add(1, Ordering::Relaxed);
        match catch_unwind(AssertUnwindSafe(|| execute(job))) {
            Ok(Ok(report)) => {
                let report = Arc::new(report);
                if let Some(bench) = &job.bench_id {
                    shared
                        .engine
                        .insert(bench, job.key.design.variant(), Arc::clone(&report));
                }
                Ok(report)
            }
            Ok(Err(e)) => {
                match e.code {
                    ErrorCode::Timeout => {
                        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        shared.counters.sim_errors.fetch_add(1, Ordering::Relaxed);
                        shared.log.log(
                            LogLevel::Error,
                            OBS_PROCESS,
                            format!("simulation failed: {}", e.message),
                            None,
                            &[("kernel", job.key.kernel.clone())],
                        );
                    }
                };
                Err(e)
            }
            Err(panic) => {
                shared.counters.panics.fetch_add(1, Ordering::Relaxed);
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                shared.log.log(
                    LogLevel::Error,
                    OBS_PROCESS,
                    format!("simulation panicked (worker survived): {msg}"),
                    None,
                    &[("kernel", job.key.kernel.clone())],
                );
                Err(ErrorBody::new(
                    ErrorCode::SimPanic,
                    format!("simulation panicked: {msg}"),
                ))
            }
        }
    };
    job.sim_done_us.store(epoch_us(), Ordering::Release);
    // Publish: remove from pending first so new arrivals go through the
    // cache (populated above) rather than coalescing onto a dead job.
    shared
        .pending
        .lock()
        .expect("pending poisoned")
        .remove(&job.key);
    {
        let mut result = job.result.lock().expect("job result poisoned");
        *result = Some(outcome);
        job.done.notify_all();
    }
    shared.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
}

/// Compile and run one job's simulation with its token threaded into the
/// tick loop.
fn execute(job: &Arc<Job>) -> Result<RunReport, ErrorBody> {
    let gpu = eval_gpu();
    let map_sim = |e: SimError| match e {
        SimError::Cancelled { at_cycle } => ErrorBody::new(
            ErrorCode::Timeout,
            format!("simulation cancelled cooperatively at cycle {at_cycle}"),
        ),
        other => ErrorBody::new(ErrorCode::SimFailed, other.to_string()),
    };
    match job.key.design {
        DesignSpec::Baseline => {
            let compiled = compile(&job.kernel, &regless_compiler::RegionConfig::default())
                .map_err(|e| ErrorBody::new(ErrorCode::SimFailed, format!("compile: {e}")))?;
            let mut machine = Machine::new(gpu, Arc::new(compiled), |_| BaselineRf::new());
            machine.set_cancel_token(job.token.clone());
            machine.run().map_err(map_sim)
        }
        DesignSpec::Regless {
            capacity,
            compressor,
        } => {
            let cfg = RegLessConfig {
                compressor_enabled: compressor,
                ..RegLessConfig::with_capacity(capacity)
            };
            let compiled = compile(&job.kernel, &cfg.region_config(&gpu))
                .map_err(|e| ErrorBody::new(ErrorCode::SimFailed, format!("compile: {e}")))?;
            let mut sim = RegLessSim::new(gpu, cfg, compiled);
            sim.set_cancel_token(job.token.clone());
            sim.run().map_err(map_sim)
        }
        DesignSpec::RegDem => {
            let compiled = compile(&job.kernel, &regless_compiler::RegionConfig::default())
                .map_err(|e| ErrorBody::new(ErrorCode::SimFailed, format!("compile: {e}")))?;
            let compiled = Arc::new(compiled);
            let mut machine = Machine::new(gpu, Arc::clone(&compiled), |_| {
                RegDemBackend::new(&gpu, Arc::clone(&compiled))
            });
            machine.set_cancel_token(job.token.clone());
            machine.run().map_err(map_sim)
        }
        DesignSpec::CompressRf => {
            let compiled = compile(&job.kernel, &regless_compiler::RegionConfig::default())
                .map_err(|e| ErrorBody::new(ErrorCode::SimFailed, format!("compile: {e}")))?;
            let gpu = GpuConfig {
                scheduler: CompressRfBackend::scheduler(),
                ..gpu
            };
            let compiled = Arc::new(compiled);
            let mut machine = Machine::new(gpu, Arc::clone(&compiled), |_| {
                CompressRfBackend::new(&gpu, Arc::clone(&compiled))
            });
            machine.set_cancel_token(job.token.clone());
            machine.run().map_err(map_sim)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use regless_bench::sweep::SweepMode;

    fn test_server(workers: usize, queue_capacity: usize) -> ServerHandle {
        let engine = Arc::new(SweepEngine::with_config(None, SweepMode::Normal));
        Server::start(
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers,
                queue_capacity,
                drain_timeout: Duration::from_secs(20),
            },
            engine,
        )
        .expect("start server")
    }

    #[test]
    fn run_profile_and_report_round_trip_one_simulation() {
        let handle = test_server(2, 8);
        let addr = handle.addr().to_string();
        let mut client = Client::connect(&addr).unwrap();

        let run = client.request(&Request::run(1, "rodinia/nn")).unwrap();
        assert!(run.ok, "{run:?}");
        assert_eq!(
            run.payload_field("source"),
            Some(&Json::Str("simulated".to_string()))
        );
        assert!(run.payload_field("report").is_some());

        // Same work, different kind: served from the shared cache.
        let mut profile_req = Request::run(2, "rodinia/nn");
        profile_req.kind = RequestKind::Profile;
        let profile = client.request(&profile_req).unwrap();
        assert!(profile.ok, "{profile:?}");
        assert_eq!(
            profile.payload_field("source"),
            Some(&Json::Str("cache".to_string()))
        );
        assert!(profile.payload_field("profile").is_some());

        let mut report_req = Request::run(3, "nn"); // bare name aliases the id
        report_req.kind = RequestKind::Report;
        let report = client.request(&report_req).unwrap();
        assert!(report.ok, "{report:?}");
        assert!(report.payload_field("summary").is_some());

        let stats = client
            .request(&Request::control(4, RequestKind::Stats))
            .unwrap();
        assert!(stats.ok);
        assert_eq!(stats.payload_field("simulations"), Some(&Json::Int(1)));
        assert_eq!(stats.payload_field("cache_hits"), Some(&Json::Int(2)));
        assert_eq!(
            stats.payload_field("protocol_version"),
            Some(&Json::Int(i64::from(crate::proto::PROTOCOL_VERSION)))
        );
        assert!(
            matches!(stats.payload_field("uptime_ms"), Some(Json::Int(ms)) if *ms >= 0),
            "{stats:?}"
        );

        let bye = client
            .request(&Request::control(5, RequestKind::Shutdown))
            .unwrap();
        assert!(bye.ok);
        handle.drain().expect("drain");
    }

    #[test]
    fn bad_requests_get_structured_errors() {
        let handle = test_server(1, 4);
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();

        let r = client.request(&Request::run(1, "no/such_bench")).unwrap();
        assert_eq!(r.error_code(), Some("bad_request"), "{r:?}");

        let mut rfh = Request::run(2, "rodinia/nn");
        rfh.design = "rfh".to_string();
        let r = client.request(&rfh).unwrap();
        assert_eq!(r.error_code(), Some("bad_request"), "{r:?}");

        // Unregistered ids get the structured `unknown_design` error that
        // names the offender and lists every valid id.
        let mut bogus = Request::run(5, "rodinia/nn");
        bogus.design = "no-such-design".to_string();
        let r = client.request(&bogus).unwrap();
        assert_eq!(r.error_code(), Some("unknown_design"), "{r:?}");
        let msg = r
            .error
            .as_ref()
            .map(|e| e.message.clone())
            .unwrap_or_default();
        assert!(msg.contains("no-such-design"), "{msg}");
        assert!(
            msg.contains("regdem") && msg.contains("compress-rf"),
            "{msg}"
        );

        let mut no_kernel = Request::control(3, RequestKind::Run);
        no_kernel.kernel = None;
        let r = client.request(&no_kernel).unwrap();
        assert_eq!(r.error_code(), Some("bad_request"), "{r:?}");

        // Cluster RPCs are refused here: this endpoint is not a coordinator.
        let r = client.request(&Request::claim(4, "w0")).unwrap();
        assert_eq!(r.error_code(), Some("bad_request"), "{r:?}");

        handle.shutdown();
        handle.drain().expect("drain");
    }

    #[test]
    fn related_work_designs_are_servable() {
        let handle = test_server(2, 8);
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        for (id, design) in [(1u64, "regdem"), (2, "compress-rf")] {
            let mut req = Request::run(id, "rodinia/nn");
            req.design = design.to_string();
            let r = client.request(&req).unwrap();
            assert!(r.ok, "{design}: {r:?}");
            assert_eq!(
                r.payload_field("design"),
                Some(&Json::Str(design.to_string()))
            );
            assert!(r.payload_field("report").is_some(), "{design}");
        }
        handle.shutdown();
        handle.drain().expect("drain");
    }

    #[test]
    fn traced_requests_return_spans_and_untraced_reports_are_byte_identical() {
        // Two fresh servers, same kernel: one request traced, one not.
        // The *reports* must be byte-identical — tracing is pure overlay.
        let traced_handle = test_server(1, 4);
        let plain_handle = test_server(1, 4);
        let mut traced_client = Client::connect(&traced_handle.addr().to_string()).unwrap();
        let mut plain_client = Client::connect(&plain_handle.addr().to_string()).unwrap();

        let traced_req = Request::run(1, "rodinia/nn").with_trace_id("00000000000abc12");
        let traced = traced_client.request(&traced_req).unwrap();
        assert!(traced.ok, "{traced:?}");
        let plain = plain_client
            .request(&Request::run(1, "rodinia/nn"))
            .unwrap();
        assert!(plain.ok, "{plain:?}");

        assert_eq!(
            traced.payload_field("report").unwrap().to_string_compact(),
            plain.payload_field("report").unwrap().to_string_compact(),
            "tracing must not perturb the report"
        );

        // The traced response carries spans covering the whole pipeline.
        assert_eq!(
            traced.payload_field("trace_id"),
            Some(&Json::Str("00000000000abc12".to_string()))
        );
        let Some(Json::Arr(spans)) = traced.payload_field("trace") else {
            panic!("traced response carries a trace array: {traced:?}");
        };
        let parsed: Vec<regless_telemetry::Span> = spans
            .iter()
            .map(|s| regless_telemetry::Span::from_json(s).expect("span parses"))
            .collect();
        let names: Vec<&str> = parsed.iter().map(|s| s.name.as_str()).collect();
        for expected in ["admission", "cache", "queue", "sim", "serialize"] {
            assert!(
                names.contains(&expected),
                "missing span {expected}: {names:?}"
            );
        }
        assert!(
            parsed.iter().all(|s| s.trace_id == 0xabc12),
            "one trace id joins every span"
        );
        assert!(
            parsed.iter().all(|s| s.process == "serve"),
            "serve-side spans carry the serve process label"
        );

        // The untraced response has no trace fields at all.
        assert_eq!(plain.payload_field("trace"), None);
        assert_eq!(plain.payload_field("trace_id"), None);

        traced_handle.shutdown();
        plain_handle.shutdown();
        traced_handle.drain().expect("drain");
        plain_handle.drain().expect("drain");
    }

    #[test]
    fn metrics_request_exposes_counters_log_and_valid_prometheus() {
        let handle = test_server(1, 4);
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        let run = client.request(&Request::run(1, "rodinia/nn")).unwrap();
        assert!(run.ok, "{run:?}");

        let resp = client
            .request(&Request::control(2, RequestKind::Metrics))
            .unwrap();
        assert!(resp.ok, "{resp:?}");
        let snap = MetricsSnapshot::from_json(resp.payload_field("metrics").unwrap())
            .expect("metrics parse");
        assert_eq!(snap.process, "serve");
        let submitted = snap
            .metrics
            .iter()
            .find(|m| m.name == "regless_serve_submitted_total")
            .expect("submitted counter present");
        assert!(
            matches!(submitted.value, regless_telemetry::MetricValue::Counter(n) if n >= 1),
            "{submitted:?}"
        );

        // The exposition round-trips the line-format validity check.
        let prom = snap.render_prom();
        let samples = regless_telemetry::check_prom_format(&prom).expect("valid prom");
        assert!(samples >= snap.metrics.len(), "{prom}");

        // Drain shows up in the structured log.
        handle.shutdown();
        let resp = client
            .request(&Request::control(3, RequestKind::Metrics))
            .unwrap();
        let Some(Json::Arr(log)) = resp.payload_field("log") else {
            panic!("metrics payload carries a log array: {resp:?}");
        };
        let events: Vec<regless_telemetry::LogEvent> = log
            .iter()
            .map(|e| regless_telemetry::LogEvent::from_json(e).expect("log event parses"))
            .collect();
        assert!(
            events.iter().any(|e| e.message.contains("drain")),
            "{events:?}"
        );
        handle.drain().expect("drain");
    }

    #[test]
    fn drain_refuses_new_simulations_but_answers_stats() {
        let handle = test_server(1, 4);
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        handle.shutdown();
        let r = client.request(&Request::run(1, "rodinia/nn")).unwrap();
        assert_eq!(r.error_code(), Some("shutting_down"), "{r:?}");
        let stats = client
            .request(&Request::control(2, RequestKind::Stats))
            .unwrap();
        assert!(stats.ok);
        assert_eq!(stats.payload_field("draining"), Some(&Json::Bool(true)));
        handle.drain().expect("drain");
    }
}
