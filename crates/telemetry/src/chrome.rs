//! Chrome trace-event export (loadable in `chrome://tracing` / Perfetto).
//!
//! The export follows the JSON-object form of the trace-event format:
//! `{"traceEvents": [...]}` with one Chrome *process* per SM and one
//! *thread* per lane (warps first, then the shared structures), so a run
//! renders as one swim-lane per warp plus per-structure tracks. Cycles are
//! written through as microsecond timestamps — 1 cycle = 1 µs keeps the
//! viewer's zoom arithmetic intuitive.

use crate::event::{ArgValue, Phase};
use crate::recorder::Telemetry;
use regless_json::Json;

fn arg_json(v: &ArgValue) -> Json {
    match v {
        ArgValue::Int(i) => Json::Int(*i),
        ArgValue::Float(f) => Json::Float(*f),
        ArgValue::Str(s) => Json::Str(s.clone()),
    }
}

/// Build the trace-event JSON document for a run's telemetry.
///
/// Events are sorted by `(pid, tid, ts)` with begin-before-end stability at
/// equal timestamps preserved from recording order, so each track's
/// timestamps are monotone — a property the golden tests assert.
pub fn chrome_trace(t: &Telemetry) -> Json {
    let mut records: Vec<Json> = Vec::new();

    // Metadata: name the processes (SMs) and threads (lanes) that appear.
    let mut tracks: Vec<_> = t.events.iter().map(|e| e.track).collect();
    tracks.sort();
    tracks.dedup();
    let mut groups: Vec<u16> = tracks.iter().map(|tr| tr.group).collect();
    groups.dedup();
    for g in groups {
        records.push(Json::Obj(vec![
            ("name".into(), Json::Str("process_name".into())),
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::Int(i64::from(g))),
            ("tid".into(), Json::Int(0)),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::Str(format!("SM {g}")))]),
            ),
        ]));
    }
    for tr in &tracks {
        records.push(Json::Obj(vec![
            ("name".into(), Json::Str("thread_name".into())),
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::Int(i64::from(tr.group))),
            ("tid".into(), Json::Int(tr.lane.tid() as i64)),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::Str(tr.lane.label()))]),
            ),
        ]));
    }

    // Real events, sorted per track (stable: preserves begin/end order at
    // equal timestamps).
    let mut order: Vec<usize> = (0..t.events.len()).collect();
    order.sort_by_key(|&i| {
        let e = &t.events[i];
        (e.track.group, e.track.lane.tid(), e.ts)
    });
    for i in order {
        let e = &t.events[i];
        let ph = match e.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        };
        let mut fields = vec![
            ("name".into(), Json::Str(e.name.into())),
            ("ph".into(), Json::Str(ph.into())),
            ("ts".into(), Json::Uint(e.ts)),
            ("pid".into(), Json::Int(i64::from(e.track.group))),
            ("tid".into(), Json::Int(e.track.lane.tid() as i64)),
        ];
        if e.phase == Phase::Instant {
            // Thread-scoped instants render as small arrows on the track.
            fields.push(("s".into(), Json::Str("t".into())));
        }
        if !e.args.is_empty() {
            fields.push((
                "args".into(),
                Json::Obj(
                    e.args
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), arg_json(v)))
                        .collect(),
                ),
            ));
        }
        records.push(Json::Obj(fields));
    }

    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(records)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
}

/// [`chrome_trace`] serialized compactly.
pub fn chrome_trace_string(t: &Telemetry) -> String {
    chrome_trace(t).to_string_compact()
}

/// Build a trace-event JSON document from service-layer [`crate::obs::Span`]s —
/// the cross-process companion to [`chrome_trace`]. One Chrome
/// *process* per distinct span `process` label (client, serve,
/// coordinator, each worker) and one *thread* per trace id, so a traced
/// request renders as a single timeline across every process it
/// touched. Timestamps are normalized to the earliest span so the
/// viewer opens at t=0; spans become `ph:"X"` complete events carrying
/// their `trace_id` and annotations as args.
pub fn chrome_spans(spans: &[crate::obs::Span]) -> Json {
    let mut records: Vec<Json> = Vec::new();

    // Deterministic pid assignment: sorted process labels, 1-based.
    let mut processes: Vec<&str> = spans.iter().map(|s| s.process.as_str()).collect();
    processes.sort_unstable();
    processes.dedup();
    let pid_of = |p: &str| processes.iter().position(|q| *q == p).unwrap() as i64 + 1;
    for p in &processes {
        records.push(Json::Obj(vec![
            ("name".into(), Json::Str("process_name".into())),
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::Int(pid_of(p))),
            ("tid".into(), Json::Int(0)),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::Str((*p).to_string()))]),
            ),
        ]));
    }

    // One thread lane per trace id within each process; the low bits are
    // enough to separate concurrent traces in a viewer.
    let t0 = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| {
        let s = &spans[i];
        (pid_of(&s.process), s.trace_id, s.start_us)
    });
    for i in order {
        let s = &spans[i];
        let tid = (s.trace_id % 1_000_000) as i64;
        let mut args = vec![(
            "trace_id".into(),
            Json::Str(crate::obs::format_trace_id(s.trace_id)),
        )];
        args.extend(
            s.args
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone()))),
        );
        records.push(Json::Obj(vec![
            ("name".into(), Json::Str(s.name.clone())),
            ("ph".into(), Json::Str("X".into())),
            ("ts".into(), Json::Uint(s.start_us - t0)),
            ("dur".into(), Json::Uint(s.dur_us)),
            ("pid".into(), Json::Int(pid_of(&s.process))),
            ("tid".into(), Json::Int(tid)),
            ("args".into(), Json::Obj(args)),
        ]));
    }

    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(records)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Structure, Track};
    use crate::obs::Span;
    use crate::recorder::{MemoryRecorder, Recorder};

    #[test]
    fn span_export_joins_processes_on_one_timeline() {
        let spans = vec![
            Span::new(0xabc, "admission", "serve", 1_000_100, 50),
            Span::new(0xabc, "sim", "worker:w0", 1_000_200, 400).arg("unit", "saxpy"),
            Span::new(0xabc, "rpc", "client", 1_000_000, 900),
        ];
        let doc = chrome_spans(&spans);
        let parsed = Json::parse(&doc.to_string_compact()).expect("valid json");
        let Json::Arr(events) = parsed.field("traceEvents").unwrap() else {
            panic!("traceEvents must be an array");
        };
        // 3 process metadata records + 3 X events.
        assert_eq!(events.len(), 6);
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| matches!(e.field("ph"), Ok(Json::Str(p)) if p == "X"))
            .collect();
        assert_eq!(xs.len(), 3);
        // Timestamps normalized: the earliest span starts at 0.
        let min_ts = xs
            .iter()
            .map(|e| match e.field("ts").unwrap() {
                Json::Uint(v) => *v,
                Json::Int(v) => *v as u64,
                other => panic!("ts {other:?}"),
            })
            .min()
            .unwrap();
        assert_eq!(min_ts, 0);
        // Every X event carries the joining trace_id.
        for e in &xs {
            let args = e.field("args").unwrap();
            assert_eq!(
                args.field("trace_id").unwrap(),
                &Json::Str("0000000000000abc".into())
            );
        }
        // Distinct processes get distinct pids.
        let mut pids: Vec<i64> = xs
            .iter()
            .map(|e| match e.field("pid").unwrap() {
                Json::Int(v) => *v,
                other => panic!("pid {other:?}"),
            })
            .collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids.len(), 3);
    }

    #[test]
    fn span_export_of_nothing_is_still_a_valid_document() {
        let doc = chrome_spans(&[]);
        let Json::Arr(events) = doc.field("traceEvents").unwrap() else {
            panic!("array");
        };
        assert!(events.is_empty());
    }

    #[test]
    fn export_is_valid_json_with_monotone_tracks() {
        let mut r = MemoryRecorder::new(64).with_group(0);
        // Record out of track order on purpose.
        r.record(Event::instant(9, Track::warp(1), "issue"));
        r.record(Event::begin(2, Track::warp(0), "preload").arg("region", 1u32));
        r.record(Event::end(4, Track::warp(0), "preload"));
        r.record(Event::instant(3, Track::structure(Structure::Osu), "evict"));
        let doc = chrome_trace_string(&r.into_telemetry());
        let parsed = Json::parse(&doc).expect("valid json");
        let Json::Arr(events) = parsed.field("traceEvents").unwrap() else {
            panic!("traceEvents must be an array");
        };
        // 1 process + 3 threads metadata + 4 events.
        assert_eq!(events.len(), 8);
        let mut last: std::collections::HashMap<(i64, i64), u64> = Default::default();
        for e in events {
            let Json::Str(ph) = e.field("ph").unwrap() else {
                panic!("ph is a string")
            };
            if ph == "M" {
                continue;
            }
            let pid = match e.field("pid").unwrap() {
                Json::Int(v) => *v,
                other => panic!("pid {other:?}"),
            };
            let tid = match e.field("tid").unwrap() {
                Json::Int(v) => *v,
                other => panic!("tid {other:?}"),
            };
            let ts = match e.field("ts").unwrap() {
                Json::Uint(v) => *v,
                Json::Int(v) => *v as u64,
                other => panic!("ts {other:?}"),
            };
            let prev = last.insert((pid, tid), ts);
            assert!(prev.is_none_or(|p| p <= ts), "ts monotone per track");
        }
    }
}
