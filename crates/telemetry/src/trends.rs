//! The perf-trend observatory: flat metric rows distilled from the
//! benchmark artifacts (`BENCH_profile.json`, `BENCH_sim_speed.json`,
//! `BENCH_serve.json`, `BENCH_cluster.json`) into an append-only
//! `results/trends.jsonl`, a rolling-median regression gate, and an HTML
//! trend dashboard.
//!
//! Like [`crate::report`], this module is pure presentation and
//! arithmetic: the `regless trends` verb does the file I/O and timestamp
//! stamping, then calls in here with strings and parsed JSON.

use crate::report::{escape, polyline, STYLE};
use regless_json::Json;

/// One row of `trends.jsonl`: a single metric observation.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendPoint {
    /// Unix epoch seconds when the row was ingested (0 for synthetic
    /// rows whose order alone matters).
    pub ts: u64,
    /// Which benchmark artifact the value came from (`sim_speed`,
    /// `serve`, `cluster`, `profile`).
    pub source: String,
    /// Dotted metric name (`sim_speed.event_cps`, `serve.p99_ms`).
    pub metric: String,
    /// The observed value.
    pub value: f64,
    /// Display unit (`cycles/s`, `ms`, `x`, …).
    pub unit: String,
}

regless_json::impl_json_struct!(TrendPoint {
    ts,
    source,
    metric,
    value,
    unit
});

impl TrendPoint {
    /// The compact single-line form appended to `trends.jsonl`.
    pub fn to_jsonl_line(&self) -> String {
        regless_json::to_string(self)
    }
}

/// Parse a `trends.jsonl` body into rows, in file order. Malformed
/// lines (hand edits, partial writes) are skipped, not fatal — the same
/// contract as [`crate::parse_history`].
pub fn parse_trends(text: &str) -> Vec<TrendPoint> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| regless_json::from_str(l).ok())
        .collect()
}

/// Whether a bigger value of `metric` is better (throughput, IPC,
/// speedup) or worse (latency, cycle counts, wall time). Direction is
/// derived from the name so synthetic rows need no extra schema.
pub fn higher_is_better(metric: &str) -> bool {
    let lower_is_better = ["_ms", "latency", "cycles", "seconds", "wall"];
    !lower_is_better.iter().any(|needle| metric.contains(needle))
}

fn f64_of(v: &Json) -> Option<f64> {
    match v {
        Json::Float(f) => Some(*f),
        Json::Uint(u) => Some(*u as f64),
        Json::Int(i) => Some(*i as f64),
        _ => None,
    }
}

fn num_field(json: &Json, name: &str) -> Option<f64> {
    f64_of(json.field(name).ok()?)
}

fn point(source: &str, metric: &str, value: f64, unit: &str) -> TrendPoint {
    TrendPoint {
        ts: 0,
        source: source.to_string(),
        metric: metric.to_string(),
        value,
        unit: unit.to_string(),
    }
}

/// Distill one benchmark artifact into trend rows (`ts` left at 0 for
/// the caller to stamp). `source` selects the schema: `sim_speed`,
/// `serve`, `cluster`, or `profile`. Unknown sources and missing fields
/// yield an empty vec rather than an error, so a partial results
/// directory ingests whatever it has.
pub fn ingest(source: &str, json: &Json) -> Vec<TrendPoint> {
    match source {
        "sim_speed" => ingest_sim_speed(json),
        "serve" => ingest_serve(json),
        "cluster" => ingest_cluster(json),
        "profile" => ingest_profile(json),
        _ => Vec::new(),
    }
}

/// `BENCH_sim_speed.json`: aggregate throughput over all rows (total
/// cycles / total seconds beats a mean-of-rates for rows of very
/// different lengths) plus the fast-path speedup.
fn ingest_sim_speed(json: &Json) -> Vec<TrendPoint> {
    let Ok(Json::Arr(rows)) = json.field("rows") else {
        return Vec::new();
    };
    let (mut cycles, mut event_secs, mut stepped_secs) = (0.0, 0.0, 0.0);
    for row in rows {
        let (Some(c), Some(e), Some(s)) = (
            num_field(row, "cycles"),
            num_field(row, "event_secs"),
            num_field(row, "stepped_secs"),
        ) else {
            continue;
        };
        cycles += c;
        event_secs += e;
        stepped_secs += s;
    }
    if cycles <= 0.0 || event_secs <= 0.0 || stepped_secs <= 0.0 {
        return Vec::new();
    }
    vec![
        point(
            "sim_speed",
            "sim_speed.event_cps",
            cycles / event_secs,
            "cycles/s",
        ),
        point(
            "sim_speed",
            "sim_speed.stepped_cps",
            cycles / stepped_secs,
            "cycles/s",
        ),
        point(
            "sim_speed",
            "sim_speed.fast_path_speedup",
            stepped_secs / event_secs,
            "x",
        ),
    ]
}

/// `BENCH_serve.json`: client-observed throughput and latency.
fn ingest_serve(json: &Json) -> Vec<TrendPoint> {
    let mut out = Vec::new();
    if let Some(rps) = num_field(json, "throughput_rps") {
        out.push(point("serve", "serve.throughput_rps", rps, "req/s"));
    }
    if let Ok(lat) = json.field("latency_ms") {
        if let Some(p50) = num_field(lat, "p50") {
            out.push(point("serve", "serve.p50_ms", p50, "ms"));
        }
        if let Some(p99) = num_field(lat, "p99") {
            out.push(point("serve", "serve.p99_ms", p99, "ms"));
        }
    }
    out
}

/// `BENCH_cluster.json`: the widest run's throughput and scaling.
fn ingest_cluster(json: &Json) -> Vec<TrendPoint> {
    let Ok(Json::Arr(runs)) = json.field("runs") else {
        return Vec::new();
    };
    let widest = runs
        .iter()
        .max_by_key(|r| num_field(r, "workers").unwrap_or(0.0) as u64);
    let Some(run) = widest else {
        return Vec::new();
    };
    let mut out = Vec::new();
    if let Some(tps) = num_field(run, "throughput_units_per_s") {
        out.push(point(
            "cluster",
            "cluster.throughput_units_per_s",
            tps,
            "units/s",
        ));
    }
    if let Some(speedup) = num_field(run, "speedup") {
        out.push(point("cluster", "cluster.speedup", speedup, "x"));
    }
    out
}

/// `BENCH_profile.json`: mean RegLess IPC and total RegLess cycles over
/// the benchmark suite at the paper's 512-entry design point.
fn ingest_profile(json: &Json) -> Vec<TrendPoint> {
    let Json::Arr(profiles) = json else {
        return Vec::new();
    };
    let (mut ipc_sum, mut cycles, mut n) = (0.0, 0.0, 0u64);
    for p in profiles {
        let Ok(rl) = p.field("regless") else {
            continue;
        };
        let (Some(ipc), Some(c)) = (num_field(rl, "ipc"), num_field(rl, "cycles")) else {
            continue;
        };
        ipc_sum += ipc;
        cycles += c;
        n += 1;
    }
    if n == 0 {
        return Vec::new();
    }
    vec![
        point(
            "profile",
            "profile.regless_mean_ipc",
            ipc_sum / n as f64,
            "ipc",
        ),
        point("profile", "profile.regless_total_cycles", cycles, "cycles"),
    ]
}

/// One detected regression: the newest observation of a metric sits a
/// relative threshold past the rolling median of its recent history.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// The regressing metric.
    pub metric: String,
    /// The newest value.
    pub current: f64,
    /// The rolling median it was compared against.
    pub median: f64,
    /// Percent worse than the median (always positive; direction-aware
    /// per [`higher_is_better`]).
    pub pct_worse: f64,
}

impl Regression {
    /// The gate's one-line verdict naming the metric and both values —
    /// the same shape as `regless diff`'s failure output.
    pub fn render(&self, threshold_pct: f64) -> String {
        format!(
            "trend regression: {} is {:.1}% worse than its rolling median \
             (current {}, median {}; threshold {threshold_pct}%)",
            self.metric,
            self.pct_worse,
            trim(self.current),
            trim(self.median)
        )
    }
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// The per-metric histories, in first-seen metric order, each history in
/// row order (the append-only file is already chronological).
fn histories(points: &[TrendPoint]) -> Vec<(String, Vec<f64>)> {
    let mut out: Vec<(String, Vec<f64>)> = Vec::new();
    for p in points {
        match out.iter_mut().find(|(m, _)| *m == p.metric) {
            Some((_, vs)) => vs.push(p.value),
            None => out.push((p.metric.clone(), vec![p.value])),
        }
    }
    out
}

/// Compare each metric's newest value against the median of the up-to-
/// `window` observations before it; report those at least
/// `threshold_pct` percent worse (direction-aware). Metrics with fewer
/// than two prior observations have no meaningful median and are
/// skipped.
pub fn detect_regressions(
    points: &[TrendPoint],
    window: usize,
    threshold_pct: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for (metric, values) in histories(points) {
        let Some((&current, prior)) = values.split_last() else {
            continue;
        };
        if prior.len() < 2 {
            continue;
        }
        let mut recent: Vec<f64> = prior[prior.len().saturating_sub(window)..].to_vec();
        let med = median(&mut recent);
        if med == 0.0 {
            continue;
        }
        let pct_worse = if higher_is_better(&metric) {
            (med - current) / med * 100.0
        } else {
            (current - med) / med * 100.0
        };
        if pct_worse >= threshold_pct {
            out.push(Regression {
                metric,
                current,
                median: med,
                pct_worse,
            });
        }
    }
    out
}

/// Compact value rendering: integers for big magnitudes, three decimals
/// otherwise.
fn trim(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Aligned per-metric summary (latest value, rolling median, delta) for
/// the terminal.
pub fn trends_table(points: &[TrendPoint], window: usize) -> String {
    use std::fmt::Write as _;
    let hs = histories(points);
    if hs.is_empty() {
        return "  (no trend history)\n".to_string();
    }
    let unit_of = |metric: &str| {
        points
            .iter()
            .rev()
            .find(|p| p.metric == metric)
            .map_or(String::new(), |p| p.unit.clone())
    };
    let width = hs.iter().map(|(m, _)| m.len()).max().unwrap_or(6).max(6);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<width$} {:>4} {:>14} {:>14} {:>8}  unit",
        "metric", "rows", "latest", "median", "delta"
    );
    for (metric, values) in &hs {
        let current = *values.last().expect("histories are non-empty");
        let prior = &values[..values.len() - 1];
        let (median_s, delta_s) = if prior.len() >= 2 {
            let mut recent: Vec<f64> = prior[prior.len().saturating_sub(window)..].to_vec();
            let med = median(&mut recent);
            let delta = if med == 0.0 {
                0.0
            } else {
                (current - med) / med * 100.0
            };
            (trim(med), format!("{delta:+.1}%"))
        } else {
            ("-".to_string(), "-".to_string())
        };
        let _ = writeln!(
            out,
            "  {:<width$} {:>4} {:>14} {:>14} {:>8}  {}",
            metric,
            values.len(),
            trim(current),
            median_s,
            delta_s,
            unit_of(metric)
        );
    }
    out
}

/// Render the self-contained HTML trend dashboard: one sparkline and
/// history row per metric, same styling as the run dashboard.
pub fn render_trends_html(points: &[TrendPoint], window: usize) -> String {
    use std::fmt::Write as _;
    let mut h = String::new();
    let _ = write!(
        h,
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n\
         <title>regless trends</title>\n"
    );
    h.push_str(STYLE);
    h.push_str("</head><body>\n<h1>regless performance trends</h1>\n");
    let hs = histories(points);
    if hs.is_empty() {
        h.push_str(
            "<p>(no trend history yet: run <code>regless trends</code> \
                    after a bench produces a BENCH_*.json)</p>\n",
        );
    }
    for (metric, values) in &hs {
        let unit = points
            .iter()
            .rev()
            .find(|p| p.metric == *metric)
            .map_or("", |p| p.unit.as_str());
        let _ = writeln!(
            h,
            "<h2>{} <small>({} rows, {})</small></h2>",
            escape(metric),
            values.len(),
            escape(unit)
        );
        // Normalize to the shared 640x120 polyline canvas: values scale
        // into 0..=1000 against the series maximum.
        let ceiling = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
        let scaled: Vec<u64> = values
            .iter()
            .map(|v| ((v / ceiling).clamp(0.0, 1.0) * 1000.0) as u64)
            .collect();
        let _ = writeln!(
            h,
            "<svg viewBox=\"0 0 640 120\" width=\"640\" height=\"120\" \
             xmlns=\"http://www.w3.org/2000/svg\">\n\
             <rect x=\"0\" y=\"0\" width=\"640\" height=\"120\" fill=\"#fafafa\" \
             stroke=\"#ccc\"/>\n{}</svg>",
            polyline(&scaled, 1000, "#2b6cb0", "")
        );
        let _ = writeln!(
            h,
            "<p>latest {}; best-is-{}</p>",
            trim(*values.last().expect("non-empty")),
            if higher_is_better(metric) {
                "high"
            } else {
                "low"
            }
        );
    }
    h.push_str("<h2>Summary</h2>\n");
    let _ = writeln!(h, "<pre>{}</pre>", escape(&trends_table(points, window)));
    h.push_str("</body></html>\n");
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(metric: &str, value: f64) -> TrendPoint {
        point("synthetic", metric, value, "u")
    }

    #[test]
    fn jsonl_round_trips_and_skips_garbage() {
        let p = TrendPoint {
            ts: 1_700_000_000,
            source: "sim_speed".into(),
            metric: "sim_speed.event_cps".into(),
            value: 1_234_567.5,
            unit: "cycles/s".into(),
        };
        let line = p.to_jsonl_line();
        assert!(!line.contains('\n'));
        let rows = parse_trends(&format!("{line}\nnot json\n\n{line}\n"));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], p);
    }

    #[test]
    fn direction_heuristic_separates_throughput_from_latency() {
        assert!(higher_is_better("sim_speed.event_cps"));
        assert!(higher_is_better("cluster.throughput_units_per_s"));
        assert!(higher_is_better("profile.regless_mean_ipc"));
        assert!(!higher_is_better("serve.p99_ms"));
        assert!(!higher_is_better("profile.regless_total_cycles"));
        assert!(!higher_is_better("serve.run_latency_us"));
    }

    #[test]
    fn gate_trips_on_a_throughput_drop_and_names_both_values() {
        let points = vec![
            row("sim_speed.event_cps", 1_000_000.0),
            row("sim_speed.event_cps", 1_020_000.0),
            row("sim_speed.event_cps", 400_000.0),
        ];
        let regs = detect_regressions(&points, 8, 10.0);
        assert_eq!(regs.len(), 1);
        let r = &regs[0];
        assert_eq!(r.metric, "sim_speed.event_cps");
        assert!((r.median - 1_010_000.0).abs() < 1e-6);
        assert!((r.current - 400_000.0).abs() < 1e-6);
        assert!(r.pct_worse > 60.0 && r.pct_worse < 61.0);
        let line = r.render(10.0);
        assert!(line.contains("sim_speed.event_cps"), "{line}");
        assert!(line.contains("400000"), "{line}");
        assert!(line.contains("1010000"), "{line}");
    }

    #[test]
    fn gate_is_direction_aware_and_needs_history() {
        // Latency rising trips; latency falling does not.
        let rising = vec![
            row("serve.p99_ms", 2.0),
            row("serve.p99_ms", 2.1),
            row("serve.p99_ms", 3.0),
        ];
        assert_eq!(detect_regressions(&rising, 8, 10.0).len(), 1);
        let falling = vec![
            row("serve.p99_ms", 3.0),
            row("serve.p99_ms", 2.9),
            row("serve.p99_ms", 2.0),
        ];
        assert!(detect_regressions(&falling, 8, 10.0).is_empty());
        // Throughput rising is an improvement, not a regression.
        let up = vec![row("x.rps", 10.0), row("x.rps", 11.0), row("x.rps", 20.0)];
        assert!(detect_regressions(&up, 8, 10.0).is_empty());
        // Under two prior rows: no median, no verdict.
        let thin = vec![row("x.rps", 10.0), row("x.rps", 1.0)];
        assert!(detect_regressions(&thin, 8, 10.0).is_empty());
    }

    #[test]
    fn rolling_window_forgets_ancient_history() {
        // Old fast rows fall outside the window; the recent (slow)
        // plateau is the new normal, so holding it is not a regression.
        let mut points: Vec<TrendPoint> = (0..4).map(|_| row("x.cps", 2000.0)).collect();
        points.extend((0..8).map(|_| row("x.cps", 1000.0)));
        points.push(row("x.cps", 990.0));
        assert!(detect_regressions(&points, 4, 10.0).is_empty());
        // With an unbounded window the old rows would have tripped it.
        assert_eq!(detect_regressions(&points, 100, 10.0).len(), 0);
        // But an actual fresh drop still trips inside the window.
        points.push(row("x.cps", 500.0));
        assert_eq!(detect_regressions(&points, 4, 10.0).len(), 1);
    }

    #[test]
    fn ingest_distills_each_artifact_schema() {
        let sim = Json::parse(
            r#"{"rows":[
                {"name":"a","cycles":1000,"stepped_secs":2.0,"event_secs":1.0},
                {"name":"b","cycles":3000,"stepped_secs":2.0,"event_secs":1.0}
            ]}"#,
        )
        .unwrap();
        let rows = ingest("sim_speed", &sim);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].metric, "sim_speed.event_cps");
        assert!((rows[0].value - 2000.0).abs() < 1e-9);
        assert!((rows[2].value - 2.0).abs() < 1e-9, "speedup 4s/2s");

        let serve =
            Json::parse(r#"{"throughput_rps":1273.75,"latency_ms":{"p50":1.355,"p99":2.543}}"#)
                .unwrap();
        let rows = ingest("serve", &serve);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].metric, "serve.p99_ms");

        let cluster = Json::parse(
            r#"{"runs":[
                {"workers":1,"throughput_units_per_s":17.7,"speedup":1.0},
                {"workers":4,"throughput_units_per_s":16.4,"speedup":0.92}
            ]}"#,
        )
        .unwrap();
        let rows = ingest("cluster", &cluster);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].value - 16.4).abs() < 1e-9, "widest run wins");

        let profile = Json::parse(
            r#"[{"name":"a","regless":{"ipc":0.5,"cycles":100}},
                {"name":"b","regless":{"ipc":1.5,"cycles":300}}]"#,
        )
        .unwrap();
        let rows = ingest("profile", &profile);
        assert_eq!(rows.len(), 2);
        assert!((rows[0].value - 1.0).abs() < 1e-9, "mean ipc");
        assert!((rows[1].value - 400.0).abs() < 1e-9, "total cycles");

        assert!(ingest("unknown", &Json::Null).is_empty());
        assert!(ingest("sim_speed", &Json::Null).is_empty());
    }

    #[test]
    fn table_and_html_render_the_history() {
        let points = vec![
            row("x.cps", 1000.0),
            row("x.cps", 1100.0),
            row("x.cps", 1050.0),
            row("y.p99_ms", 2.5),
        ];
        let table = trends_table(&points, 8);
        assert!(table.contains("x.cps"), "{table}");
        assert!(table.contains("y.p99_ms"), "{table}");
        assert!(trends_table(&[], 8).contains("no trend history"));
        let html = render_trends_html(&points, 8);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"), "sparkline present");
        assert!(html.contains("x.cps"), "{html}");
        assert!(html.contains("best-is-low"), "direction surfaced");
        let empty = render_trends_html(&[], 8);
        assert!(empty.contains("no trend history"));
    }
}
