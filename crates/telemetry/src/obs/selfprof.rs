//! Host-time self-profiling: scoped phase timers for the simulator's own
//! wall clock. Where the CPI stacks answer "where did the *simulated*
//! cycles go?", a [`SelfProfiler`] answers "where did the *host's* time
//! go?" — how much of `Machine::run` was the issue loop versus writeback
//! retirement versus the event-calendar jump, and how much of a sweep was
//! simulation versus cache probing versus persistence.
//!
//! Profiling is strictly opt-in: a disabled profiler never reads the
//! monotonic clock, so every instrumentation site reduces to one branch
//! on an `Option` — the same zero-cost contract the simulator's
//! [`crate::Recorder`] keeps, and the reason `RunReport::stable_json`
//! stays byte-identical with profiling on or off (timers touch only host
//! wall-clock state, never simulated state).
//!
//! Enable with the `REGLESS_SELFPROF` environment variable (any value
//! but `0`) or programmatically with [`SelfProfiler::new`]; render with
//! [`SelfProfiler::render_table`], fold into a [`MetricsSnapshot`] with
//! [`SelfProfiler::fold_into`], or export a Perfetto timeline through
//! [`SelfProfiler::to_spans`] and [`crate::chrome_spans`].

use super::metrics::MetricsSnapshot;
use super::trace::Span;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Accumulated wall time for one named phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Times the phase ran.
    pub calls: u64,
    /// Total nanoseconds spent inside the phase.
    pub nanos: u64,
}

impl PhaseTotal {
    /// Total seconds spent inside the phase.
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// Scoped phase timers with per-phase accumulation.
///
/// Phases are keyed by `&'static str` so recording never allocates;
/// totals live behind one mutex, which is only ever touched when the
/// profiler is enabled.
#[derive(Debug)]
pub struct SelfProfiler {
    enabled: bool,
    phases: Mutex<BTreeMap<&'static str, PhaseTotal>>,
}

impl SelfProfiler {
    /// A profiler that records (`enabled = true`) or ignores every scope
    /// (`enabled = false`, the zero-cost branch).
    pub fn new(enabled: bool) -> SelfProfiler {
        SelfProfiler {
            enabled,
            phases: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether the `REGLESS_SELFPROF` environment variable requests
    /// profiling (set to anything but `0` or the empty string).
    pub fn env_enabled() -> bool {
        std::env::var_os("REGLESS_SELFPROF").is_some_and(|v| !v.is_empty() && v != "0")
    }

    /// A profiler whose enablement follows [`SelfProfiler::env_enabled`].
    pub fn from_env() -> SelfProfiler {
        SelfProfiler::new(SelfProfiler::env_enabled())
    }

    /// Whether scopes record anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Start a scoped timer for `phase`; the elapsed time is recorded
    /// when the returned guard drops. On a disabled profiler this is a
    /// no-op that never reads the clock.
    pub fn scope(&self, phase: &'static str) -> PhaseGuard<'_> {
        PhaseGuard {
            active: self.enabled.then(|| (self, phase, Instant::now())),
        }
    }

    /// [`SelfProfiler::scope`] through an `Option` — the shape
    /// instrumentation sites in hot loops use (`None` means "profiling
    /// off" and costs one branch).
    pub fn scope_opt<'a>(prof: Option<&'a SelfProfiler>, phase: &'static str) -> PhaseGuard<'a> {
        match prof {
            Some(p) => p.scope(phase),
            None => PhaseGuard { active: None },
        }
    }

    /// Record `nanos` of wall time against `phase` directly (for callers
    /// that measured the interval themselves).
    pub fn record(&self, phase: &'static str, nanos: u64) {
        if !self.enabled {
            return;
        }
        let mut phases = self.phases.lock().unwrap();
        let t = phases.entry(phase).or_default();
        t.calls += 1;
        t.nanos += nanos;
    }

    /// The accumulated totals, sorted by phase name (deterministic for
    /// rendering and tests). Empty when disabled or nothing recorded.
    pub fn snapshot(&self) -> Vec<(String, PhaseTotal)> {
        self.phases
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect()
    }

    /// Total nanoseconds across every phase.
    pub fn total_nanos(&self) -> u64 {
        self.phases.lock().unwrap().values().map(|t| t.nanos).sum()
    }

    /// Fold the totals into a [`MetricsSnapshot`] as
    /// `regless_selfprof_<component>_<phase>_micros_total` /
    /// `_calls_total` counter pairs. A disabled or empty profiler adds
    /// nothing, so existing metrics output is unchanged when profiling
    /// is off.
    pub fn fold_into(&self, snap: &mut MetricsSnapshot, component: &str) {
        for (phase, t) in self.snapshot() {
            snap.counter(
                &format!("regless_selfprof_{component}_{phase}_micros_total"),
                &format!("Host microseconds spent in the {component} {phase} phase"),
                t.nanos / 1_000,
            );
            snap.counter(
                &format!("regless_selfprof_{component}_{phase}_calls_total"),
                &format!("Times the {component} {phase} phase ran"),
                t.calls,
            );
        }
    }

    /// Render an aligned per-phase table (phase, calls, total time,
    /// share) for stderr. Empty string when nothing was recorded.
    pub fn render_table(&self, label: &str) -> String {
        use std::fmt::Write as _;
        let rows = self.snapshot();
        if rows.is_empty() {
            return String::new();
        }
        let total: u64 = rows.iter().map(|(_, t)| t.nanos).sum::<u64>().max(1);
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0).max(5);
        let mut out = format!("self-profile [{label}]: host time by phase\n");
        let _ = writeln!(
            out,
            "  {:<width$} {:>12} {:>12} {:>7}",
            "phase", "calls", "time", "share"
        );
        for (phase, t) in &rows {
            let _ = writeln!(
                out,
                "  {:<width$} {:>12} {:>11.3}ms {:>6.1}%",
                phase,
                t.calls,
                t.nanos as f64 / 1e6,
                100.0 * t.nanos as f64 / total as f64
            );
        }
        out
    }

    /// Render the totals as one [`Span`] per phase, laid end-to-end on a
    /// single timeline so [`crate::chrome_spans`] draws a proportional
    /// host-time bar per phase. `trace_id` groups the spans on one lane;
    /// `process` labels the Perfetto process track.
    pub fn to_spans(&self, trace_id: u64, process: &str) -> Vec<Span> {
        let mut start_us = 0u64;
        self.snapshot()
            .into_iter()
            .map(|(phase, t)| {
                let dur_us = (t.nanos / 1_000).max(1);
                let span = Span::new(trace_id, phase.as_str(), process, start_us, dur_us)
                    .arg("calls", t.calls.to_string());
                start_us += dur_us;
                span
            })
            .collect()
    }
}

/// RAII timer returned by [`SelfProfiler::scope`]; records the elapsed
/// wall time against its phase on drop. Inert (no clock reads, no lock)
/// when the profiler is disabled.
#[must_use = "the scope measures until the guard drops"]
pub struct PhaseGuard<'a> {
    active: Option<(&'a SelfProfiler, &'static str, Instant)>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some((prof, phase, started)) = self.active.take() {
            prof.record(phase, started.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = SelfProfiler::new(false);
        {
            let _g = p.scope("issue");
        }
        p.record("writeback", 1_000);
        assert!(!p.enabled());
        assert!(p.snapshot().is_empty());
        assert_eq!(p.total_nanos(), 0);
        assert_eq!(p.render_table("sim"), "");
        let mut snap = MetricsSnapshot::new("sim");
        p.fold_into(&mut snap, "sim");
        assert!(snap.metrics.is_empty(), "disabled profiler adds no metrics");
    }

    #[test]
    fn scopes_accumulate_per_phase() {
        let p = SelfProfiler::new(true);
        for _ in 0..3 {
            let _g = p.scope("issue");
        }
        p.record("writeback", 2_000_000);
        p.record("writeback", 3_000_000);
        let rows = p.snapshot();
        assert_eq!(rows.len(), 2);
        // BTreeMap ordering: issue < writeback.
        assert_eq!(rows[0].0, "issue");
        assert_eq!(rows[0].1.calls, 3);
        assert_eq!(rows[1].0, "writeback");
        assert_eq!(
            rows[1].1,
            PhaseTotal {
                calls: 2,
                nanos: 5_000_000
            }
        );
        assert!((rows[1].1.seconds() - 0.005).abs() < 1e-12);
        let table = p.render_table("sim");
        assert!(table.contains("issue"), "{table}");
        assert!(table.contains("writeback"), "{table}");
    }

    #[test]
    fn fold_into_emits_prom_clean_counter_pairs() {
        let p = SelfProfiler::new(true);
        p.record("cache_probe", 1_500);
        p.record("simulate", 9_000_000);
        let mut snap = MetricsSnapshot::new("sweep");
        p.fold_into(&mut snap, "sweep");
        assert_eq!(snap.metrics.len(), 4, "two phases, micros + calls each");
        let text = snap.render_prom();
        assert!(
            text.contains("regless_selfprof_sweep_simulate_micros_total 9000"),
            "{text}"
        );
        assert!(
            text.contains("regless_selfprof_sweep_cache_probe_calls_total 1"),
            "{text}"
        );
        super::super::metrics::check_prom_format(&text).expect("prom-clean");
    }

    #[test]
    fn spans_lay_phases_end_to_end() {
        let p = SelfProfiler::new(true);
        p.record("a_first", 4_000);
        p.record("b_second", 2_000);
        let spans = p.to_spans(0x77, "selfprof:sim");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start_us, 0);
        assert_eq!(spans[0].dur_us, 4);
        assert_eq!(spans[1].start_us, 4, "phases tile the timeline");
        assert!(spans.iter().all(|s| s.trace_id == 0x77));
        let doc = crate::chrome_spans(&spans).to_string_compact();
        assert!(doc.contains("selfprof:sim"), "{doc}");
    }

    #[test]
    fn env_gate_treats_zero_as_off() {
        // Only inspects the parsing contract; the variable itself is not
        // mutated here (env writes are racy under a parallel test runner).
        assert!(!SelfProfiler::new(false).enabled());
        assert!(SelfProfiler::new(true).enabled());
    }
}
