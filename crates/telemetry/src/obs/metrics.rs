//! Metrics snapshots: named counters, gauges, and histogram digests
//! built on demand from a component's live state and rendered as JSON,
//! Prometheus text exposition, or a human table.
//!
//! Naming scheme: `regless_<component>_<metric>` with counters suffixed
//! `_total` (Prometheus convention), e.g. `regless_serve_submitted_total`
//! or `regless_cluster_workers_alive`. Histograms export as summaries —
//! count, sum, and the p50/p99/max the `Log2Histogram` already answers —
//! because log2 bucket edges are ours, not Prometheus's.

use crate::hist::Log2Histogram;
use regless_json::Json;

/// The value of one metric at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonically non-decreasing count (requests, rejects, reaps).
    Counter(u64),
    /// Point-in-time level (queue depth, in-flight, cache bytes).
    Gauge(f64),
    /// Digest of a [`Log2Histogram`]: count, sum, and key percentiles.
    Summary {
        /// Samples recorded.
        count: u64,
        /// Sum of all samples.
        sum: u64,
        /// Median (upper log2-bucket edge).
        p50: u64,
        /// 99th percentile (upper log2-bucket edge).
        p99: u64,
        /// Largest sample.
        max: u64,
    },
}

impl MetricValue {
    /// Digest a histogram into a [`MetricValue::Summary`].
    pub fn from_hist(h: &Log2Histogram) -> MetricValue {
        MetricValue::Summary {
            count: h.count(),
            sum: h.sum(),
            p50: h.percentile(50.0),
            p99: h.percentile(99.0),
            max: h.max(),
        }
    }
}

/// One named metric with its help text.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Full metric name (`regless_<component>_<metric>[_total]`).
    pub name: String,
    /// One-line description, emitted as the Prometheus `# HELP` line.
    pub help: String,
    /// The sampled value.
    pub value: MetricValue,
}

/// A point-in-time set of metrics from one process, answering the
/// `metrics` protocol request. Ordering is the registration order, which
/// components keep deterministic so text output diffs cleanly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Process label (`"serve"`, `"coordinator"`), echoed in output.
    pub process: String,
    /// The metrics, in registration order.
    pub metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// An empty snapshot for `process`.
    pub fn new(process: impl Into<String>) -> MetricsSnapshot {
        MetricsSnapshot {
            process: process.into(),
            metrics: Vec::new(),
        }
    }

    /// Append a counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value: MetricValue::Counter(value),
        });
    }

    /// Append a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value: MetricValue::Gauge(value),
        });
    }

    /// Append a histogram digest.
    pub fn summary(&mut self, name: &str, help: &str, hist: &Log2Histogram) {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value: MetricValue::from_hist(hist),
        });
    }

    /// Serialize for the `metrics` protocol response.
    pub fn to_json(&self) -> Json {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let mut fields = vec![
                    ("name".into(), Json::Str(m.name.clone())),
                    ("help".into(), Json::Str(m.help.clone())),
                ];
                match &m.value {
                    MetricValue::Counter(v) => {
                        fields.push(("type".into(), Json::Str("counter".into())));
                        fields.push(("value".into(), Json::Uint(*v)));
                    }
                    MetricValue::Gauge(v) => {
                        fields.push(("type".into(), Json::Str("gauge".into())));
                        fields.push(("value".into(), Json::Float(*v)));
                    }
                    MetricValue::Summary {
                        count,
                        sum,
                        p50,
                        p99,
                        max,
                    } => {
                        fields.push(("type".into(), Json::Str("summary".into())));
                        fields.push((
                            "value".into(),
                            Json::Obj(vec![
                                ("count".into(), Json::Uint(*count)),
                                ("sum".into(), Json::Uint(*sum)),
                                ("p50".into(), Json::Uint(*p50)),
                                ("p99".into(), Json::Uint(*p99)),
                                ("max".into(), Json::Uint(*max)),
                            ]),
                        ));
                    }
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("process".into(), Json::Str(self.process.clone())),
            ("metrics".into(), Json::Arr(metrics)),
        ])
    }

    /// Parse a `metrics` response payload back into a snapshot (the CLI
    /// side of the wire). Unknown metric types are skipped, not errors,
    /// so a newer server never breaks an older `regless obs`.
    pub fn from_json(json: &Json) -> Option<MetricsSnapshot> {
        fn u64_of(v: &Json) -> Option<u64> {
            match v {
                Json::Uint(u) => Some(*u),
                Json::Int(i) if *i >= 0 => Some(*i as u64),
                _ => None,
            }
        }
        let process = match json.field("process").ok()? {
            Json::Str(s) => s.clone(),
            _ => return None,
        };
        let Json::Arr(items) = json.field("metrics").ok()? else {
            return None;
        };
        let mut snap = MetricsSnapshot::new(process);
        for item in items {
            let (Ok(Json::Str(name)), Ok(Json::Str(help)), Ok(Json::Str(kind))) =
                (item.field("name"), item.field("help"), item.field("type"))
            else {
                continue;
            };
            let Ok(value) = item.field("value") else {
                continue;
            };
            let parsed = match (kind.as_str(), value) {
                ("counter", v) => u64_of(v).map(MetricValue::Counter),
                ("gauge", Json::Float(f)) => Some(MetricValue::Gauge(*f)),
                ("gauge", v) => u64_of(v).map(|u| MetricValue::Gauge(u as f64)),
                ("summary", obj) => Some(MetricValue::Summary {
                    count: obj.field("count").ok().and_then(u64_of)?,
                    sum: obj.field("sum").ok().and_then(u64_of)?,
                    p50: obj.field("p50").ok().and_then(u64_of)?,
                    p99: obj.field("p99").ok().and_then(u64_of)?,
                    max: obj.field("max").ok().and_then(u64_of)?,
                }),
                _ => None,
            };
            if let Some(value) = parsed {
                snap.metrics.push(Metric {
                    name: name.clone(),
                    help: help.clone(),
                    value,
                });
            }
        }
        Some(snap)
    }

    /// Render in the Prometheus text exposition format (`# HELP` /
    /// `# TYPE` plus one sample line per value; summaries expand to
    /// `{quantile="..."}`-labeled lines with `_sum` / `_count`).
    pub fn render_prom(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {} counter\n{} {v}\n", m.name, m.name));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {} gauge\n{} {v}\n", m.name, m.name));
                }
                MetricValue::Summary {
                    count,
                    sum,
                    p50,
                    p99,
                    max,
                } => {
                    out.push_str(&format!("# TYPE {} summary\n", m.name));
                    out.push_str(&format!("{}{{quantile=\"0.5\"}} {p50}\n", m.name));
                    out.push_str(&format!("{}{{quantile=\"0.99\"}} {p99}\n", m.name));
                    out.push_str(&format!("{}{{quantile=\"1\"}} {max}\n", m.name));
                    out.push_str(&format!("{}_sum {sum}\n", m.name));
                    out.push_str(&format!("{}_count {count}\n", m.name));
                }
            }
        }
        out
    }

    /// Render as an aligned two-column table for terminals.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for m in &self.metrics {
            let rendered = match &m.value {
                MetricValue::Counter(v) => v.to_string(),
                MetricValue::Gauge(v) => {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        format!("{v:.0}")
                    } else {
                        format!("{v:.3}")
                    }
                }
                MetricValue::Summary {
                    count,
                    p50,
                    p99,
                    max,
                    ..
                } => format!("n={count} p50={p50} p99={p99} max={max}"),
            };
            rows.push((m.name.clone(), rendered));
        }
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = format!("metrics for {}\n", self.process);
        for (name, value) in rows {
            out.push_str(&format!("  {name:<width$}  {value}\n"));
        }
        out
    }
}

/// Validate Prometheus text exposition line-by-line: every non-blank
/// line is either a `#` comment or `name[{labels}] value`, with the
/// metric name matching `[a-zA-Z_:][a-zA-Z0-9_:]*` and the value a
/// finite decimal. Returns the number of sample lines.
///
/// # Errors
///
/// The first offending line, quoted, with its 1-based line number.
pub fn check_prom_format(text: &str) -> Result<usize, String> {
    fn valid_name(name: &str) -> bool {
        let mut bytes = name.bytes();
        let Some(first) = bytes.next() else {
            return false;
        };
        (first.is_ascii_alphabetic() || first == b'_' || first == b':')
            && bytes.all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
    }
    let mut samples = 0;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| Err(format!("line {}: {what}: {line:?}", idx + 1));
        // Split the name (with optional {labels}) from the value. The
        // closing brace is found with a quote-aware scan: label values
        // are quoted strings with `\"` / `\\` escaping, so a `}` (or an
        // escaped quote) inside a value must not end the label block.
        let (name_part, value_part) = match line.find('{') {
            Some(open) => {
                let mut close = None;
                let mut in_quotes = false;
                let mut escaped = false;
                for (i, c) in line[open..].char_indices() {
                    match c {
                        _ if escaped => escaped = false,
                        '\\' if in_quotes => escaped = true,
                        '"' => in_quotes = !in_quotes,
                        '}' if !in_quotes => {
                            close = Some(i);
                            break;
                        }
                        _ => {}
                    }
                }
                let Some(close) = close else {
                    return err("unclosed label braces");
                };
                (&line[..open], line[open + close + 1..].trim_start())
            }
            None => match line.split_once(' ') {
                Some((n, v)) => (n, v.trim_start()),
                None => return err("expected `name value`"),
            },
        };
        if !valid_name(name_part) {
            return err("invalid metric name");
        }
        let value = value_part.split_whitespace().next().unwrap_or("");
        match value.parse::<f64>() {
            Ok(v) if v.is_finite() => {}
            _ => return err("invalid sample value"),
        }
        samples += 1;
    }
    Ok(samples)
}

/// Render a byte count with a unit suited to its magnitude — the one
/// humanized formatter shared by `sweep --stats`, `sweep --gc`, and the
/// cluster coordinator's `stats`, so dashboards never have to guess
/// whether a number is bytes or MiB.
pub fn format_bytes(bytes: u64) -> String {
    if bytes < 1024 {
        format!("{bytes} B")
    } else if bytes < 1024 * 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut h = Log2Histogram::new();
        for v in [1u64, 2, 3, 100, 5000] {
            h.record(v);
        }
        let mut snap = MetricsSnapshot::new("serve");
        snap.counter("regless_serve_submitted_total", "Requests admitted", 42);
        snap.gauge("regless_serve_in_flight", "Jobs currently running", 3.0);
        snap.summary("regless_serve_run_latency_us", "run latency", &h);
        snap
    }

    #[test]
    fn snapshot_json_round_trips() {
        let snap = sample();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn prom_rendering_passes_the_format_check() {
        let text = sample().render_prom();
        // counter 1 + gauge 1 + summary 5 sample lines.
        assert_eq!(check_prom_format(&text), Ok(7), "{text}");
        assert!(text.contains("# TYPE regless_serve_submitted_total counter"));
        assert!(text.contains("regless_serve_run_latency_us{quantile=\"0.99\"}"));
        assert!(text.contains("regless_serve_run_latency_us_count 5"));
    }

    #[test]
    fn format_check_rejects_malformed_lines() {
        assert!(check_prom_format("9bad_name 1\n").is_err(), "leading digit");
        assert!(
            check_prom_format("name{oops 1\n").is_err(),
            "unclosed brace"
        );
        assert!(check_prom_format("name notanumber\n").is_err());
        assert!(check_prom_format("namewithoutvalue\n").is_err());
        assert_eq!(check_prom_format("# just a comment\n\n"), Ok(0));
        assert_eq!(check_prom_format("ok_name 1.5\nx{a=\"b\"} 2\n"), Ok(2));
    }

    #[test]
    fn table_rendering_lists_every_metric() {
        let text = sample().render_table();
        assert!(text.contains("metrics for serve"), "{text}");
        assert!(text.contains("regless_serve_submitted_total"), "{text}");
        assert!(text.contains("p99="), "{text}");
    }

    #[test]
    fn byte_formatting_scales_units() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(1023), "1023 B");
        assert_eq!(format_bytes(1024), "1.0 KiB");
        assert_eq!(format_bytes(1536), "1.5 KiB");
        assert_eq!(format_bytes(5 * 1024 * 1024), "5.0 MiB");
    }

    #[test]
    fn byte_formatting_boundaries_at_exact_powers_of_1024() {
        // Both sides of each tier edge.
        assert_eq!(format_bytes(1), "1 B");
        assert_eq!(format_bytes(1024 * 1024 - 1), "1024.0 KiB");
        assert_eq!(format_bytes(1024 * 1024), "1.0 MiB");
        // MiB is the top tier: 1024^3 stays in MiB rather than inventing
        // a GiB unit no cache report currently reaches.
        assert_eq!(format_bytes(1024 * 1024 * 1024), "1024.0 MiB");
        assert!(format_bytes(u64::MAX).ends_with(" MiB"), "no overflow");
    }

    #[test]
    fn format_check_handles_names_and_labels_needing_escaping() {
        // Colons are legal anywhere in a metric name; a single colon or
        // underscore is a legal whole name.
        assert_eq!(check_prom_format("ns:sub:metric_total 1\n"), Ok(1));
        assert_eq!(check_prom_format(": 0\n_ 0\n"), Ok(2));
        // Label values may contain Prometheus-escaped quotes and
        // backslashes; neither may end the label block early.
        assert_eq!(check_prom_format("x{msg=\"say \\\"hi\\\"\"} 1\n"), Ok(1));
        assert_eq!(check_prom_format("x{path=\"C:\\\\tmp\"} 2\n"), Ok(1));
        // A close brace inside a quoted value is part of the value, not
        // the end of the labels (the quote-aware scan).
        assert_eq!(check_prom_format("x{expr=\"a}b\"} 3\n"), Ok(1));
        // A brace opened inside a value but never closed outside one is
        // still an error.
        assert!(check_prom_format("x{expr=\"a}b\" 3\n").is_err());
        // Names that need escaping are rejected, not mangled.
        assert!(check_prom_format("bad-name 1\n").is_err(), "dash");
        assert!(check_prom_format("bad.name 1\n").is_err(), "dot");
        assert!(check_prom_format("b\u{e9}zier 1\n").is_err(), "non-ascii");
    }
}
