//! Distributed trace spans: wall-clock intervals tagged with a 64-bit
//! trace id so one request's life can be stitched together across the
//! client, the serve front door, the cluster coordinator, and workers.
//!
//! Timestamps are epoch microseconds ([`epoch_us`]) — a wall clock, not
//! a monotonic one, because spans from different processes must land on
//! one shared timeline. On a single machine (the CI and bench setup)
//! that alignment is exact; across machines it is as good as NTP. The
//! wall clock is never fed into a simulation, so determinism is safe.

use regless_json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Microseconds since the Unix epoch. Saturates at 0 if the system
/// clock is set before 1970 (a non-issue outside of broken VMs).
pub fn epoch_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Generate a fresh trace id: unique per process (counter) and across
/// processes (pid and clock mixed in), never 0 so 0 can mean "untraced".
pub fn gen_trace_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let raw = epoch_us() ^ (u64::from(std::process::id()) << 40) ^ n.rotate_left(17);
    let mixed = splitmix64(raw);
    if mixed == 0 {
        1
    } else {
        mixed
    }
}

/// SplitMix64 finalizer — spreads the structured bits of pid/time/counter
/// over the whole word so truncated ids still differ.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Render a trace id as the 16-hex-digit wire form carried in the
/// protocol's optional `trace_id` field.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a wire-form trace id (1–16 hex digits). Returns `None` for
/// anything else — a malformed id makes the request untraced, never an
/// error, so tracing can't break a client.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// One named wall-clock interval in a request's life, attributed to a
/// process (e.g. `"serve"`, `"worker:w0"`, `"client"`) and joined to
/// the rest of its request by `trace_id`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// Span name from the fixed taxonomy (`admission`, `queue`, `sim`,
    /// `serialize`, `cache`, `coalesce`, `claim`, `rpc`, ...).
    pub name: String,
    /// Originating process label; becomes the Perfetto process lane.
    pub process: String,
    /// Start time in epoch microseconds.
    pub start_us: u64,
    /// Duration in microseconds (0 renders as an instant).
    pub dur_us: u64,
    /// Free-form annotations (`"hit" -> "true"`, `"worker" -> "w1"`).
    pub args: Vec<(String, String)>,
}

impl Span {
    /// Construct a span; annotate with [`Span::arg`].
    pub fn new(
        trace_id: u64,
        name: impl Into<String>,
        process: impl Into<String>,
        start_us: u64,
        dur_us: u64,
    ) -> Span {
        Span {
            trace_id,
            name: name.into(),
            process: process.into(),
            start_us,
            dur_us,
            args: Vec::new(),
        }
    }

    /// Builder-style annotation.
    #[must_use]
    pub fn arg(mut self, key: impl Into<String>, value: impl Into<String>) -> Span {
        self.args.push((key.into(), value.into()));
        self
    }

    /// Serialize for the wire (serve responses return collected spans to
    /// the client so it can write one merged trace file).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("trace_id".into(), Json::Str(format_trace_id(self.trace_id))),
            ("name".into(), Json::Str(self.name.clone())),
            ("process".into(), Json::Str(self.process.clone())),
            ("start_us".into(), Json::Uint(self.start_us)),
            ("dur_us".into(), Json::Uint(self.dur_us)),
        ];
        if !self.args.is_empty() {
            fields.push((
                "args".into(),
                Json::Obj(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }

    /// Parse a wire-form span; `None` for anything malformed (a dropped
    /// span is cosmetic, so parsing is lenient).
    pub fn from_json(json: &Json) -> Option<Span> {
        fn str_field(json: &Json, name: &str) -> Option<String> {
            match json.field(name).ok()? {
                Json::Str(s) => Some(s.clone()),
                _ => None,
            }
        }
        fn u64_field(json: &Json, name: &str) -> Option<u64> {
            match json.field(name).ok()? {
                Json::Uint(v) => Some(*v),
                Json::Int(v) if *v >= 0 => Some(*v as u64),
                _ => None,
            }
        }
        let trace_id = parse_trace_id(&str_field(json, "trace_id")?)?;
        let name = str_field(json, "name")?;
        let process = str_field(json, "process")?;
        let start_us = u64_field(json, "start_us")?;
        let dur_us = u64_field(json, "dur_us")?;
        let mut args = Vec::new();
        if let Ok(Some(Json::Obj(pairs))) = json.field_opt("args") {
            for (k, v) in pairs {
                if let Json::Str(s) = v {
                    args.push((k.clone(), s.clone()));
                }
            }
        }
        Some(Span {
            trace_id,
            name,
            process,
            start_us,
            dur_us,
            args,
        })
    }
}

/// A bounded, thread-safe store of recently finished spans. Components
/// that cannot return spans in-band (the cluster coordinator's
/// claim→result round trips) push here; `--trace-out` and the `metrics`
/// request drain it. Oldest spans are dropped once full — observability
/// must never grow without bound inside a long-lived server.
#[derive(Debug)]
pub struct SpanLog {
    capacity: usize,
    inner: Mutex<SpanLogInner>,
}

#[derive(Debug, Default)]
struct SpanLogInner {
    spans: std::collections::VecDeque<Span>,
    dropped: u64,
}

impl SpanLog {
    /// An empty log holding at most `capacity` spans.
    pub fn new(capacity: usize) -> SpanLog {
        SpanLog {
            capacity: capacity.max(1),
            inner: Mutex::new(SpanLogInner::default()),
        }
    }

    /// Record a finished span, evicting the oldest if full.
    pub fn push(&self, span: Span) {
        let mut inner = self.inner.lock().unwrap();
        if inner.spans.len() >= self.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(span);
    }

    /// Copy out every retained span, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        self.inner.lock().unwrap().spans.iter().cloned().collect()
    }

    /// Spans evicted so far because the log was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Retained span count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().spans.len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_format_and_parse_round_trip() {
        for id in [1u64, 0xdead_beef, u64::MAX, gen_trace_id()] {
            let wire = format_trace_id(id);
            assert_eq!(wire.len(), 16);
            assert_eq!(parse_trace_id(&wire), Some(id));
        }
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id("0123456789abcdef0"), None, "17 digits");
        assert_eq!(parse_trace_id("ff"), Some(255), "short ids accepted");
    }

    #[test]
    fn generated_ids_are_distinct_and_nonzero() {
        let ids: Vec<u64> = (0..100).map(|_| gen_trace_id()).collect();
        let mut uniq = ids.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), ids.len(), "collision in 100 ids");
        assert!(ids.iter().all(|&id| id != 0));
    }

    #[test]
    fn span_json_round_trips_including_args() {
        let span = Span::new(0xabc, "sim", "worker:w1", 1_000_000, 250)
            .arg("unit", "saxpy/baseline")
            .arg("cached", "false");
        let parsed = Span::from_json(&span.to_json()).expect("round trip");
        assert_eq!(parsed, span);
        // Malformed spans parse to None, never panic.
        assert_eq!(Span::from_json(&Json::Null), None);
        assert_eq!(Span::from_json(&Json::Obj(vec![])), None);
    }

    #[test]
    fn span_log_is_bounded_and_counts_drops() {
        let log = SpanLog::new(3);
        assert!(log.is_empty());
        for i in 0..5 {
            log.push(Span::new(1, format!("s{i}"), "p", i, 1));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let names: Vec<String> = log.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["s2", "s3", "s4"], "oldest evicted first");
    }
}
