//! Bounded structured logging: leveled, component-tagged events kept in
//! a fixed-size ring and rendered as JSONL. Replaces the ad-hoc silence
//! around liveness reaping, reconnect/backoff, queue_full rejections,
//! and panic isolation — the events a `regless obs --tail` needs to see.

use super::trace::format_trace_id;
use regless_json::Json;
use std::sync::Mutex;

/// Default ring capacity for servers — enough for minutes of busy-period
/// events, small enough to be free.
pub const DEFAULT_LOG_CAPACITY: usize = 1024;

/// Severity of a [`LogEvent`]. Ordered so callers can filter by level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// High-volume detail (per-request noise), off the wire by default.
    Debug,
    /// Normal lifecycle: startup, worker join, drain.
    Info,
    /// Degraded but recovering: queue_full, reconnect, worker reaped.
    Warn,
    /// Lost work or broken invariants: panic isolated, merge failed.
    Error,
}

impl LogLevel {
    /// Stable lowercase name, used on the wire and in output.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    /// Parse [`LogLevel::as_str`]'s output.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }
}

/// One structured log event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEvent {
    /// Monotonic sequence number within the emitting [`EventLog`];
    /// `--tail` resumes from the last seen value.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Severity.
    pub level: LogLevel,
    /// Emitting component (`"serve"`, `"coordinator"`, `"worker:w0"`).
    pub component: String,
    /// Human-readable one-liner.
    pub message: String,
    /// Trace id, when the event happened on behalf of a traced request.
    pub trace_id: Option<u64>,
    /// Structured key/value context (`"worker" -> "w1"`).
    pub fields: Vec<(String, String)>,
}

impl LogEvent {
    /// Serialize as one JSONL object.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seq".into(), Json::Uint(self.seq)),
            ("ts_ms".into(), Json::Uint(self.ts_ms)),
            ("level".into(), Json::Str(self.level.as_str().into())),
            ("component".into(), Json::Str(self.component.clone())),
            ("message".into(), Json::Str(self.message.clone())),
        ];
        if let Some(id) = self.trace_id {
            fields.push(("trace_id".into(), Json::Str(format_trace_id(id))));
        }
        if !self.fields.is_empty() {
            fields.push((
                "fields".into(),
                Json::Obj(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }

    /// Parse [`LogEvent::to_json`]'s output; `None` on anything
    /// malformed (a dropped log line is cosmetic).
    pub fn from_json(json: &Json) -> Option<LogEvent> {
        fn u64_field(json: &Json, name: &str) -> Option<u64> {
            match json.field(name).ok()? {
                Json::Uint(v) => Some(*v),
                Json::Int(v) if *v >= 0 => Some(*v as u64),
                _ => None,
            }
        }
        fn str_field(json: &Json, name: &str) -> Option<String> {
            match json.field(name).ok()? {
                Json::Str(s) => Some(s.clone()),
                _ => None,
            }
        }
        let trace_id = match json.field_opt("trace_id").ok()? {
            Some(Json::Str(s)) => Some(super::trace::parse_trace_id(s)?),
            Some(_) => return None,
            None => None,
        };
        let mut fields = Vec::new();
        if let Ok(Some(Json::Obj(pairs))) = json.field_opt("fields") {
            for (k, v) in pairs {
                if let Json::Str(s) = v {
                    fields.push((k.clone(), s.clone()));
                }
            }
        }
        Some(LogEvent {
            seq: u64_field(json, "seq")?,
            ts_ms: u64_field(json, "ts_ms")?,
            level: LogLevel::parse(&str_field(json, "level")?)?,
            component: str_field(json, "component")?,
            message: str_field(json, "message")?,
            trace_id,
            fields,
        })
    }

    /// Render as a single human-readable line (`--tail` output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "[{:>5}] {} {}: {}",
            self.level.as_str(),
            self.ts_ms,
            self.component,
            self.message
        );
        if let Some(id) = self.trace_id {
            out.push_str(&format!(" trace={}", format_trace_id(id)));
        }
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out
    }
}

/// A bounded, thread-safe ring of [`LogEvent`]s. Sequence numbers are
/// assigned at push and never reused, so a tailing client can detect
/// both new events (`seq > last_seen`) and gaps (events evicted before
/// it polled).
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    inner: Mutex<EventLogInner>,
}

#[derive(Debug, Default)]
struct EventLogInner {
    events: std::collections::VecDeque<LogEvent>,
    next_seq: u64,
}

impl EventLog {
    /// An empty log holding at most `capacity` events.
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            capacity: capacity.max(1),
            inner: Mutex::new(EventLogInner::default()),
        }
    }

    /// Record an event; returns its sequence number. `fields` keys and
    /// values are borrowed so call sites stay one-liners.
    pub fn log(
        &self,
        level: LogLevel,
        component: &str,
        message: impl Into<String>,
        trace_id: Option<u64>,
        fields: &[(&str, String)],
    ) -> u64 {
        let ts_ms = super::trace::epoch_us() / 1000;
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(LogEvent {
            seq,
            ts_ms,
            level,
            component: component.to_string(),
            message: message.into(),
            trace_id,
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        });
        seq
    }

    /// Every retained event with `seq > after_seq`, oldest first. Pass
    /// `None` for all retained events.
    pub fn snapshot_since(&self, after_seq: Option<u64>) -> Vec<LogEvent> {
        let inner = self.inner.lock().unwrap();
        inner
            .events
            .iter()
            .filter(|e| after_seq.is_none_or(|s| e.seq > s))
            .cloned()
            .collect()
    }

    /// Total events ever logged (retained or evicted).
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Events evicted from the ring before anyone read them — the gap a
    /// tailing client sees, exported as a Prometheus counter so silent
    /// log loss is visible on a dashboard.
    pub fn dropped(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.next_seq - inner.events.len() as u64
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_round_trip() {
        assert!(LogLevel::Debug < LogLevel::Info);
        assert!(LogLevel::Warn < LogLevel::Error);
        for level in [
            LogLevel::Debug,
            LogLevel::Info,
            LogLevel::Warn,
            LogLevel::Error,
        ] {
            assert_eq!(LogLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(LogLevel::parse("fatal"), None);
    }

    #[test]
    fn event_json_round_trips_with_and_without_options() {
        let log = EventLog::new(8);
        log.log(
            LogLevel::Warn,
            "serve",
            "queue full",
            Some(0xbeef),
            &[("depth", "32".into())],
        );
        log.log(LogLevel::Info, "serve", "drained", None, &[]);
        for ev in log.snapshot_since(None) {
            let parsed = LogEvent::from_json(&ev.to_json()).expect("round trip");
            assert_eq!(parsed, ev);
        }
        assert_eq!(LogEvent::from_json(&Json::Null), None);
    }

    #[test]
    fn ring_is_bounded_and_seq_exposes_gaps() {
        let log = EventLog::new(3);
        for i in 0..5 {
            log.log(LogLevel::Info, "c", format!("e{i}"), None, &[]);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total(), 5);
        assert_eq!(log.dropped(), 2, "two events fell off the ring");
        let seqs: Vec<u64> = log.snapshot_since(None).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest evicted, seqs preserved");
        let since: Vec<u64> = log.snapshot_since(Some(3)).iter().map(|e| e.seq).collect();
        assert_eq!(since, vec![4]);
    }

    #[test]
    fn render_is_single_line_with_context() {
        let log = EventLog::new(2);
        log.log(
            LogLevel::Error,
            "coordinator",
            "worker reaped",
            None,
            &[("worker", "w1".into())],
        );
        let text = log.snapshot_since(None)[0].render();
        assert!(text.contains("error"), "{text}");
        assert!(text.contains("worker=w1"), "{text}");
        assert!(!text.contains('\n'));
    }
}
