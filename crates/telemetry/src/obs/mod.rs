//! Service-layer observability: distributed trace spans, a metrics
//! snapshot with Prometheus text exposition, and a bounded structured
//! event log.
//!
//! The simulator core records *cycles* through [`crate::Recorder`]; the
//! serving and cluster layers record *wall time* through these types.
//! The two meet in the Chrome-trace writer: [`crate::chrome_spans`]
//! renders a set of [`Span`]s collected across processes as one Perfetto
//! timeline, joined by `trace_id`.
//!
//! Everything here is deliberately passive: spans and log events are
//! plain data pushed into bounded in-memory stores, and a
//! [`MetricsSnapshot`] is built on demand from whatever counters a
//! component already keeps. No background threads, no global state, and
//! nothing that can perturb a simulation — the byte-identity of
//! `stable_json()` reports with and without tracing is property-tested
//! at the serve layer.

mod log;
mod metrics;
mod progress;
mod selfprof;
mod trace;

pub use self::log::{EventLog, LogEvent, LogLevel, DEFAULT_LOG_CAPACITY};
pub use self::metrics::{check_prom_format, format_bytes, Metric, MetricValue, MetricsSnapshot};
pub use self::progress::{ProgressMeter, ProgressSnapshot};
pub use self::selfprof::{PhaseGuard, PhaseTotal, SelfProfiler};
pub use self::trace::{epoch_us, format_trace_id, gen_trace_id, parse_trace_id, Span, SpanLog};
