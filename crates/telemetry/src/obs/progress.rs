//! Live progress for long sweeps: a thread-safe meter that turns
//! per-unit completions into a done/total, units-per-second,
//! simulated-cycles-per-second, and ETA line for stderr. Used by
//! `regless sweep --progress` and the cluster coordinator's
//! `--progress` stream; the same counts surface as gauges in the
//! `metrics` response so `regless obs` sees them too.

use std::sync::Mutex;
use std::time::Instant;

/// A point-in-time view of a [`ProgressMeter`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgressSnapshot {
    /// Units completed so far.
    pub done: u64,
    /// Units in the whole sweep.
    pub total: u64,
    /// Simulated cycles completed so far (summed over done units).
    pub cycles: u64,
    /// Wall seconds since the meter started.
    pub elapsed_secs: f64,
}

impl ProgressSnapshot {
    /// Completed units per wall second (0 until time passes).
    pub fn units_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.done as f64 / self.elapsed_secs
        }
    }

    /// Simulated cycles per wall second (0 until time passes).
    pub fn cycles_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            0.0
        } else {
            self.cycles as f64 / self.elapsed_secs
        }
    }

    /// Estimated wall seconds remaining, extrapolating the observed
    /// unit rate. `None` until at least one unit finished (no rate to
    /// extrapolate) or once the sweep is complete.
    pub fn eta_secs(&self) -> Option<f64> {
        if self.done == 0 || self.done >= self.total {
            return None;
        }
        let rate = self.units_per_sec();
        if rate <= 0.0 {
            return None;
        }
        Some((self.total - self.done) as f64 / rate)
    }

    /// Render the one-line progress report
    /// (`progress 3/32 units | 1.5 units/s | 0.8 Mcycles/s | eta 19s`).
    pub fn render(&self) -> String {
        let mut out = format!(
            "progress {}/{} units | {:.1} units/s | {:.2} Mcycles/s",
            self.done,
            self.total,
            self.units_per_sec(),
            self.cycles_per_sec() / 1e6
        );
        match self.eta_secs() {
            Some(eta) => out.push_str(&format!(" | eta {eta:.0}s")),
            None if self.done >= self.total => {
                out.push_str(&format!(" | done in {:.1}s", self.elapsed_secs));
            }
            None => out.push_str(" | eta --"),
        }
        out
    }
}

/// Thread-safe completion counter for a sweep of `total` units.
///
/// Workers call [`ProgressMeter::note`] as each unit finishes;
/// observers that track completion elsewhere (the cluster coordinator's
/// board) call [`ProgressMeter::set`] instead. Both paths hand back a
/// snapshot so the caller can print without re-locking.
#[derive(Debug)]
pub struct ProgressMeter {
    total: u64,
    started: Instant,
    inner: Mutex<(u64, u64)>, // (done, cycles)
}

impl ProgressMeter {
    /// A meter expecting `total` units, with the clock starting now.
    pub fn new(total: u64) -> ProgressMeter {
        ProgressMeter {
            total,
            started: Instant::now(),
            inner: Mutex::new((0, 0)),
        }
    }

    /// Units in the whole sweep.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Record one completed unit that simulated `cycles` cycles.
    pub fn note(&self, cycles: u64) -> ProgressSnapshot {
        let mut inner = self.inner.lock().unwrap();
        inner.0 += 1;
        inner.1 += cycles;
        self.snap(inner.0, inner.1)
    }

    /// Overwrite the completion counts (for observers polling an
    /// external source of truth).
    pub fn set(&self, done: u64, cycles: u64) -> ProgressSnapshot {
        let mut inner = self.inner.lock().unwrap();
        *inner = (done, cycles);
        self.snap(done, cycles)
    }

    /// The current state without changing it.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let inner = self.inner.lock().unwrap();
        self.snap(inner.0, inner.1)
    }

    fn snap(&self, done: u64, cycles: u64) -> ProgressSnapshot {
        ProgressSnapshot {
            done,
            total: self.total,
            cycles,
            elapsed_secs: self.started.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(done: u64, total: u64, cycles: u64, elapsed: f64) -> ProgressSnapshot {
        ProgressSnapshot {
            done,
            total,
            cycles,
            elapsed_secs: elapsed,
        }
    }

    #[test]
    fn rates_and_eta_extrapolate_the_observed_pace() {
        let s = snap(4, 16, 8_000_000, 2.0);
        assert!((s.units_per_sec() - 2.0).abs() < 1e-9);
        assert!((s.cycles_per_sec() - 4_000_000.0).abs() < 1e-3);
        assert!((s.eta_secs().unwrap() - 6.0).abs() < 1e-9, "12 left at 2/s");
        let line = s.render();
        assert!(line.contains("4/16 units"), "{line}");
        assert!(line.contains("4.00 Mcycles/s"), "{line}");
        assert!(line.contains("eta 6s"), "{line}");
    }

    #[test]
    fn eta_degrades_gracefully_at_the_edges() {
        assert_eq!(snap(0, 8, 0, 1.0).eta_secs(), None, "no rate yet");
        assert_eq!(snap(8, 8, 100, 1.0).eta_secs(), None, "already done");
        assert_eq!(snap(1, 8, 10, 0.0).units_per_sec(), 0.0, "zero elapsed");
        assert!(snap(0, 8, 0, 1.0).render().contains("eta --"));
        assert!(snap(8, 8, 100, 1.5).render().contains("done in 1.5s"));
    }

    #[test]
    fn meter_accumulates_notes_and_accepts_external_sets() {
        let m = ProgressMeter::new(4);
        assert_eq!(m.total(), 4);
        assert_eq!(m.snapshot().done, 0);
        let s = m.note(1_000);
        assert_eq!((s.done, s.cycles), (1, 1_000));
        let s = m.note(500);
        assert_eq!((s.done, s.cycles), (2, 1_500));
        let s = m.set(4, 9_999);
        assert_eq!((s.done, s.cycles), (4, 9_999));
        assert_eq!(m.snapshot().total, 4);
    }
}
