//! Eviction accounting for the operand staging unit: the closed
//! [`EvictionReason`] taxonomy and the [`EvictionStack`] accumulator.
//!
//! Every line that leaves the OSU is charged to exactly one cause, so a
//! stack obeys a conservation law the simulator's tests enforce: the sum
//! over all reasons equals the OSU's own count of lines evicted. Stacks
//! merge associatively and commutatively (element-wise sums), like
//! [`crate::IssueStack`], so per-SM and whole-GPU views are folds of the
//! same primitive.

/// Why a line left the operand staging unit.
///
/// The taxonomy is *closed*: the RegLess backend charges every departing
/// line to exactly one of these, so eviction stacks built from them are
/// complete by construction. The four causes partition the OSU's exit
/// paths:
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EvictionReason {
    /// A *clean* evictable line was silently dropped to make room for a
    /// new allocation — its value is already recoverable from the
    /// compressor or L1, so nothing is written back.
    CapacityPreemption,
    /// A *dirty* evictable line was displaced by a new allocation and had
    /// to be spilled through the compressor (and to L1 on a compressor
    /// miss).
    CompressorSpill,
    /// A line was released because its region ended: last-use `Evict`
    /// annotations, evict-on-write, and the drain that frees a warp's
    /// reservation when it leaves a region.
    RegionDrain,
    /// A line was erased because the compiler proved its value dead:
    /// last-use `Erase` annotations, erase-on-write, and preloads
    /// invalidated by an overwrite.
    DeadValueReclaim,
}

/// Number of [`EvictionReason`] variants (the width of an
/// [`EvictionStack`]).
pub const NUM_EVICTION_REASONS: usize = 4;

impl EvictionReason {
    /// All reasons, in display (and serialization) order.
    pub const ALL: [EvictionReason; NUM_EVICTION_REASONS] = [
        EvictionReason::CapacityPreemption,
        EvictionReason::CompressorSpill,
        EvictionReason::RegionDrain,
        EvictionReason::DeadValueReclaim,
    ];

    /// Dense index of this reason in [`EvictionReason::ALL`].
    pub fn index(self) -> usize {
        match self {
            EvictionReason::CapacityPreemption => 0,
            EvictionReason::CompressorSpill => 1,
            EvictionReason::RegionDrain => 2,
            EvictionReason::DeadValueReclaim => 3,
        }
    }

    /// Stable snake_case name used in JSON, CSV, and telemetry counters.
    pub fn name(self) -> &'static str {
        match self {
            EvictionReason::CapacityPreemption => "capacity_preemption",
            EvictionReason::CompressorSpill => "compressor_spill",
            EvictionReason::RegionDrain => "region_drain",
            EvictionReason::DeadValueReclaim => "dead_value_reclaim",
        }
    }

    /// Telemetry counter name (`evict.<reason>`).
    pub fn counter_name(self) -> &'static str {
        match self {
            EvictionReason::CapacityPreemption => "evict.capacity_preemption",
            EvictionReason::CompressorSpill => "evict.compressor_spill",
            EvictionReason::RegionDrain => "evict.region_drain",
            EvictionReason::DeadValueReclaim => "evict.dead_value_reclaim",
        }
    }

    /// Parse an [`EvictionReason::name`] back into the reason.
    pub fn from_name(name: &str) -> Option<EvictionReason> {
        EvictionReason::ALL.into_iter().find(|r| r.name() == name)
    }
}

/// An eviction stack: per-cause counts of lines that left the OSU.
///
/// ```
/// use regless_telemetry::{EvictionReason, EvictionStack};
///
/// let mut a = EvictionStack::new();
/// a.charge(EvictionReason::RegionDrain);
/// a.charge(EvictionReason::CompressorSpill);
/// let mut b = EvictionStack::new();
/// b.charge(EvictionReason::CompressorSpill);
/// a.merge(&b);
/// assert_eq!(a.get(EvictionReason::CompressorSpill), 2);
/// assert_eq!(a.total(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EvictionStack {
    lines: [u64; NUM_EVICTION_REASONS],
}

impl EvictionStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one evicted line to `reason`.
    pub fn charge(&mut self, reason: EvictionReason) {
        self.lines[reason.index()] += 1;
    }

    /// Charge `n` evicted lines to `reason`.
    pub fn charge_n(&mut self, reason: EvictionReason, n: u64) {
        self.lines[reason.index()] += n;
    }

    /// Lines charged to `reason`.
    pub fn get(&self, reason: EvictionReason) -> u64 {
        self.lines[reason.index()]
    }

    /// Total lines accounted (all reasons). Conservation requires this to
    /// equal the OSU's own `lines_evicted` count.
    pub fn total(&self) -> u64 {
        self.lines.iter().sum()
    }

    /// Whether nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.lines.iter().all(|&n| n == 0)
    }

    /// Fold another stack into this one (element-wise sum; associative and
    /// commutative).
    pub fn merge(&mut self, other: &EvictionStack) {
        for (a, b) in self.lines.iter_mut().zip(other.lines.iter()) {
            *a += b;
        }
    }

    /// Fraction of total lines charged to `reason` (0 when empty).
    pub fn fraction(&self, reason: EvictionReason) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(reason) as f64 / total as f64
        }
    }

    /// `(reason, lines)` pairs in [`EvictionReason::ALL`] order.
    pub fn entries(&self) -> impl Iterator<Item = (EvictionReason, u64)> + '_ {
        EvictionReason::ALL.into_iter().map(|r| (r, self.get(r)))
    }
}

// Serialized as an object keyed by reason name, in ALL order, so cached
// reports and committed report goldens stay human-diffable.
impl regless_json::ToJson for EvictionStack {
    fn to_json(&self) -> regless_json::Json {
        regless_json::Json::Obj(
            self.entries()
                .map(|(r, n)| (r.name().to_string(), regless_json::ToJson::to_json(&n)))
                .collect(),
        )
    }
}

impl regless_json::FromJson for EvictionStack {
    fn from_json(v: &regless_json::Json) -> Result<Self, regless_json::JsonError> {
        let mut stack = EvictionStack::new();
        for r in EvictionReason::ALL {
            stack.lines[r.index()] = regless_json::FromJson::from_json(v.field(r.name())?)?;
        }
        Ok(stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_matches_all_order() {
        for (i, r) in EvictionReason::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(EvictionReason::from_name(r.name()), Some(r));
            assert!(r.counter_name().starts_with("evict."));
        }
        assert_eq!(EvictionReason::from_name("bogus"), None);
    }

    #[test]
    fn charge_and_total() {
        let mut s = EvictionStack::new();
        assert!(s.is_empty());
        s.charge(EvictionReason::RegionDrain);
        s.charge_n(EvictionReason::DeadValueReclaim, 3);
        assert_eq!(s.get(EvictionReason::RegionDrain), 1);
        assert_eq!(s.get(EvictionReason::DeadValueReclaim), 3);
        assert_eq!(s.total(), 4);
        assert!((s.fraction(EvictionReason::DeadValueReclaim) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let mut a = EvictionStack::new();
        a.charge_n(EvictionReason::CapacityPreemption, 5);
        let mut b = EvictionStack::new();
        b.charge_n(EvictionReason::CapacityPreemption, 2);
        b.charge(EvictionReason::CompressorSpill);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge commutes");
        assert_eq!(ab.get(EvictionReason::CapacityPreemption), 7);
        assert_eq!(ab.total(), a.total() + b.total());
    }

    #[test]
    fn json_round_trips() {
        let mut s = EvictionStack::new();
        for (i, r) in EvictionReason::ALL.into_iter().enumerate() {
            s.charge_n(r, i as u64 + 1);
        }
        let text = regless_json::to_string(&s);
        assert!(text.contains("\"compressor_spill\":2"));
        let back: EvictionStack = regless_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn fraction_of_empty_is_zero() {
        let s = EvictionStack::new();
        assert_eq!(s.fraction(EvictionReason::RegionDrain), 0.0);
        assert_eq!(s.total(), 0);
    }
}
