//! The recording core: the [`Recorder`] trait, the zero-cost
//! [`NullRecorder`], the buffering [`MemoryRecorder`], and the merged
//! [`Telemetry`] container the exporters consume.

use crate::event::{Event, Lane, Track, Ts};
use crate::hist::Log2Histogram;
use std::collections::BTreeMap;

/// A pluggable telemetry sink.
///
/// Instrumentation sites call these methods unconditionally; a disabled
/// sink must make them free. [`NullRecorder`] does exactly that — every
/// method is an empty inline body, so a monomorphized caller compiles the
/// calls away entirely. Callers doing non-trivial work to *construct* an
/// event should gate on [`Recorder::enabled`] first.
pub trait Recorder {
    /// Whether recording is live; `false` lets callers skip event
    /// construction entirely.
    fn enabled(&self) -> bool;

    /// Record one structured event.
    fn record(&mut self, event: Event);

    /// Add to a named monotone counter.
    fn counter_add(&mut self, name: &'static str, n: u64);

    /// Record one value into a named log2 histogram.
    fn observe(&mut self, hist: &'static str, value: u64);

    /// Append one point to a named time series.
    fn sample(&mut self, series: &'static str, ts: Ts, value: f64);
}

/// The disabled sink: every operation is a no-op that the optimizer
/// removes. Attaching no recorder at all behaves identically; this type
/// exists so generic code can be written against a concrete `Recorder`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: Event) {}

    #[inline(always)]
    fn counter_add(&mut self, _name: &'static str, _n: u64) {}

    #[inline(always)]
    fn observe(&mut self, _hist: &'static str, _value: u64) {}

    #[inline(always)]
    fn sample(&mut self, _series: &'static str, _ts: Ts, _value: f64) {}
}

/// An in-memory sink with a bounded event buffer (events past capacity are
/// counted but dropped, like the old `TraceBuffer`) and unbounded counter,
/// histogram, and series tables.
///
/// ```
/// use regless_telemetry::{Event, MemoryRecorder, Recorder, Track};
/// let mut r = MemoryRecorder::new(1).with_group(0);
/// r.record(Event::instant(3, Track::warp(0), "issue"));
/// r.record(Event::instant(4, Track::warp(1), "issue")); // dropped: full
/// r.observe("lat", 17);
/// let t = r.into_telemetry();
/// assert_eq!(t.events.len(), 1);
/// assert_eq!(t.dropped, 1);
/// assert_eq!(t.histograms["lat"].count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct MemoryRecorder {
    group: u16,
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Log2Histogram>,
    series: BTreeMap<&'static str, Vec<(Ts, f64)>>,
}

impl MemoryRecorder {
    /// A recorder buffering up to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        MemoryRecorder {
            group: 0,
            events: Vec::new(),
            capacity,
            dropped: 0,
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            series: BTreeMap::new(),
        }
    }

    /// Stamp every recorded event with track group `group` (the SM index).
    #[must_use]
    pub fn with_group(mut self, group: u16) -> Self {
        self.group = group;
        self
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events dropped so far because the buffer was at capacity (also
    /// carried into [`Telemetry::dropped`]).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Convert into the merged-container form the exporters consume.
    pub fn into_telemetry(self) -> Telemetry {
        Telemetry {
            events: self.events,
            dropped: self.dropped,
            counters: self
                .counters
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .hists
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            series: self
                .series
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }
}

impl Recorder for MemoryRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, mut event: Event) {
        if self.events.len() < self.capacity {
            event.track.group = self.group;
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    fn counter_add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    fn observe(&mut self, hist: &'static str, value: u64) {
        self.hists.entry(hist).or_default().record(value);
    }

    fn sample(&mut self, series: &'static str, ts: Ts, value: f64) {
        self.series.entry(series).or_default().push((ts, value));
    }
}

/// Everything one run recorded, merged across SMs: the raw event stream
/// plus counter/histogram/series tables. Produced by
/// [`MemoryRecorder::into_telemetry`] and consumed by the exporters.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Structured events in recording order (group-stamped per SM).
    pub events: Vec<Event>,
    /// Events dropped past the buffer capacity.
    pub dropped: u64,
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Log2 histograms by name.
    pub histograms: BTreeMap<String, Log2Histogram>,
    /// Time series by name, as `(ts, value)` points.
    pub series: BTreeMap<String, Vec<(Ts, f64)>>,
}

impl Telemetry {
    /// An empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold another SM's telemetry into this one: events concatenate,
    /// counters sum, histograms merge, series concatenate and re-sort.
    pub fn merge(&mut self, other: Telemetry) {
        self.events.extend(other.events);
        self.dropped += other.dropped;
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.histograms {
            self.histograms.entry(k).or_default().merge(&v);
        }
        for (k, v) in other.series {
            let s = self.series.entry(k).or_default();
            s.extend(v);
            s.sort_by_key(|&(ts, _)| ts);
        }
    }

    /// Add to a named counter (used to fold externally kept statistics —
    /// e.g. the simulator's `SmStats` — into the exported view).
    pub fn add_counter(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Render one track's events as a plain-text timeline (the migration
    /// target of the old `TraceBuffer::warp_timeline`).
    pub fn timeline(&self, group: u16, lane: Lane) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            if e.track != (Track { group, lane }) {
                continue;
            }
            let marker = match e.phase {
                crate::Phase::Begin => "+",
                crate::Phase::End => "-",
                crate::Phase::Instant => " ",
            };
            let _ = write!(out, "{:>8}  {marker} {}", e.ts, e.name);
            for (k, v) in &e.args {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Structure;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(Event::instant(0, Track::warp(0), "x"));
        r.counter_add("c", 3);
        r.observe("h", 9);
        r.sample("s", 1, 2.0);
    }

    #[test]
    fn recorder_stamps_group_and_bounds_events() {
        let mut r = MemoryRecorder::new(2).with_group(7);
        for i in 0..5u64 {
            r.record(Event::instant(i, Track::warp(0), "e"));
        }
        let t = r.into_telemetry();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.dropped, 3);
        assert!(t.events.iter().all(|e| e.track.group == 7));
    }

    #[test]
    fn zero_capacity_recorder_drops_everything_without_panicking() {
        let mut r = MemoryRecorder::new(0);
        for i in 0..100u64 {
            r.record(Event::instant(i, Track::warp(0), "e"));
        }
        // Non-event channels are unbounded and unaffected by capacity.
        r.counter_add("c", 1);
        r.observe("h", 2);
        assert_eq!(r.events().len(), 0);
        assert_eq!(r.dropped(), 100);
        let t = r.into_telemetry();
        assert!(t.events.is_empty());
        assert_eq!(t.dropped, 100);
        assert_eq!(t.counters["c"], 1);
    }

    #[test]
    fn drop_count_is_observable_while_recording() {
        let mut r = MemoryRecorder::new(3);
        for i in 0..3u64 {
            r.record(Event::instant(i, Track::warp(0), "e"));
        }
        assert_eq!(r.dropped(), 0, "within capacity nothing drops");
        r.record(Event::instant(3, Track::warp(0), "e"));
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.events().len(), 3, "capacity bound holds");
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = MemoryRecorder::new(8).with_group(0);
        a.counter_add("insns", 10);
        a.observe("lat", 4);
        let mut b = MemoryRecorder::new(8).with_group(1);
        b.counter_add("insns", 5);
        b.observe("lat", 400);
        b.sample("occ", 100, 3.0);
        let mut t = a.into_telemetry();
        t.merge(b.into_telemetry());
        assert_eq!(t.counters["insns"], 15);
        assert_eq!(t.histograms["lat"].count(), 2);
        assert_eq!(t.series["occ"].len(), 1);
    }

    #[test]
    fn timeline_filters_by_track() {
        let mut r = MemoryRecorder::new(16);
        r.record(Event::begin(5, Track::warp(1), "preload").arg("region", 0u32));
        r.record(Event::end(6, Track::warp(1), "preload"));
        r.record(Event::instant(6, Track::warp(2), "issue"));
        r.record(Event::instant(7, Track::structure(Structure::Osu), "evict"));
        let t = r.into_telemetry();
        let tl = t.timeline(0, Lane::Warp(1));
        assert!(tl.contains("+ preload region=0"));
        assert!(tl.contains("- preload"));
        assert_eq!(tl.lines().count(), 2, "other tracks excluded");
    }
}
