//! The unified run dashboard: one self-contained HTML page (and its
//! byte-stable JSON twin) assembling the CPI stack, OSU occupancy
//! timelines, eviction and compressor tables, and histogram digests for a
//! single simulation, plus the compact [`RunSummary`] rows used for
//! cross-run trend tracking (`results/history.jsonl`).
//!
//! This module is pure presentation: it knows nothing about the simulator.
//! Callers (the CLI's `regless report` verb and the bench harness)
//! assemble a [`Report`] from their run data and render it here, which
//! keeps the dependency direction `sim -> telemetry` intact.

use crate::cpi::{IssueStack, StallReason};
use crate::evict::EvictionStack;
use crate::summary::TelemetrySummary;

/// Per-pattern compressor effectiveness for one run.
///
/// The five pattern counters mirror the compressor's closed pattern set
/// (paper §5.4); `incompressible` counts stores no pattern matched, which
/// therefore travelled to L1 uncompressed.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CompressorReport {
    /// Stores matched by the all-lanes-equal pattern.
    pub constant: u64,
    /// Stores matched by the stride-1 pattern.
    pub stride1: u64,
    /// Stores matched by the stride-4 pattern.
    pub stride4: u64,
    /// Stores matched by the half-warp stride-1 pattern.
    pub half_stride1: u64,
    /// Stores matched by the half-warp stride-4 pattern.
    pub half_stride4: u64,
    /// Stores no pattern matched (written to L1 uncompressed).
    pub incompressible: u64,
    /// Register-line bytes presented to the compressor (128 per store).
    pub bytes_in: u64,
    /// Bytes after compression (payload bytes per store; 128 on a miss).
    pub bytes_out: u64,
    /// L1 store accesses attributable to staging traffic.
    pub l1_stores: u64,
}

regless_json::impl_json_struct!(CompressorReport {
    constant,
    stride1,
    stride4,
    half_stride1,
    half_stride4,
    incompressible,
    bytes_in,
    bytes_out,
    l1_stores
});

impl CompressorReport {
    /// Stores matched by any pattern.
    pub fn hits(&self) -> u64 {
        self.constant + self.stride1 + self.stride4 + self.half_stride1 + self.half_stride4
    }

    /// Total stores presented to the compressor.
    pub fn stores(&self) -> u64 {
        self.hits() + self.incompressible
    }

    /// Fraction of stores matched by a pattern (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let stores = self.stores();
        if stores == 0 {
            0.0
        } else {
            self.hits() as f64 / stores as f64
        }
    }

    /// `(pattern, stores)` rows in display order, `incompressible` last.
    pub fn rows(&self) -> [(&'static str, u64); 6] {
        [
            ("constant", self.constant),
            ("stride1", self.stride1),
            ("stride4", self.stride4),
            ("half_stride1", self.half_stride1),
            ("half_stride4", self.half_stride4),
            ("incompressible", self.incompressible),
        ]
    }
}

/// Sampled OSU occupancy and capacity-manager queue timelines (one sample
/// per completed `WINDOW_CYCLES` window, summed across SMs).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct OccupancyReport {
    /// Sampling window in cycles.
    pub window: u64,
    /// OSU lines holding live values, per window.
    pub live: Vec<u64>,
    /// OSU lines reserved by admitted regions (CM committed), per window.
    pub reserved: Vec<u64>,
    /// OSU lines neither live nor reserved, per window.
    pub free: Vec<u64>,
    /// Warps queued for admission in the CM, per window.
    pub queue_depth: Vec<u64>,
    /// High-water mark of live lines across the occupancy samples.
    pub peak_live: u64,
    /// Total OSU lines (the capacity the timelines are plotted against).
    pub capacity_lines: u64,
}

regless_json::impl_json_struct!(OccupancyReport {
    window,
    live,
    reserved,
    free,
    queue_depth,
    peak_live,
    capacity_lines
});

/// Everything the dashboard shows for one run. Assembled by the caller,
/// rendered here as HTML ([`Report::render_html`]) or byte-stable JSON
/// ([`Report::to_json_string`], golden-tested).
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Kernel name (or path) the run simulated.
    pub kernel: String,
    /// Storage design label (`baseline`, `regless`, …).
    pub design: String,
    /// OSU entries per SM for RegLess designs (0 when not applicable).
    pub capacity: usize,
    /// Total cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub insns: u64,
    /// Instructions per cycle (pre-rounded by the collector so the JSON
    /// twin is byte-stable).
    pub ipc: f64,
    /// Whole-GPU CPI stack.
    pub issue_stack: IssueStack,
    /// Whole-GPU eviction stack.
    pub evictions: EvictionStack,
    /// Compressor effectiveness counters.
    pub compressor: CompressorReport,
    /// Occupancy timelines.
    pub occupancy: OccupancyReport,
    /// Counter/histogram digest of the run's recorded telemetry.
    pub telemetry: TelemetrySummary,
}

regless_json::impl_json_struct!(Report {
    kernel,
    design,
    capacity,
    cycles,
    insns,
    ipc,
    issue_stack,
    evictions,
    compressor,
    occupancy,
    telemetry
});

/// One row of `results/history.jsonl`: the headline numbers of a run,
/// compact enough to append on every `regless report --trend`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Kernel name.
    pub kernel: String,
    /// Storage design label.
    pub design: String,
    /// OSU entries per SM (0 when not applicable).
    pub capacity: usize,
    /// Total cycles.
    pub cycles: u64,
    /// Instructions per cycle (rounded).
    pub ipc: f64,
    /// Dominant non-issued stall reason.
    pub top_stall: String,
    /// High-water mark of live OSU lines.
    pub osu_peak: u64,
    /// Compressor pattern hit rate (rounded).
    pub compressor_hit_rate: f64,
}

regless_json::impl_json_struct!(RunSummary {
    kernel,
    design,
    capacity,
    cycles,
    ipc,
    top_stall,
    osu_peak,
    compressor_hit_rate
});

impl RunSummary {
    /// The compact single-line form appended to `history.jsonl`.
    pub fn to_jsonl_line(&self) -> String {
        regless_json::to_string(self)
    }
}

/// Parse a `history.jsonl` body into its rows, in file order. Lines that
/// fail to parse (hand edits, partial writes) are skipped, not fatal.
pub fn parse_history(text: &str) -> Vec<RunSummary> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| regless_json::from_str(l).ok())
        .collect()
}

/// Render history rows as an aligned plain-text trajectory table (also
/// embedded in the HTML dashboard).
pub fn trend_table(rows: &[RunSummary]) -> String {
    use std::fmt::Write as _;
    if rows.is_empty() {
        return "  (history empty)\n".to_string();
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<4} {:<24} {:<10} {:>8} {:>10} {:>8} {:<18} {:>9} {:>9}",
        "#", "kernel", "design", "capacity", "cycles", "ipc", "top stall", "osu peak", "comp hit"
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<4} {:<24} {:<10} {:>8} {:>10} {:>8.3} {:<18} {:>9} {:>8.1}%",
            i + 1,
            r.kernel,
            r.design,
            r.capacity,
            r.cycles,
            r.ipc,
            r.top_stall,
            r.osu_peak,
            r.compressor_hit_rate * 100.0
        );
    }
    out
}

impl Report {
    /// The byte-stable JSON twin of the dashboard (pretty-printed, golden
    /// tested). Contains no wall-clock fields, so a deterministic
    /// simulation produces an identical document every run.
    pub fn to_json_string(&self) -> String {
        let mut s = regless_json::to_string_pretty(self);
        s.push('\n');
        s
    }

    /// Parse a document produced by [`Report::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error on malformed input.
    pub fn from_json_str(text: &str) -> Result<Report, regless_json::JsonError> {
        regless_json::from_str(text)
    }

    /// The dominant stall reason excluding `issued` (ties break toward
    /// the lower index, mirroring the profile report).
    pub fn top_stall(&self) -> StallReason {
        let mut best = StallReason::DataHazard;
        for r in StallReason::ALL {
            if r == StallReason::Issued {
                continue;
            }
            if self.issue_stack.get(r) > self.issue_stack.get(best) {
                best = r;
            }
        }
        best
    }

    /// The compact trend row for this run.
    pub fn summary(&self) -> RunSummary {
        RunSummary {
            kernel: self.kernel.clone(),
            design: self.design.clone(),
            capacity: self.capacity,
            cycles: self.cycles,
            ipc: self.ipc,
            top_stall: self.top_stall().name().to_string(),
            osu_peak: self.occupancy.peak_live,
            compressor_hit_rate: round4(self.compressor.hit_rate()),
        }
    }

    /// Render the self-contained HTML dashboard. `trend` rows (typically
    /// the parsed `history.jsonl` including this run) are rendered as the
    /// trajectory section when non-empty. No external assets: styles are
    /// inline and the occupancy timeline is an inline SVG.
    pub fn render_html(&self, trend: &[RunSummary]) -> String {
        use std::fmt::Write as _;
        let mut h = String::new();
        let title = format!(
            "regless report: {} ({} cap {})",
            self.kernel, self.design, self.capacity
        );
        let _ = write!(
            h,
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>{}</title>\n",
            escape(&title)
        );
        h.push_str(STYLE);
        h.push_str("</head><body>\n");
        let _ = writeln!(h, "<h1>{}</h1>", escape(&title));

        // Headline numbers.
        h.push_str("<table class=\"kv\">\n");
        for (k, v) in [
            ("kernel", escape(&self.kernel)),
            ("design", escape(&self.design)),
            ("osu capacity", format!("{} entries", self.capacity)),
            ("cycles", self.cycles.to_string()),
            ("instructions", self.insns.to_string()),
            ("ipc", format!("{:.4}", self.ipc)),
            ("top stall", self.top_stall().name().to_string()),
        ] {
            let _ = writeln!(h, "<tr><th>{k}</th><td>{v}</td></tr>");
        }
        h.push_str("</table>\n");

        // CPI stack: every reason gets a row even at zero, so the schema
        // check in CI can require all nine.
        h.push_str("<h2>CPI stack</h2>\n<table class=\"data\">\n");
        h.push_str("<tr><th>reason</th><th>slots</th><th>share</th><th></th></tr>\n");
        for (r, slots) in self.issue_stack.entries() {
            let frac = self.issue_stack.fraction(r);
            let _ = writeln!(
                h,
                "<tr class=\"stall-{}\"><td>{}</td><td class=\"n\">{}</td>\
                 <td class=\"n\">{:.2}%</td><td>{}</td></tr>",
                r.name(),
                r.name(),
                slots,
                frac * 100.0,
                bar(frac)
            );
        }
        let _ = writeln!(
            h,
            "<tr class=\"total\"><td>total</td><td class=\"n\">{}</td><td></td><td></td></tr>",
            self.issue_stack.total()
        );
        h.push_str("</table>\n");

        // Eviction taxonomy: all four causes always present.
        h.push_str("<h2>OSU evictions</h2>\n<table class=\"data\">\n");
        h.push_str("<tr><th>cause</th><th>lines</th><th>share</th><th></th></tr>\n");
        for (r, lines) in self.evictions.entries() {
            let frac = self.evictions.fraction(r);
            let _ = writeln!(
                h,
                "<tr class=\"evict-{}\"><td>{}</td><td class=\"n\">{}</td>\
                 <td class=\"n\">{:.2}%</td><td>{}</td></tr>",
                r.name(),
                r.name(),
                lines,
                frac * 100.0,
                bar(frac)
            );
        }
        let _ = writeln!(
            h,
            "<tr class=\"total\"><td>total</td><td class=\"n\">{}</td><td></td><td></td></tr>",
            self.evictions.total()
        );
        h.push_str("</table>\n");

        // Compressor effectiveness.
        h.push_str("<h2>Compressor</h2>\n<table class=\"data\">\n");
        h.push_str("<tr><th>pattern</th><th>stores</th></tr>\n");
        for (name, n) in self.compressor.rows() {
            let _ = writeln!(h, "<tr><td>{name}</td><td class=\"n\">{n}</td></tr>");
        }
        let _ = writeln!(
            h,
            "<tr class=\"total\"><td>hit rate</td><td class=\"n\">{:.1}%</td></tr>",
            self.compressor.hit_rate() * 100.0
        );
        let ratio = if self.compressor.bytes_out == 0 {
            0.0
        } else {
            self.compressor.bytes_in as f64 / self.compressor.bytes_out as f64
        };
        let _ = writeln!(
            h,
            "<tr><td>bytes in / out</td><td class=\"n\">{} / {} ({:.1}x)</td></tr>",
            self.compressor.bytes_in, self.compressor.bytes_out, ratio
        );
        let _ = writeln!(
            h,
            "<tr><td>staging L1 stores</td><td class=\"n\">{}</td></tr>",
            self.compressor.l1_stores
        );
        h.push_str("</table>\n");

        // Occupancy timeline sparkline.
        let _ = writeln!(
            h,
            "<h2>OSU occupancy</h2>\n<p>peak {} of {} lines; window {} cycles; \
             <span class=\"sw live\"></span> live \
             <span class=\"sw reserved\"></span> reserved \
             <span class=\"sw queue\"></span> admission queue</p>",
            self.occupancy.peak_live, self.occupancy.capacity_lines, self.occupancy.window
        );
        h.push_str(&self.occupancy_svg());

        // Histogram digests and raw counters from the recorder.
        h.push_str("<h2>Histograms</h2>\n");
        if self.telemetry.histograms.is_empty() {
            h.push_str("<p>(none recorded)</p>\n");
        } else {
            h.push_str(
                "<table class=\"data\">\n<tr><th>histogram</th><th>count</th><th>mean</th>\
                 <th>p50</th><th>p99</th><th>max</th></tr>\n",
            );
            for hs in &self.telemetry.histograms {
                let _ = writeln!(
                    h,
                    "<tr><td>{}</td><td class=\"n\">{}</td><td class=\"n\">{:.2}</td>\
                     <td class=\"n\">{}</td><td class=\"n\">{}</td><td class=\"n\">{}</td></tr>",
                    escape(&hs.name),
                    hs.count,
                    hs.mean,
                    hs.p50,
                    hs.p99,
                    hs.max
                );
            }
            h.push_str("</table>\n");
        }
        h.push_str("<h2>Counters</h2>\n<table class=\"data\">\n");
        h.push_str("<tr><th>counter</th><th>value</th></tr>\n");
        for (name, v) in &self.telemetry.counters {
            let _ = writeln!(
                h,
                "<tr><td>{}</td><td class=\"n\">{v}</td></tr>",
                escape(name)
            );
        }
        h.push_str("</table>\n");

        // Cross-run trajectory.
        if !trend.is_empty() {
            h.push_str("<h2>Trend</h2>\n");
            let _ = writeln!(h, "<pre>{}</pre>", escape(&trend_table(trend)));
        }

        let _ = writeln!(
            h,
            "<p class=\"foot\">For the cycle-level timeline, export a Chrome trace: \
             <code>regless trace {} --design {} --format chrome --out trace.json</code> \
             and load it in Perfetto.</p>",
            escape(&self.kernel),
            escape(&self.design)
        );
        h.push_str("</body></html>\n");
        h
    }

    /// The inline occupancy SVG: live (solid), reserved (dashed), and
    /// admission-queue depth (dotted, scaled to the same axis).
    fn occupancy_svg(&self) -> String {
        let samples = self.occupancy.live.len();
        if samples == 0 {
            return "<p>(no occupancy samples: run shorter than one window)</p>\n".to_string();
        }
        let ceiling = self
            .occupancy
            .capacity_lines
            .max(self.occupancy.peak_live)
            .max(
                self.occupancy
                    .queue_depth
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0),
            )
            .max(1);
        let mut svg = String::from(
            "<svg viewBox=\"0 0 640 120\" width=\"640\" height=\"120\" \
             xmlns=\"http://www.w3.org/2000/svg\">\n\
             <rect x=\"0\" y=\"0\" width=\"640\" height=\"120\" fill=\"#fafafa\" \
             stroke=\"#ccc\"/>\n",
        );
        svg.push_str(&polyline(&self.occupancy.live, ceiling, "#2b6cb0", ""));
        svg.push_str(&polyline(
            &self.occupancy.reserved,
            ceiling,
            "#b08c2b",
            " stroke-dasharray=\"6 3\"",
        ));
        svg.push_str(&polyline(
            &self.occupancy.queue_depth,
            ceiling,
            "#9b2b6c",
            " stroke-dasharray=\"2 3\"",
        ));
        svg.push_str("</svg>\n");
        svg
    }
}

/// Round to 4 decimal places (stable JSON for derived ratios).
pub fn round4(v: f64) -> f64 {
    (v * 1e4).round() / 1e4
}

/// A proportional horizontal bar for stack tables.
fn bar(frac: f64) -> String {
    format!(
        "<div class=\"bar\" style=\"width:{:.1}px\"></div>",
        (frac * 200.0).max(0.0)
    )
}

/// One SVG polyline over the shared 640x120 viewport (shared with the
/// trends dashboard, which plots metric histories on the same canvas).
pub(crate) fn polyline(series: &[u64], ceiling: u64, color: &str, extra: &str) -> String {
    if series.is_empty() {
        return String::new();
    }
    let step = if series.len() > 1 {
        620.0 / (series.len() - 1) as f64
    } else {
        0.0
    };
    let mut points = String::new();
    for (i, &v) in series.iter().enumerate() {
        let x = 10.0 + step * i as f64;
        let y = 110.0 - 100.0 * (v as f64 / ceiling as f64);
        if i > 0 {
            points.push(' ');
        }
        points.push_str(&format!("{x:.1},{y:.1}"));
    }
    format!(
        "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"{extra} \
         points=\"{points}\"/>\n"
    )
}

/// Minimal HTML escaping for text nodes and attribute values.
pub(crate) fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

pub(crate) const STYLE: &str = "<style>\n\
    body{font-family:system-ui,sans-serif;margin:2em auto;max-width:60em;color:#222}\n\
    h1{font-size:1.3em}h2{font-size:1.1em;margin-top:1.6em}\n\
    table{border-collapse:collapse;margin:0.5em 0}\n\
    th,td{padding:2px 10px;text-align:left;border-bottom:1px solid #eee}\n\
    td.n{text-align:right;font-variant-numeric:tabular-nums}\n\
    tr.total td{border-top:1px solid #999;font-weight:600}\n\
    .kv th{color:#666;font-weight:400}\n\
    .bar{height:10px;background:#2b6cb0;display:inline-block}\n\
    .sw{display:inline-block;width:18px;height:3px;vertical-align:middle;margin:0 2px}\n\
    .sw.live{background:#2b6cb0}.sw.reserved{background:#b08c2b}.sw.queue{background:#9b2b6c}\n\
    pre{background:#f6f6f6;padding:0.6em;overflow-x:auto}\n\
    .foot{color:#666;margin-top:2em}\n\
    </style>\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evict::EvictionReason;

    fn sample_report() -> Report {
        let mut issue_stack = IssueStack::new();
        issue_stack.charge_n(StallReason::Issued, 60);
        issue_stack.charge_n(StallReason::DataHazard, 30);
        issue_stack.charge_n(StallReason::CmPreloadWait, 10);
        let mut evictions = EvictionStack::new();
        evictions.charge_n(EvictionReason::RegionDrain, 8);
        evictions.charge_n(EvictionReason::CompressorSpill, 2);
        Report {
            kernel: "saxpy".to_string(),
            design: "regless".to_string(),
            capacity: 512,
            cycles: 100,
            insns: 60,
            ipc: 0.6,
            issue_stack,
            evictions,
            compressor: CompressorReport {
                constant: 5,
                stride1: 3,
                stride4: 0,
                half_stride1: 0,
                half_stride4: 0,
                incompressible: 2,
                bytes_in: 1280,
                bytes_out: 288,
                l1_stores: 2,
            },
            occupancy: OccupancyReport {
                window: 100,
                live: vec![4, 9, 7],
                reserved: vec![6, 10, 8],
                free: vec![502, 493, 497],
                queue_depth: vec![3, 1, 0],
                peak_live: 11,
                capacity_lines: 512,
            },
            telemetry: TelemetrySummary::default(),
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample_report();
        let text = r.to_json_string();
        assert!(text.ends_with('\n'));
        let back = Report::from_json_str(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn top_stall_excludes_issued_and_breaks_ties_low() {
        let r = sample_report();
        assert_eq!(r.top_stall(), StallReason::DataHazard);
        let empty = Report {
            issue_stack: IssueStack::new(),
            ..r
        };
        assert_eq!(
            empty.top_stall(),
            StallReason::DataHazard,
            "all-zero ties break to the lowest non-issued index"
        );
    }

    #[test]
    fn summary_carries_the_headline_numbers() {
        let s = sample_report().summary();
        assert_eq!(s.kernel, "saxpy");
        assert_eq!(s.cycles, 100);
        assert_eq!(s.top_stall, "data_hazard");
        assert_eq!(s.osu_peak, 11);
        assert!((s.compressor_hit_rate - 0.8).abs() < 1e-9);
        let line = s.to_jsonl_line();
        assert!(!line.contains('\n'));
        let rows = parse_history(&format!("{line}\n{line}\ngarbage\n"));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], s);
    }

    #[test]
    fn html_contains_every_stall_and_eviction_row() {
        let html = sample_report().render_html(&[]);
        assert!(html.starts_with("<!DOCTYPE html>"));
        for r in StallReason::ALL {
            assert!(
                html.contains(&format!("class=\"stall-{}\"", r.name())),
                "missing stall row {}",
                r.name()
            );
        }
        for r in EvictionReason::ALL {
            assert!(
                html.contains(&format!("class=\"evict-{}\"", r.name())),
                "missing eviction row {}",
                r.name()
            );
        }
        assert!(html.contains("<svg"), "occupancy sparkline present");
        assert!(html.contains("regless trace"), "chrome-trace link-out");
        assert!(
            !html.contains("http://") || html.contains("www.w3.org"),
            "self-contained"
        );
    }

    #[test]
    fn html_renders_trend_when_given() {
        let r = sample_report();
        let html = r.render_html(&[r.summary()]);
        assert!(html.contains("<h2>Trend</h2>"));
        assert!(html.contains("data_hazard"));
        let table = trend_table(&[r.summary()]);
        assert!(table.contains("saxpy"));
        assert!(trend_table(&[]).contains("history empty"));
    }

    #[test]
    fn empty_occupancy_degrades_gracefully() {
        let mut r = sample_report();
        r.occupancy.live.clear();
        r.occupancy.reserved.clear();
        r.occupancy.queue_depth.clear();
        let html = r.render_html(&[]);
        assert!(html.contains("no occupancy samples"));
    }
}
