//! Cycle accounting for CPI stacks: the closed [`StallReason`] taxonomy
//! and the [`IssueStack`] accumulator.
//!
//! Every SM issue slot in every cycle is charged to exactly one reason, so
//! a stack obeys a conservation law the simulator's tests enforce: the sum
//! over all reasons equals `cycles × issue slots`. Stacks merge
//! associatively and commutatively (element-wise sums), like
//! [`crate::Log2Histogram`], so per-warp, per-region, per-SM, and
//! whole-GPU views are all folds of the same primitive.

/// Why an issue slot was (or was not) used in one cycle.
///
/// The taxonomy is *closed*: the simulator charges every slot to exactly
/// one of these, so CPI stacks built from them are complete by
/// construction. Reasons are ordered roughly from "making progress" to
/// "nothing to run".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum StallReason {
    /// An instruction (or metadata bubble) issued in the slot.
    Issued,
    /// A scoreboard hazard: every candidate warp waits on an in-flight
    /// writeback (includes memory latency seen through dependent uses).
    DataHazard,
    /// The capacity manager is still staging a candidate warp's region
    /// inputs (preloading, or queued behind the one-admission-per-cycle
    /// pipeline) and no other warp could issue.
    CmPreloadWait,
    /// The capacity manager denied the next admission because the region's
    /// reservation did not fit the remaining OSU budget.
    OsuCapacityWait,
    /// Region staging was blocked behind the single L1 port.
    L1PortBusy,
    /// Region staging was blocked on a full L1 MSHR file.
    MshrFull,
    /// Every candidate warp is parked at a barrier.
    Barrier,
    /// A candidate warp finished its region and is draining outstanding
    /// writebacks before its reservation is released.
    Drain,
    /// No warp was presented to the scheduler at all: warps finished, or a
    /// scheduler-policy bubble (two-level active-set swap).
    NoWarp,
}

/// Number of [`StallReason`] variants (the width of an [`IssueStack`]).
pub const NUM_STALL_REASONS: usize = 9;

impl StallReason {
    /// All reasons, in display (and serialization) order.
    pub const ALL: [StallReason; NUM_STALL_REASONS] = [
        StallReason::Issued,
        StallReason::DataHazard,
        StallReason::CmPreloadWait,
        StallReason::OsuCapacityWait,
        StallReason::L1PortBusy,
        StallReason::MshrFull,
        StallReason::Barrier,
        StallReason::Drain,
        StallReason::NoWarp,
    ];

    /// Dense index of this reason in [`StallReason::ALL`].
    pub fn index(self) -> usize {
        match self {
            StallReason::Issued => 0,
            StallReason::DataHazard => 1,
            StallReason::CmPreloadWait => 2,
            StallReason::OsuCapacityWait => 3,
            StallReason::L1PortBusy => 4,
            StallReason::MshrFull => 5,
            StallReason::Barrier => 6,
            StallReason::Drain => 7,
            StallReason::NoWarp => 8,
        }
    }

    /// Stable snake_case name used in JSON, CSV, and telemetry counters.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::Issued => "issued",
            StallReason::DataHazard => "data_hazard",
            StallReason::CmPreloadWait => "cm_preload_wait",
            StallReason::OsuCapacityWait => "osu_capacity_wait",
            StallReason::L1PortBusy => "l1_port_busy",
            StallReason::MshrFull => "mshr_full",
            StallReason::Barrier => "barrier",
            StallReason::Drain => "drain",
            StallReason::NoWarp => "no_warp",
        }
    }

    /// Telemetry counter name (`stall.<reason>`).
    pub fn counter_name(self) -> &'static str {
        match self {
            StallReason::Issued => "stall.issued",
            StallReason::DataHazard => "stall.data_hazard",
            StallReason::CmPreloadWait => "stall.cm_preload_wait",
            StallReason::OsuCapacityWait => "stall.osu_capacity_wait",
            StallReason::L1PortBusy => "stall.l1_port_busy",
            StallReason::MshrFull => "stall.mshr_full",
            StallReason::Barrier => "stall.barrier",
            StallReason::Drain => "stall.drain",
            StallReason::NoWarp => "stall.no_warp",
        }
    }

    /// Parse a [`StallReason::name`] back into the reason.
    pub fn from_name(name: &str) -> Option<StallReason> {
        StallReason::ALL.into_iter().find(|r| r.name() == name)
    }
}

/// A CPI stack: per-reason issue-slot counts.
///
/// ```
/// use regless_telemetry::{IssueStack, StallReason};
///
/// let mut a = IssueStack::new();
/// a.charge(StallReason::Issued);
/// a.charge(StallReason::DataHazard);
/// let mut b = IssueStack::new();
/// b.charge(StallReason::DataHazard);
/// a.merge(&b);
/// assert_eq!(a.get(StallReason::DataHazard), 2);
/// assert_eq!(a.total(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IssueStack {
    slots: [u64; NUM_STALL_REASONS],
}

impl IssueStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one issue slot to `reason`.
    pub fn charge(&mut self, reason: StallReason) {
        self.slots[reason.index()] += 1;
    }

    /// Charge `n` issue slots to `reason`.
    pub fn charge_n(&mut self, reason: StallReason, n: u64) {
        self.slots[reason.index()] += n;
    }

    /// Slots charged to `reason`.
    pub fn get(&self, reason: StallReason) -> u64 {
        self.slots[reason.index()]
    }

    /// Total slots accounted (all reasons). Conservation requires this to
    /// equal `cycles × issue slots` for a complete per-SM stack.
    pub fn total(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// Slots not charged to [`StallReason::Issued`].
    pub fn stalled(&self) -> u64 {
        self.total() - self.get(StallReason::Issued)
    }

    /// Whether nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|&s| s == 0)
    }

    /// Fold another stack into this one (element-wise sum; associative and
    /// commutative).
    pub fn merge(&mut self, other: &IssueStack) {
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a += b;
        }
    }

    /// Fraction of total slots charged to `reason` (0 when empty).
    pub fn fraction(&self, reason: StallReason) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(reason) as f64 / total as f64
        }
    }

    /// `(reason, slots)` pairs in [`StallReason::ALL`] order.
    pub fn entries(&self) -> impl Iterator<Item = (StallReason, u64)> + '_ {
        StallReason::ALL.into_iter().map(|r| (r, self.get(r)))
    }
}

// Serialized as an object keyed by reason name, in ALL order, so cached
// reports and committed profile baselines stay human-diffable.
impl regless_json::ToJson for IssueStack {
    fn to_json(&self) -> regless_json::Json {
        regless_json::Json::Obj(
            self.entries()
                .map(|(r, n)| (r.name().to_string(), regless_json::ToJson::to_json(&n)))
                .collect(),
        )
    }
}

impl regless_json::FromJson for IssueStack {
    fn from_json(v: &regless_json::Json) -> Result<Self, regless_json::JsonError> {
        let mut stack = IssueStack::new();
        for r in StallReason::ALL {
            stack.slots[r.index()] = regless_json::FromJson::from_json(v.field(r.name())?)?;
        }
        Ok(stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_matches_all_order() {
        for (i, r) in StallReason::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(StallReason::from_name(r.name()), Some(r));
        }
        assert_eq!(StallReason::from_name("bogus"), None);
    }

    #[test]
    fn charge_and_total() {
        let mut s = IssueStack::new();
        assert!(s.is_empty());
        s.charge(StallReason::Issued);
        s.charge_n(StallReason::Barrier, 3);
        assert_eq!(s.get(StallReason::Issued), 1);
        assert_eq!(s.get(StallReason::Barrier), 3);
        assert_eq!(s.total(), 4);
        assert_eq!(s.stalled(), 3);
        assert!((s.fraction(StallReason::Barrier) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let mut a = IssueStack::new();
        a.charge_n(StallReason::DataHazard, 5);
        let mut b = IssueStack::new();
        b.charge_n(StallReason::DataHazard, 2);
        b.charge(StallReason::NoWarp);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge commutes");
        assert_eq!(ab.get(StallReason::DataHazard), 7);
        assert_eq!(ab.total(), a.total() + b.total());
    }

    #[test]
    fn json_round_trips() {
        let mut s = IssueStack::new();
        for (i, r) in StallReason::ALL.into_iter().enumerate() {
            s.charge_n(r, i as u64 + 1);
        }
        let text = regless_json::to_string(&s);
        assert!(text.contains("\"osu_capacity_wait\":4"));
        let back: IssueStack = regless_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn fraction_of_empty_is_zero() {
        let s = IssueStack::new();
        assert_eq!(s.fraction(StallReason::Issued), 0.0);
        assert_eq!(s.stalled(), 0);
    }
}
