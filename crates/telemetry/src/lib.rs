//! Unified observability for the RegLess reproduction.
//!
//! The simulator and the RegLess backend emit *structured events* (warp
//! region lifecycle, OSU traffic, compressor hits, L1-port arbitration),
//! *counters*, *log2 histograms*, and *time series* through the
//! [`Recorder`] trait. Recording is strictly opt-in: with no recorder
//! attached (or with [`NullRecorder`]) every instrumentation site reduces
//! to a branch on an `Option`/constant `false`, so disabled runs are
//! byte-identical to uninstrumented ones — a property the repository's
//! tier-1 tests assert.
//!
//! Collected [`Telemetry`] can be exported three ways:
//!
//! - [`chrome_trace`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or Perfetto, with one track per warp and per
//!   hardware structure;
//! - [`summary_csv`] — flat CSV of counters and histogram digests;
//! - [`TelemetrySummary`] — the same digest as a JSON-serializable value
//!   (embedded in `RunReport` and the sweep engine's outputs).
//!
//! ```
//! use regless_telemetry::{chrome_trace_string, Event, MemoryRecorder, Recorder, Track};
//!
//! let mut rec = MemoryRecorder::new(1 << 16).with_group(0);
//! rec.record(Event::begin(10, Track::warp(0), "preload").arg("region", 0u32));
//! rec.record(Event::end(14, Track::warp(0), "preload"));
//! rec.observe("preload.latency", 4);
//! let telemetry = rec.into_telemetry();
//! assert!(chrome_trace_string(&telemetry).contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod cpi;
mod event;
mod evict;
mod hist;
pub mod obs;
mod recorder;
mod report;
mod summary;
mod trends;

pub use chrome::{chrome_spans, chrome_trace, chrome_trace_string};
pub use cpi::{IssueStack, StallReason, NUM_STALL_REASONS};
pub use event::{ArgValue, Event, Lane, Phase, Structure, Track, Ts, STRUCTURE_TID_BASE};
pub use evict::{EvictionReason, EvictionStack, NUM_EVICTION_REASONS};
pub use hist::{Log2Histogram, NUM_BUCKETS};
pub use obs::{
    check_prom_format, epoch_us, format_bytes, format_trace_id, gen_trace_id, parse_trace_id,
    EventLog, LogEvent, LogLevel, Metric, MetricValue, MetricsSnapshot, PhaseGuard, PhaseTotal,
    ProgressMeter, ProgressSnapshot, SelfProfiler, Span, SpanLog, DEFAULT_LOG_CAPACITY,
};
pub use recorder::{MemoryRecorder, NullRecorder, Recorder, Telemetry};
pub use report::{
    parse_history, round4, trend_table, CompressorReport, OccupancyReport, Report, RunSummary,
};
pub use summary::{summary_csv, HistogramSummary, TelemetrySummary};
pub use trends::{
    detect_regressions, higher_is_better, ingest, parse_trends, render_trends_html, trends_table,
    Regression, TrendPoint,
};
