//! Log2-bucketed histograms for latencies and occupancies.

/// Number of buckets: one for the value 0 plus one per power of two up to
/// `u64::MAX` (bucket `k >= 1` holds values in `[2^(k-1), 2^k)`).
pub const NUM_BUCKETS: usize = 65;

/// A fixed-shape histogram with logarithmic buckets.
///
/// Recording and merging are O(1)/O(buckets) with no allocation, so the
/// simulator can observe per-event latencies at full rate. Merging is
/// associative and commutative, and bucket counts are conserved — the
/// telemetry test suite property-checks both.
///
/// ```
/// use regless_telemetry::Log2Histogram;
/// let mut h = Log2Histogram::new();
/// h.record(0);
/// h.record(3);
/// h.record(200);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.max(), 200);
/// assert!(h.mean() > 60.0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    /// Saturating sum of recorded values (latencies in a simulation never
    /// approach the ceiling).
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of a value: 0 for 0, otherwise `floor(log2(v)) + 1`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts; bucket 0 holds zeros, bucket `k >= 1` holds
    /// values in `[2^(k-1), 2^k)`.
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Upper bound (exclusive) of bucket `k`, saturating at `u64::MAX`.
    pub fn bucket_limit(k: usize) -> u64 {
        if k == 0 {
            1
        } else if k >= 64 {
            u64::MAX
        } else {
            1u64 << k
        }
    }

    /// Approximate `p`-th percentile (0–100): the upper bound of the bucket
    /// in which the `p`-th ranked value falls. Returns 0 for an empty
    /// histogram. The approximation never understates by more than the
    /// bucket width (a factor of two).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if k == 0 {
                    return 0;
                }
                // Clamp the bucket's bound to the observed maximum so p100
                // equals `max` exactly.
                return Self::bucket_limit(k).min(self.max);
            }
        }
        self.max
    }
}

impl regless_json::ToJson for Log2Histogram {
    fn to_json(&self) -> regless_json::Json {
        // Buckets are stored sparsely as [index, count] pairs: most of the
        // 65 buckets are empty for any real latency distribution.
        let sparse: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (k as u64, c))
            .collect();
        regless_json::Json::Obj(vec![
            ("count".into(), regless_json::ToJson::to_json(&self.count)),
            ("sum".into(), regless_json::ToJson::to_json(&self.sum)),
            ("min".into(), regless_json::ToJson::to_json(&self.min())),
            ("max".into(), regless_json::ToJson::to_json(&self.max)),
            ("buckets".into(), regless_json::ToJson::to_json(&sparse)),
        ])
    }
}

impl regless_json::FromJson for Log2Histogram {
    fn from_json(v: &regless_json::Json) -> Result<Self, regless_json::JsonError> {
        let mut h = Log2Histogram::new();
        h.count = regless_json::FromJson::from_json(v.field("count")?)?;
        h.sum = regless_json::FromJson::from_json(v.field("sum")?)?;
        h.max = regless_json::FromJson::from_json(v.field("max")?)?;
        let min: u64 = regless_json::FromJson::from_json(v.field("min")?)?;
        h.min = if h.count == 0 { u64::MAX } else { min };
        let sparse: Vec<(u64, u64)> = regless_json::FromJson::from_json(v.field("buckets")?)?;
        for (k, c) in sparse {
            let k = usize::try_from(k)
                .ok()
                .filter(|&k| k < NUM_BUCKETS)
                .ok_or_else(|| regless_json::JsonError::new("histogram bucket out of range"))?;
            h.buckets[k] = c;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn stats_track_recorded_values() {
        let mut h = Log2Histogram::new();
        for v in [5u64, 9, 0, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1014);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 253.5).abs() < 1e-9);
        assert_eq!(h.percentile(100.0), 1000);
        assert!(h.percentile(50.0) <= 16);
    }

    #[test]
    fn percentile_of_empty_histogram_is_zero() {
        let h = Log2Histogram::new();
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 0, "p{p} of an empty histogram");
        }
        // Still zero after a merge of two empties (count stays 0).
        let mut a = Log2Histogram::new();
        a.merge(&Log2Histogram::new());
        assert_eq!(a.percentile(50.0), 0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Log2Histogram::new();
        a.record(3);
        let mut b = Log2Histogram::new();
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 3);
        assert_eq!(a.max(), 300);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 7, 4096, 1 << 40] {
            h.record(v);
        }
        let json = regless_json::to_string(&h);
        let parsed = regless_json::Json::parse(&json).unwrap();
        let back: Log2Histogram = regless_json::FromJson::from_json(&parsed).unwrap();
        assert_eq!(back, h);
        let empty_json = regless_json::to_string(&Log2Histogram::new());
        let parsed = regless_json::Json::parse(&empty_json).unwrap();
        let back: Log2Histogram = regless_json::FromJson::from_json(&parsed).unwrap();
        assert_eq!(back, Log2Histogram::new());
    }
}
