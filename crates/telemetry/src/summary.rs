//! Aggregate summaries: a JSON-serializable digest of one run's telemetry
//! plus a flat CSV rendering for spreadsheets.

use crate::hist::Log2Histogram;
use crate::recorder::Telemetry;
use regless_json::{Json, ToJson};

/// Digest of one named histogram: the headline statistics without the raw
/// buckets.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Histogram name (e.g. `"preload.latency"`).
    pub name: String,
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Mean of recorded values.
    pub mean: f64,
    /// Approximate median (bucket upper bound).
    pub p50: u64,
    /// Approximate 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSummary {
    fn of(name: &str, h: &Log2Histogram) -> HistogramSummary {
        HistogramSummary {
            name: name.to_string(),
            count: h.count(),
            sum: h.sum(),
            mean: h.mean(),
            p50: h.percentile(50.0),
            p99: h.percentile(99.0),
            max: h.max(),
        }
    }
}

regless_json::impl_json_struct!(HistogramSummary {
    name,
    count,
    sum,
    mean,
    p50,
    p99,
    max
});

/// The run-level digest: counters verbatim, histograms reduced to their
/// headline statistics, plus event-buffer accounting.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TelemetrySummary {
    /// Structured events kept in the buffer.
    pub events: u64,
    /// Events dropped past the buffer capacity.
    pub dropped: u64,
    /// Monotone counters by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram digests, ordered by name.
    pub histograms: Vec<HistogramSummary>,
}

impl TelemetrySummary {
    /// Summarize a run's telemetry.
    pub fn of(t: &Telemetry) -> TelemetrySummary {
        TelemetrySummary {
            events: t.events.len() as u64,
            dropped: t.dropped,
            counters: t.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: t
                .histograms
                .iter()
                .map(|(k, v)| HistogramSummary::of(k, v))
                .collect(),
        }
    }

    /// Value of a named counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

impl ToJson for TelemetrySummary {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("events".into(), self.events.to_json()),
            ("dropped".into(), self.dropped.to_json()),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            ("histograms".into(), self.histograms.to_json()),
        ])
    }
}

impl regless_json::FromJson for TelemetrySummary {
    fn from_json(v: &Json) -> Result<Self, regless_json::JsonError> {
        let counters = match v.field("counters")? {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), regless_json::FromJson::from_json(v)?)))
                .collect::<Result<Vec<_>, regless_json::JsonError>>()?,
            other => {
                return Err(regless_json::JsonError::new(format!(
                    "expected object for counters, got {}",
                    other.kind()
                )))
            }
        };
        Ok(TelemetrySummary {
            events: regless_json::FromJson::from_json(v.field("events")?)?,
            dropped: regless_json::FromJson::from_json(v.field("dropped")?)?,
            counters,
            histograms: regless_json::FromJson::from_json(v.field("histograms")?)?,
        })
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render telemetry as flat CSV: one `counter` row per counter and one
/// `histogram` row per histogram, sharing a single header.
pub fn summary_csv(t: &Telemetry) -> String {
    use std::fmt::Write as _;
    let s = TelemetrySummary::of(t);
    let mut out = String::from("kind,name,count,sum,mean,p50,p99,max\n");
    let _ = writeln!(out, "meta,events,{},,,,,", s.events);
    let _ = writeln!(out, "meta,dropped,{},,,,,", s.dropped);
    for (name, v) in &s.counters {
        let _ = writeln!(out, "counter,{},{v},,,,,", csv_escape(name));
    }
    for h in &s.histograms {
        let _ = writeln!(
            out,
            "histogram,{},{},{},{:.3},{},{},{}",
            csv_escape(&h.name),
            h.count,
            h.sum,
            h.mean,
            h.p50,
            h.p99,
            h.max
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MemoryRecorder, Recorder};

    fn sample_telemetry() -> Telemetry {
        let mut r = MemoryRecorder::new(16);
        r.counter_add("insns", 42);
        r.counter_add("preload.osu_hits", 7);
        for v in [3u64, 5, 90, 4096] {
            r.observe("preload.latency", v);
        }
        r.into_telemetry()
    }

    #[test]
    fn summary_digests_counters_and_histograms() {
        let s = TelemetrySummary::of(&sample_telemetry());
        assert_eq!(s.counter("insns"), Some(42));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.histograms.len(), 1);
        let h = &s.histograms[0];
        assert_eq!((h.count, h.max), (4, 4096));
        assert!(h.p50 <= 8 && h.p99 <= 4096);
    }

    #[test]
    fn summary_json_round_trips() {
        let s = TelemetrySummary::of(&sample_telemetry());
        let json = regless_json::to_string(&s);
        let back: TelemetrySummary = regless_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn csv_has_header_and_one_row_per_entry() {
        let csv = summary_csv(&sample_telemetry());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,count,sum,mean,p50,p99,max");
        // header + 2 meta + 2 counters + 1 histogram
        assert_eq!(lines.len(), 6);
        assert!(lines.iter().any(|l| l.starts_with("counter,insns,42")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("histogram,preload.latency,4,")));
    }
}
